//! Multi-process sharded execution for the MapReduce engine.
//!
//! The in-process engine (`smr_mapreduce`) models a Hadoop job faithfully
//! but runs every map task inside one OS process.  This crate adds the
//! missing deployment dimension: a **coordinator** process that partitions
//! each job's map-task space across N **worker processes**, exchanging data
//! exclusively through `smr_storage` run files in a shared session
//! directory — the run format *is* the wire format.
//!
//! # The SPMD lockstep model
//!
//! Mappers capture arbitrary program state (term dictionaries, capacity
//! tables, `Arc`s into side data), so they cannot be serialized and shipped
//! to a worker.  Instead every worker **re-executes the same program**:
//! [`run_sharded`] wraps a closure; the coordinator spawns each worker by
//! re-invoking the current executable (`std::process::Command`), and the
//! worker's replay of the closure reconstructs all of that state
//! deterministically.  Only the map phase of each sharded job diverges:
//!
//! * a **worker** maps just its contiguous slice of the job's global
//!   map-task index space, exports the resulting sorted runs as run files
//!   plus a length-prefixed, checksummed [`ShardManifest`](smr_storage::ShardManifest),
//!   then polls for the job's published
//!   output and adopts it, keeping its replay in lockstep;
//! * the **coordinator** collects one valid manifest per shard, k-way
//!   merges all shards' runs per reduce partition through the engine's
//!   existing merge machinery, reduces, and publishes `output.run`.
//!
//! Because shards partition the *global task index space* and the merge
//! orders runs by `(task, seq)` exactly as the local engine does, the
//! output is **byte-identical to the in-process engine for any shard
//! count** — the equivalence tests lock this for the full matching
//! pipeline.
//!
//! # Supervision
//!
//! The coordinator gives each shard a per-job deadline and a bounded
//! number of spawn attempts ([`ShardOptions::max_attempts`]).  A dead
//! worker, a deadline, or a manifest that fails validation (bad checksum,
//! foreign format version, truncation) kills the attempt and re-executes
//! the shard in a **fresh attempt directory**; the replacement worker
//! fast-forwards through already-published job outputs instead of
//! re-mapping them.  A manifest that validates but *contradicts* the
//! coordinator's own view of the job (name, input size, task count) is a
//! lockstep divergence — a bug, not a fault — and panics.  The
//! fault-injection hook ([`ShardOptions::fail_shard`], or the
//! `SMR_DISTRIB_FAIL` environment variable) makes a chosen worker commit a
//! corrupt manifest and abort on its first attempt, exercising exactly
//! this recovery path in tests.
//!
//! # Example
//!
//! ```no_run
//! use smr_distrib::{run_sharded, ShardOptions};
//! use smr_mapreduce::prelude::*;
//!
//! # struct Tokenize;
//! # impl Mapper for Tokenize {
//! #     type InKey = usize; type InValue = String;
//! #     type OutKey = String; type OutValue = u64;
//! #     fn map(&self, _k: &usize, text: &String, out: &mut Emitter<String, u64>) {
//! #         for w in text.split_whitespace() { out.emit(w.to_string(), 1); }
//! #     }
//! # }
//! # struct Sum;
//! # impl Reducer for Sum {
//! #     type Key = String; type InValue = u64;
//! #     type OutKey = String; type OutValue = u64;
//! #     fn reduce(&self, k: &String, vs: &[u64], out: &mut Emitter<String, u64>) {
//! #         out.emit(k.clone(), vs.iter().sum());
//! #     }
//! # }
//! let counts = run_sharded(ShardOptions::new(4), || {
//!     let job = Job::new(JobConfig::named("word-count").with_process_shards(4));
//!     let input = vec![(0usize, "a b a".to_string())];
//!     job.run(&Tokenize, &Sum, input).output
//! });
//! ```
//!
//! Inside a `#[test]`, pass explicit worker arguments so the re-invoked
//! test binary runs only the calling test:
//! `ShardOptions::new(2).with_worker_args(["--exact", "my_test", "--nocapture"])`.
//!
//! See `docs/distrib.md` for the directory layout, the manifest format and
//! the full protocol.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod coordinator;
mod session;
mod worker;

pub use session::{
    is_worker_process, last_session_stats, run_sharded, session_active, SessionStats, ShardOptions,
    ATTEMPT_ENV, DIR_ENV, FAIL_ENV, OCCURRENCE_ENV, ROLE_ENV, SESSION_ENV, SHARDS_ENV, SHARD_ENV,
};
