//! The coordinator side: worker processes, manifest collection,
//! supervision and retry.

use std::fs::File;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use smr_mapreduce::process_shard::{ProcessShardRuntime, ShardJob, ShardJobCheck, ShardRole};
use smr_mapreduce::JobConfig;
use smr_storage::{ShardManifest, StorageError};

use crate::session::{
    SessionStats, ShardOptions, ATTEMPT_ENV, DIR_ENV, FAIL_ENV, OCCURRENCE_ENV, ROLE_ENV,
    SESSION_ENV, SHARDS_ENV, SHARD_ENV,
};

/// How often the coordinator re-checks a shard for a committed manifest.
const MANIFEST_POLL: Duration = Duration::from_millis(2);

#[derive(Debug)]
struct WorkerSlot {
    /// Current spawn attempt, starting at 1.
    attempt: u64,
    child: Option<Child>,
}

#[derive(Debug)]
struct CoordState {
    job_seq: u64,
    workers: Vec<WorkerSlot>,
    respawns: u64,
}

/// The [`ProcessShardRuntime`] a coordinator session installs.
#[derive(Debug)]
pub(crate) struct CoordinatorRuntime {
    opts: ShardOptions,
    session_dir: PathBuf,
    occurrence: u64,
    state: Mutex<CoordState>,
}

fn lock<'a>(state: &'a Mutex<CoordState>) -> std::sync::MutexGuard<'a, CoordState> {
    state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl CoordinatorRuntime {
    pub(crate) fn new(opts: ShardOptions, session_dir: PathBuf, occurrence: u64) -> Self {
        let workers = (0..opts.shards)
            .map(|_| WorkerSlot {
                attempt: 0,
                child: None,
            })
            .collect();
        CoordinatorRuntime {
            opts,
            session_dir,
            occurrence,
            state: Mutex::new(CoordState {
                job_seq: 0,
                workers,
                respawns: 0,
            }),
        }
    }

    /// Spawns attempt 1 of every shard's worker.  Workers start replaying
    /// the program immediately, overlapping with the coordinator's own
    /// progress towards the first sharded job.
    pub(crate) fn spawn_all(&self) {
        let mut state = lock(&self.state);
        for shard in 0..self.opts.shards {
            let slot = &mut state.workers[shard];
            slot.attempt = 1;
            slot.child = Some(self.spawn(shard, 1));
        }
    }

    fn spawn(&self, shard: usize, attempt: u64) -> Child {
        let exe = std::env::current_exe().expect("cannot resolve the current executable");
        let args: Vec<String> = self
            .opts
            .worker_args
            .clone()
            .unwrap_or_else(|| std::env::args().skip(1).collect());
        let stderr = File::create(self.stderr_path(shard, attempt))
            .expect("cannot create worker stderr file");
        let mut cmd = Command::new(exe);
        cmd.args(&args)
            .env(ROLE_ENV, "worker")
            .env(DIR_ENV, &self.session_dir)
            .env(SHARD_ENV, shard.to_string())
            .env(SHARDS_ENV, self.opts.shards.to_string())
            .env(ATTEMPT_ENV, attempt.to_string())
            .env(SESSION_ENV, &self.opts.session_key)
            .env(OCCURRENCE_ENV, self.occurrence.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(stderr);
        match self.opts.fail_shard {
            Some(fail) => {
                cmd.env(FAIL_ENV, fail.to_string());
            }
            None => {
                cmd.env_remove(FAIL_ENV);
            }
        }
        cmd.spawn()
            .unwrap_or_else(|e| panic!("cannot spawn worker for shard {shard}: {e}"))
    }

    fn stderr_path(&self, shard: usize, attempt: u64) -> PathBuf {
        self.session_dir
            .join(format!("shard-{shard}-attempt-{attempt}.stderr"))
    }

    fn stderr_tail(&self, shard: usize, attempt: u64) -> String {
        match std::fs::read_to_string(self.stderr_path(shard, attempt)) {
            Ok(contents) => {
                let tail_at = contents.len().saturating_sub(4096);
                contents[tail_at..].to_string()
            }
            Err(_) => "<no stderr captured>".to_string(),
        }
    }

    /// Kills shard `shard`'s current attempt and spawns the next one.
    ///
    /// # Panics
    /// Panics when the shard's attempt budget is exhausted.
    fn retry(&self, shard: usize, reason: &str) {
        let (attempt, exhausted) = {
            let mut state = lock(&self.state);
            let slot = &mut state.workers[shard];
            if let Some(child) = slot.child.as_mut() {
                let _ = child.kill();
                let _ = child.wait();
            }
            slot.child = None;
            if slot.attempt >= self.opts.max_attempts {
                (slot.attempt, true)
            } else {
                slot.attempt += 1;
                state.respawns += 1;
                (state.workers[shard].attempt, false)
            }
        };
        if exhausted {
            panic!(
                "shard {shard} failed after {attempt} attempts ({reason}); last stderr:\n{}",
                self.stderr_tail(shard, attempt)
            );
        }
        let child = self.spawn(shard, attempt);
        lock(&self.state).workers[shard].child = Some(child);
    }

    /// Validated-but-wrong manifests are lockstep divergences; anything
    /// that fails to decode is a fault and worth a retry.
    fn validate(
        &self,
        manifest: &ShardManifest,
        job: &ShardJob,
        expect: &ShardJobCheck,
        shard: usize,
        attempt: u64,
    ) {
        let agrees = manifest.job_name == expect.job_name
            && manifest.input_records == expect.input_records
            && manifest.num_map_tasks == expect.num_map_tasks
            && manifest.job_seq == job.seq
            && manifest.shard == shard as u64
            && manifest.num_shards == self.opts.shards as u64
            && manifest.attempt == attempt;
        assert!(
            agrees,
            "shard {shard} committed a valid manifest for a different job than the \
             coordinator is running (lockstep divergence): manifest {manifest:?}, \
             expected {expect:?} seq={} attempt={attempt}",
            job.seq
        );
    }

    /// Reaps every worker: normal grace period first (the workers are
    /// finishing their replay of the program), then kill.  During a panic
    /// unwind there is nothing to wait for — the workers will never see
    /// the outputs they are polling — so they are killed immediately.
    pub(crate) fn shutdown(&self) -> SessionStats {
        let mut state = lock(&self.state);
        let grace = if std::thread::panicking() {
            Duration::ZERO
        } else {
            self.opts.worker_timeout
        };
        let deadline = Instant::now() + grace;
        for slot in &mut state.workers {
            let Some(child) = slot.child.as_mut() else {
                continue;
            };
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => std::thread::sleep(MANIFEST_POLL),
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
            slot.child = None;
        }
        let _ = std::fs::remove_dir_all(&self.session_dir);
        SessionStats {
            shards: self.opts.shards,
            jobs: state.job_seq,
            respawns: state.respawns,
        }
    }
}

/// Errors meaning "the manifest has not been committed yet" (as opposed to
/// "a manifest is there but corrupt").  Commits go through an atomic
/// rename, so a visible-but-undecodable manifest is a real fault.
fn manifest_pending(err: &StorageError) -> bool {
    matches!(err, StorageError::Io(e) if e.kind() == std::io::ErrorKind::NotFound)
}

impl ProcessShardRuntime for CoordinatorRuntime {
    fn begin_job(&self, _config: &JobConfig) -> ShardJob {
        let mut state = lock(&self.state);
        let seq = state.job_seq;
        state.job_seq += 1;
        let job_dir = self.session_dir.join(format!("job-{seq}"));
        std::fs::create_dir_all(&job_dir)
            .unwrap_or_else(|e| panic!("cannot create job dir {job_dir:?}: {e}"));
        ShardJob {
            seq,
            num_shards: self.opts.shards,
            role: ShardRole::Coordinator,
            output_path: job_dir.join("output.run"),
            job_dir,
            attempt_dir: None,
        }
    }

    fn collect_manifests(&self, job: &ShardJob, expect: &ShardJobCheck) -> Vec<ShardManifest> {
        let mut manifests = Vec::with_capacity(self.opts.shards);
        for shard in 0..self.opts.shards {
            let mut deadline = Instant::now() + self.opts.worker_timeout;
            loop {
                let attempt = lock(&self.state).workers[shard].attempt;
                let manifest_path = manifest_path(&job.job_dir, shard, attempt);
                match ShardManifest::read_from(&manifest_path) {
                    Ok(manifest) => {
                        self.validate(&manifest, job, expect, shard, attempt);
                        manifests.push(manifest);
                        break;
                    }
                    Err(err) if manifest_pending(&err) => {
                        let child_died = {
                            let mut state = lock(&self.state);
                            match state.workers[shard].child.as_mut() {
                                Some(child) => matches!(child.try_wait(), Ok(Some(_)) | Err(_)),
                                None => true,
                            }
                        };
                        if child_died {
                            self.retry(shard, "worker exited without committing a manifest");
                        } else if Instant::now() > deadline {
                            self.retry(shard, "deadline exceeded waiting for the manifest");
                        } else {
                            std::thread::sleep(MANIFEST_POLL);
                            continue;
                        }
                        deadline = Instant::now() + self.opts.worker_timeout;
                    }
                    Err(err) => {
                        // Undecodable manifest (checksum, version,
                        // truncation): reject it and re-execute the shard.
                        self.retry(shard, &format!("invalid manifest: {err}"));
                        deadline = Instant::now() + self.opts.worker_timeout;
                    }
                }
            }
        }
        manifests
    }

    fn commit_manifest(&self, _job: &ShardJob, _manifest: &ShardManifest) {
        panic!("commit_manifest called on the coordinator");
    }
}

/// Where shard `shard`'s attempt `attempt` commits its manifest for a job.
pub(crate) fn manifest_path(job_dir: &Path, shard: usize, attempt: u64) -> PathBuf {
    job_dir
        .join(format!("shard-{shard}"))
        .join(format!("attempt-{attempt}"))
        .join("MANIFEST")
}
