//! Session entry point and role detection.
//!
//! A **session** is one [`run_sharded`] call: the coordinator installs its
//! runtime, spawns the workers, runs the wrapped closure, and tears
//! everything down; each worker process re-executes the same program and
//! uses the `(session key, occurrence)` pair in its environment to
//! recognise *which* `run_sharded` call it was spawned for — every other
//! session it encounters on the way is replayed inline, in process, with
//! no runtime installed (and therefore without spawning grandchildren).
//!
//! Identifying the target by key + per-key occurrence (rather than a
//! process-global sequence number) keeps the match correct when several
//! sessions run concurrently on different threads of the coordinator
//! process, as `cargo test` does: the coordinator's count of *other*
//! sessions never leaks into a worker's replay-local count.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use smr_mapreduce::process_shard::{clear_runtime, current_runtime, install_runtime};

use crate::coordinator::CoordinatorRuntime;
use crate::worker::WorkerRuntime;

/// Set to `worker` in a spawned worker process.
pub const ROLE_ENV: &str = "SMR_DISTRIB_ROLE";
/// Worker: the session directory shared with the coordinator.
pub const DIR_ENV: &str = "SMR_DISTRIB_DIR";
/// Worker: the shard index this process owns, `0..shards`.
pub const SHARD_ENV: &str = "SMR_DISTRIB_SHARD";
/// Worker: total shards in the session.
pub const SHARDS_ENV: &str = "SMR_DISTRIB_SHARDS";
/// Worker: this process's spawn attempt, starting at 1.
pub const ATTEMPT_ENV: &str = "SMR_DISTRIB_ATTEMPT";
/// Worker: the session key of the targeted [`run_sharded`] call.
pub const SESSION_ENV: &str = "SMR_DISTRIB_SESSION";
/// Worker: which occurrence of that session key is targeted (1-based).
pub const OCCURRENCE_ENV: &str = "SMR_DISTRIB_OCCURRENCE";
/// Fault injection: the shard whose worker commits a corrupt manifest and
/// aborts on attempt 1.  Read by [`ShardOptions::new`] on the coordinator
/// and forwarded to every worker.
pub const FAIL_ENV: &str = "SMR_DISTRIB_FAIL";

/// Configuration of one sharded session.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Number of worker processes (and shards of each job's map-task
    /// space).  At least 1; `1` is a legitimate degenerate session that
    /// exercises the full process protocol with a single worker.
    pub shards: usize,
    /// Distinguishes this `run_sharded` call site from others in the same
    /// program, so a worker can recognise the session it was spawned for.
    /// Calls that can run concurrently (e.g. different `#[test]`s) must
    /// use distinct keys; give each call site its own name.
    pub session_key: String,
    /// Arguments the re-invoked executable is spawned with.  `None` means
    /// "the current process's own arguments" (correct for binaries and
    /// examples).  Inside a test harness, pass
    /// `["--exact", "<test_name>", "--nocapture"]` so the child runs only
    /// the calling test.
    pub worker_args: Option<Vec<String>>,
    /// How long the coordinator waits for a shard's manifest in each job
    /// before killing and respawning the worker.
    pub worker_timeout: Duration,
    /// Spawn attempts per shard before the session panics (1 = no
    /// retries).
    pub max_attempts: u64,
    /// Fault injection: this shard's worker writes a corrupt manifest and
    /// aborts on its first commit of attempt 1.  Defaults from
    /// [`FAIL_ENV`].
    pub fail_shard: Option<usize>,
}

impl ShardOptions {
    /// Options for a session with `shards` worker processes and all other
    /// knobs at their defaults.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a session needs at least one shard");
        ShardOptions {
            shards,
            session_key: "session".to_string(),
            worker_args: None,
            worker_timeout: Duration::from_secs(120),
            max_attempts: 3,
            fail_shard: std::env::var(FAIL_ENV)
                .ok()
                .and_then(|s| s.trim().parse().ok()),
        }
    }

    /// Names the call site (see [`ShardOptions::session_key`]).
    pub fn with_session_key(mut self, key: impl Into<String>) -> Self {
        self.session_key = key.into();
        self
    }

    /// Sets explicit worker arguments (see [`ShardOptions::worker_args`]).
    pub fn with_worker_args<S: Into<String>>(mut self, args: impl IntoIterator<Item = S>) -> Self {
        self.worker_args = Some(args.into_iter().map(Into::into).collect());
        self
    }

    /// Sets the per-job manifest deadline per shard.
    pub fn with_worker_timeout(mut self, timeout: Duration) -> Self {
        self.worker_timeout = timeout;
        self
    }

    /// Sets the spawn-attempt budget per shard.
    ///
    /// # Panics
    /// Panics if `attempts` is zero.
    pub fn with_max_attempts(mut self, attempts: u64) -> Self {
        assert!(attempts > 0, "at least one attempt is required");
        self.max_attempts = attempts;
        self
    }

    /// Arms the fault-injection hook for `shard` (see
    /// [`ShardOptions::fail_shard`]).
    pub fn with_fail_shard(mut self, shard: Option<usize>) -> Self {
        self.fail_shard = shard;
        self
    }
}

/// What a completed session did, for reports and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Worker processes in the session.
    pub shards: usize,
    /// Sharded jobs executed.
    pub jobs: u64,
    /// Workers killed and respawned (0 on a fault-free run).
    pub respawns: u64,
}

fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking session must not wedge every later session in the
    // process (tests keep running after one fails).
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Per-key occurrence counters: both sides count every `run_sharded` call
/// they execute, and deterministic replay keeps the counts in agreement.
fn occurrences() -> &'static Mutex<HashMap<String, u64>> {
    static OCCURRENCES: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();
    OCCURRENCES.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Serializes coordinator sessions: the shard runtime is process-global,
/// so two sessions on different threads must take turns.
fn session_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn last_stats_slot() -> &'static Mutex<Option<SessionStats>> {
    static SLOT: OnceLock<Mutex<Option<SessionStats>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Stats of the most recently completed coordinator session in this
/// process, if any.
pub fn last_session_stats() -> Option<SessionStats> {
    *lock_ignoring_poison(last_stats_slot())
}

/// Whether a sharded session is currently active in this process (either
/// side).
pub fn session_active() -> bool {
    current_runtime().is_some()
}

/// Whether this process is a spawned worker (of any session).
///
/// A worker re-executes the coordinator's program, so code *after* a
/// [`run_sharded`] call still runs in workers spawned for a **later**
/// session in the same program.  Guard assertions about coordinator-only
/// state — [`last_session_stats`] in particular — with this predicate.
pub fn is_worker_process() -> bool {
    std::env::var(ROLE_ENV).as_deref() == Ok("worker")
}

struct WorkerEnv {
    dir: std::path::PathBuf,
    shard: usize,
    shards: usize,
    attempt: u64,
    session: String,
    occurrence: u64,
}

fn required_env(name: &str) -> String {
    std::env::var(name)
        .unwrap_or_else(|_| panic!("worker process is missing the {name} environment variable"))
}

fn worker_env() -> Option<WorkerEnv> {
    if std::env::var(ROLE_ENV).as_deref() != Ok("worker") {
        return None;
    }
    let parse = |name: &str| -> u64 {
        required_env(name)
            .parse()
            .unwrap_or_else(|_| panic!("worker {name} is not a number"))
    };
    Some(WorkerEnv {
        dir: required_env(DIR_ENV).into(),
        shard: parse(SHARD_ENV) as usize,
        shards: parse(SHARDS_ENV) as usize,
        attempt: parse(ATTEMPT_ENV),
        session: required_env(SESSION_ENV),
        occurrence: parse(OCCURRENCE_ENV),
    })
}

fn sanitize(key: &str) -> String {
    key.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// Runs `f` as a sharded session: jobs inside `f` whose
/// [`JobConfig::process_shards`][smr_mapreduce::JobConfig] is set execute
/// their map phase across [`ShardOptions::shards`] worker processes.  Jobs
/// without the flag (and all non-job code in `f`) run normally in every
/// process — that replay is what reconstructs the workers' program state.
///
/// Role dispatch (see the module docs):
/// * in the **coordinator** (any process not spawned as a worker) this
///   takes the process-wide session lock, creates the session directory,
///   installs the coordinator runtime, eagerly spawns the workers, runs
///   `f`, then tears the session down (waits for workers, kills
///   stragglers, removes the directory) and records
///   [`last_session_stats`];
/// * in a **worker process** whose environment targets this call, it
///   installs the worker runtime, runs `f`, and **exits the process**
///   (status 0) — the program beyond the session belongs to the
///   coordinator alone;
/// * in a worker process replaying *some other* session on the way to its
///   target, `f` runs inline with no runtime installed: in process, and
///   without spawning grandchildren.
///
/// # Panics
/// Panics if called while a session is already active in this process
/// (sessions cannot nest), or when a shard exhausts its retry budget.
pub fn run_sharded<T>(opts: ShardOptions, f: impl FnOnce() -> T) -> T {
    let occurrence = {
        let mut map = lock_ignoring_poison(occurrences());
        let slot = map.entry(opts.session_key.clone()).or_insert(0);
        *slot += 1;
        *slot
    };

    if let Some(env) = worker_env() {
        if env.session == opts.session_key && env.occurrence == occurrence {
            assert_eq!(
                env.shards, opts.shards,
                "worker replayed a different shard count than it was spawned with \
                 (lockstep divergence)"
            );
            let runtime = Arc::new(WorkerRuntime::new(
                env.dir,
                env.shard,
                env.shards,
                env.attempt,
                opts.fail_shard,
            ));
            install_runtime(runtime);
            let _ = f();
            // The rest of the program belongs to the coordinator.
            std::process::exit(0);
        }
        // A different session encountered during replay: run it inline.
        return f();
    }

    let _serial = lock_ignoring_poison(session_lock());
    let session_dir = std::env::temp_dir().join(format!(
        "smr-distrib-{}-{}-{occurrence}",
        std::process::id(),
        sanitize(&opts.session_key),
    ));
    let _ = std::fs::remove_dir_all(&session_dir);
    std::fs::create_dir_all(&session_dir)
        .unwrap_or_else(|e| panic!("cannot create session dir {session_dir:?}: {e}"));

    let runtime = Arc::new(CoordinatorRuntime::new(
        opts,
        session_dir.clone(),
        occurrence,
    ));
    install_runtime(runtime.clone());
    runtime.spawn_all();

    // Teardown must happen on every exit path, including a panicking `f`
    // (an assert in a test, a divergence panic): clear the runtime, reap
    // the workers, remove the session directory, record the stats.
    struct SessionGuard {
        runtime: Arc<CoordinatorRuntime>,
    }
    impl Drop for SessionGuard {
        fn drop(&mut self) {
            clear_runtime();
            let stats = self.runtime.shutdown();
            *lock_ignoring_poison(last_stats_slot()) = Some(stats);
        }
    }
    let guard = SessionGuard { runtime };
    let result = f();
    drop(guard);
    result
}
