//! The worker side: job numbering by replay and the manifest commit,
//! including the fault-injection hook.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use smr_mapreduce::process_shard::{ProcessShardRuntime, ShardJob, ShardJobCheck, ShardRole};
use smr_mapreduce::JobConfig;
use smr_storage::ShardManifest;

/// The [`ProcessShardRuntime`] a targeted worker process installs.
#[derive(Debug)]
pub(crate) struct WorkerRuntime {
    session_dir: PathBuf,
    shard: usize,
    num_shards: usize,
    attempt: u64,
    /// Fault injection: when this is `Some(self.shard)` and this process
    /// is attempt 1, the first manifest commit writes garbage and aborts.
    fail_shard: Option<usize>,
    /// The worker's replay-local job counter; deterministic replay keeps
    /// it in lockstep with the coordinator's.
    job_seq: AtomicU64,
}

impl WorkerRuntime {
    pub(crate) fn new(
        session_dir: PathBuf,
        shard: usize,
        num_shards: usize,
        attempt: u64,
        fail_shard: Option<usize>,
    ) -> Self {
        WorkerRuntime {
            session_dir,
            shard,
            num_shards,
            attempt,
            fail_shard,
            job_seq: AtomicU64::new(0),
        }
    }
}

impl ProcessShardRuntime for WorkerRuntime {
    fn begin_job(&self, _config: &JobConfig) -> ShardJob {
        let seq = self.job_seq.fetch_add(1, Ordering::SeqCst);
        let job_dir = self.session_dir.join(format!("job-{seq}"));
        ShardJob {
            seq,
            num_shards: self.num_shards,
            role: ShardRole::Worker {
                shard: self.shard,
                attempt: self.attempt,
            },
            output_path: job_dir.join("output.run"),
            attempt_dir: Some(
                job_dir
                    .join(format!("shard-{}", self.shard))
                    .join(format!("attempt-{}", self.attempt)),
            ),
            job_dir,
        }
    }

    fn collect_manifests(&self, _job: &ShardJob, _expect: &ShardJobCheck) -> Vec<ShardManifest> {
        panic!("collect_manifests called on a worker");
    }

    fn commit_manifest(&self, job: &ShardJob, manifest: &ShardManifest) {
        let attempt_dir = job
            .attempt_dir
            .as_ref()
            .expect("worker job has an attempt dir");
        let path = attempt_dir.join("MANIFEST");
        if self.fail_shard == Some(self.shard) && self.attempt == 1 {
            // Fault injection: plant an undecodable manifest *without* the
            // atomic tmp+rename commit — exactly the debris a crash
            // mid-commit could leave — then die the way a crashed worker
            // dies.  The coordinator must reject the file on checksum and
            // re-execute this shard.
            let _ = std::fs::create_dir_all(attempt_dir);
            let _ = std::fs::write(&path, b"SMRM garbage, not a manifest");
            std::process::abort();
        }
        manifest
            .write_to(&path)
            .unwrap_or_else(|e| panic!("cannot commit manifest at {path:?}: {e}"));
    }
}
