//! End-to-end smoke tests for the multi-process sharded runtime: word
//! count across worker processes must be byte-identical to the in-process
//! engine, fresh runs and retried runs alike.
//!
//! Every test passes explicit worker arguments (`--exact <test_name>`) so
//! the re-invoked test binary replays only the calling test.

use smr_distrib::{last_session_stats, run_sharded, ShardOptions};
use smr_mapreduce::prelude::*;

struct Tokenize;
impl Mapper for Tokenize {
    type InKey = usize;
    type InValue = String;
    type OutKey = String;
    type OutValue = u64;
    fn map(&self, _k: &usize, text: &String, out: &mut Emitter<String, u64>) {
        for w in text.split_whitespace() {
            out.emit(w.to_string(), 1);
        }
    }
}

struct Sum;
impl Reducer for Sum {
    type Key = String;
    type InValue = u64;
    type OutKey = String;
    type OutValue = u64;
    fn reduce(&self, k: &String, vs: &[u64], out: &mut Emitter<String, u64>) {
        out.emit(k.clone(), vs.iter().sum());
    }
}

struct SumCombine;
impl Combiner for SumCombine {
    type Key = String;
    type Value = u64;
    fn combine(&self, _k: &String, vs: &[u64]) -> Vec<u64> {
        vec![vs.iter().sum()]
    }
}

fn corpus() -> Vec<(usize, String)> {
    let words = ["pablo", "picasso", "monet", "art", "photo", "tag", "flickr"];
    (0..97)
        .map(|i| {
            let text: Vec<&str> = (0..(i % 13 + 1)).map(|j| words[(i * 7 + j) % 7]).collect();
            (i, text.join(" "))
        })
        .collect()
}

fn word_count(config: JobConfig) -> JobResult<String, u64> {
    Job::new(config).run_with_combiner(&Tokenize, &SumCombine, &Sum, corpus())
}

fn options(shards: usize, test_name: &str) -> ShardOptions {
    ShardOptions::new(shards)
        .with_session_key(test_name)
        .with_worker_args(["--exact", test_name, "--nocapture"])
}

fn assert_sharded_matches_local(shards: usize, test_name: &str, budget: Option<u64>) {
    let config = JobConfig::named("smoke-wc")
        .with_threads(2)
        .with_map_tasks(8)
        .with_reduce_tasks(3)
        .with_memory_budget(budget);
    let local = word_count(config.clone());
    let sharded = run_sharded(options(shards, test_name), || {
        word_count(config.clone().with_process_shards(shards))
    });
    assert_eq!(
        sharded.output, local.output,
        "output must be byte-identical"
    );
    assert_eq!(
        sharded.counters.snapshot(),
        local.counters.snapshot(),
        "aggregated counters must match the in-process run"
    );
}

#[test]
fn one_shard_matches_local() {
    assert_sharded_matches_local(1, "one_shard_matches_local", None);
}

#[test]
fn three_shards_match_local() {
    assert_sharded_matches_local(3, "three_shards_match_local", None);
}

#[test]
fn sharding_composes_with_spilling() {
    assert_sharded_matches_local(2, "sharding_composes_with_spilling", Some(4096));
}

#[test]
fn killed_worker_is_retried_to_the_same_bytes() {
    let config = JobConfig::named("smoke-wc-faulty")
        .with_threads(2)
        .with_map_tasks(8)
        .with_reduce_tasks(3);
    let local = word_count(config.clone());
    let opts = options(2, "killed_worker_is_retried_to_the_same_bytes").with_fail_shard(Some(1));
    let sharded = run_sharded(opts, || word_count(config.clone().with_process_shards(2)));
    assert_eq!(sharded.output, local.output);
    assert_eq!(sharded.counters.snapshot(), local.counters.snapshot());
    let stats = last_session_stats().expect("a session just completed");
    assert!(
        stats.respawns >= 1,
        "the injected fault must have forced at least one respawn, got {stats:?}"
    );
}
