//! Property-based tests for the graph-side data structures: matchings,
//! capacities, threshold filtering and histograms.

use proptest::prelude::*;
use smr_graph::stats::similarity_histogram;
use smr_graph::{BipartiteGraph, Capacities, ConsumerId, Edge, ItemId, Matching, NodeId};

/// A random bipartite graph with deduplicated edges.
fn graph_strategy() -> impl Strategy<Value = BipartiteGraph> {
    (1usize..7, 1usize..7)
        .prop_flat_map(|(items, consumers)| {
            let edges = proptest::collection::vec(
                (0..items as u32, 0..consumers as u32, 0.01f64..1.0),
                0..(items * consumers + 1),
            );
            (Just(items), Just(consumers), edges)
        })
        .prop_map(|(items, consumers, raw)| {
            let mut seen = std::collections::HashSet::new();
            let edges: Vec<Edge> = raw
                .into_iter()
                .filter(|(t, c, _)| seen.insert((*t, *c)))
                .map(|(t, c, w)| Edge::new(ItemId(t), ConsumerId(c), w))
                .collect();
            BipartiteGraph::from_edges(items, consumers, edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adjacency_lists_the_same_edges_as_the_edge_list(graph in graph_strategy()) {
        // Every edge appears in exactly two adjacency lists (its item's and
        // its consumer's) and degrees sum to 2|E|.
        let degree_sum: usize = graph.nodes().map(|v| graph.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * graph.num_edges());
        for (id, edge) in graph.edges().iter().enumerate() {
            prop_assert!(graph.incident_edges(NodeId::Item(edge.item)).contains(&id));
            prop_assert!(graph.incident_edges(NodeId::Consumer(edge.consumer)).contains(&id));
        }
    }

    #[test]
    fn threshold_filtering_is_monotone_and_preserves_nodes(
        graph in graph_strategy(),
        sigma_lo in 0.0f64..0.5,
        delta in 0.0f64..0.5,
    ) {
        let sigma_hi = sigma_lo + delta;
        let lo = graph.filter_by_threshold(sigma_lo);
        let hi = graph.filter_by_threshold(sigma_hi);
        prop_assert!(hi.num_edges() <= lo.num_edges());
        prop_assert_eq!(lo.num_items(), graph.num_items());
        prop_assert_eq!(hi.num_consumers(), graph.num_consumers());
        prop_assert!(hi.edges().iter().all(|e| e.weight >= sigma_hi));
    }

    #[test]
    fn matching_insert_remove_roundtrip(
        graph in graph_strategy(),
        picks in proptest::collection::vec(any::<proptest::sample::Index>(), 0..10),
    ) {
        if graph.num_edges() == 0 {
            return Ok(());
        }
        let mut matching = Matching::new(graph.num_edges());
        let mut reference = std::collections::BTreeSet::new();
        for pick in picks {
            let e = pick.index(graph.num_edges());
            if reference.contains(&e) {
                prop_assert!(!matching.insert(e));
                prop_assert!(matching.remove(e));
                reference.remove(&e);
            } else {
                prop_assert!(matching.insert(e));
                reference.insert(e);
            }
        }
        prop_assert_eq!(matching.len(), reference.len());
        prop_assert_eq!(matching.to_edge_vec(), reference.iter().copied().collect::<Vec<_>>());
        // Value equals the sum of the selected edges' weights.
        let expected: f64 = reference.iter().map(|&e| graph.edge(e).weight).sum();
        prop_assert!((matching.value(&graph) - expected).abs() < 1e-9);
    }

    #[test]
    fn degrees_never_exceed_capacity_when_feasible(
        graph in graph_strategy(),
        cap in 1u64..4,
    ) {
        let caps = Capacities::uniform(&graph, cap, cap);
        // Select edges greedily under the capacity, then check the
        // feasibility predicate agrees with the construction.
        let mut matching = Matching::new(graph.num_edges());
        let mut item_used = vec![0u64; graph.num_items()];
        let mut consumer_used = vec![0u64; graph.num_consumers()];
        for (id, edge) in graph.edges().iter().enumerate() {
            if item_used[edge.item.index()] < cap && consumer_used[edge.consumer.index()] < cap {
                item_used[edge.item.index()] += 1;
                consumer_used[edge.consumer.index()] += 1;
                matching.insert(id);
            }
        }
        prop_assert!(matching.is_feasible(&graph, &caps));
        prop_assert_eq!(matching.average_violation(&graph, &caps), 0.0);
        prop_assert!(matching.violated_nodes(&graph, &caps).is_empty());
    }

    #[test]
    fn union_value_is_bounded_by_sum_of_parts(
        graph in graph_strategy(),
        split in 0.0f64..1.0,
    ) {
        if graph.num_edges() == 0 {
            return Ok(());
        }
        let cut = (graph.num_edges() as f64 * split) as usize;
        let mut a = Matching::from_edges(graph.num_edges(), 0..cut);
        let b = Matching::from_edges(graph.num_edges(), cut..graph.num_edges());
        let a_value = a.value(&graph);
        let b_value = b.value(&graph);
        a.union_with(&b);
        prop_assert_eq!(a.len(), graph.num_edges());
        prop_assert!((a.value(&graph) - (a_value + b_value)).abs() < 1e-9);
    }

    #[test]
    fn similarity_histogram_counts_every_edge(graph in graph_strategy()) {
        let histogram = similarity_histogram(&graph, 8);
        let counted: u64 = histogram.counts.iter().sum::<u64>() + histogram.underflow;
        prop_assert_eq!(counted, graph.num_edges() as u64);
    }
}
