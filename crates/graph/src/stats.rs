//! Distribution statistics: histograms and summaries.
//!
//! The appendix of the paper plots the distribution of edge similarities
//! (Figure 6) and of node capacities (Figure 7) for its three datasets.
//! The experiment harness regenerates those plots as textual histograms
//! built here.

use serde::{Deserialize, Serialize};

use crate::bipartite::BipartiteGraph;
use crate::capacity::Capacities;

/// A fixed-width or logarithmic histogram over positive values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive lower bound of each bucket.
    pub bucket_lower_bounds: Vec<f64>,
    /// Number of observations per bucket.
    pub counts: Vec<u64>,
    /// Observations below the first bucket (only possible for log-scale
    /// histograms with a positive minimum).
    pub underflow: u64,
    /// Total number of observations.
    pub total: u64,
}

impl Histogram {
    /// Builds a histogram with `num_buckets` equal-width buckets spanning
    /// `[min, max]`.
    ///
    /// # Panics
    /// Panics if `num_buckets` is zero or `max <= min`.
    pub fn linear(values: &[f64], min: f64, max: f64, num_buckets: usize) -> Self {
        assert!(num_buckets > 0, "need at least one bucket");
        assert!(max > min, "max must exceed min");
        let width = (max - min) / num_buckets as f64;
        let bounds: Vec<f64> = (0..num_buckets).map(|i| min + i as f64 * width).collect();
        let mut counts = vec![0u64; num_buckets];
        let mut underflow = 0u64;
        for &v in values {
            if v < min {
                underflow += 1;
            } else {
                let mut idx = ((v - min) / width) as usize;
                if idx >= num_buckets {
                    idx = num_buckets - 1;
                }
                counts[idx] += 1;
            }
        }
        Histogram {
            bucket_lower_bounds: bounds,
            counts,
            underflow,
            total: values.len() as u64,
        }
    }

    /// Builds a base-2 logarithmic histogram: bucket `i` covers
    /// `[2^i, 2^(i+1))` scaled so the first bucket starts at `min_positive`.
    /// Log-scale buckets match the heavy-tailed capacity distributions of
    /// Figure 7.
    pub fn log2(values: &[f64], min_positive: f64, num_buckets: usize) -> Self {
        assert!(num_buckets > 0, "need at least one bucket");
        assert!(
            min_positive > 0.0,
            "log histogram needs a positive lower bound"
        );
        let bounds: Vec<f64> = (0..num_buckets)
            .map(|i| min_positive * 2f64.powi(i as i32))
            .collect();
        let mut counts = vec![0u64; num_buckets];
        let mut underflow = 0u64;
        for &v in values {
            if v < min_positive {
                underflow += 1;
                continue;
            }
            let mut idx = (v / min_positive).log2().floor() as usize;
            if idx >= num_buckets {
                idx = num_buckets - 1;
            }
            counts[idx] += 1;
        }
        Histogram {
            bucket_lower_bounds: bounds,
            counts,
            underflow,
            total: values.len() as u64,
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.counts.len()
    }

    /// Fraction of observations in bucket `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Renders the histogram as aligned text rows `lower_bound count frac`.
    pub fn to_rows(&self) -> Vec<String> {
        self.bucket_lower_bounds
            .iter()
            .zip(&self.counts)
            .map(|(b, c)| {
                format!(
                    "{b:>12.4} {c:>10} {:>8.4}",
                    *c as f64 / self.total.max(1) as f64
                )
            })
            .collect()
    }
}

/// Five-number-ish summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (lower median for even counts).
    pub median: f64,
}

impl Summary {
    /// Computes the summary of a sample.  Returns `None` for an empty
    /// sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
        let count = sorted.len();
        Some(Summary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean: sorted.iter().sum::<f64>() / count as f64,
            median: sorted[(count - 1) / 2],
        })
    }
}

/// The edge-similarity distribution of a graph (Figure 6).
pub fn similarity_histogram(graph: &BipartiteGraph, num_buckets: usize) -> Histogram {
    let weights = graph.weights();
    let max = graph.max_weight().unwrap_or(1.0);
    let min = graph.min_weight().unwrap_or(0.0);
    if weights.is_empty() || max <= min {
        return Histogram::linear(&weights, 0.0, 1.0, num_buckets);
    }
    Histogram::linear(&weights, min, max, num_buckets)
}

/// The capacity distribution of a graph (Figure 7), separately for items
/// and consumers.
pub fn capacity_histograms(caps: &Capacities, num_buckets: usize) -> (Histogram, Histogram) {
    let items: Vec<f64> = caps.item_capacities().iter().map(|&c| c as f64).collect();
    let consumers: Vec<f64> = caps
        .consumer_capacities()
        .iter()
        .map(|&c| c as f64)
        .collect();
    (
        Histogram::log2(&items, 1.0, num_buckets),
        Histogram::log2(&consumers, 1.0, num_buckets),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::Edge;
    use crate::ids::{ConsumerId, ItemId};

    #[test]
    fn linear_histogram_counts_everything() {
        let values = vec![0.1, 0.2, 0.5, 0.9, 1.0];
        let h = Histogram::linear(&values, 0.0, 1.0, 4);
        assert_eq!(h.num_buckets(), 4);
        assert_eq!(h.counts.iter().sum::<u64>() + h.underflow, 5);
        // The maximum value lands in the last bucket, not out of range.
        assert_eq!(h.counts[3], 2);
        assert!((h.fraction(3) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn linear_histogram_tracks_underflow() {
        let h = Histogram::linear(&[-1.0, 0.5], 0.0, 1.0, 2);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.counts.iter().sum::<u64>(), 1);
    }

    #[test]
    fn log_histogram_buckets_powers_of_two() {
        let values = vec![1.0, 1.5, 2.0, 3.0, 4.0, 100.0];
        let h = Histogram::log2(&values, 1.0, 5);
        // [1,2): 1.0, 1.5 -> 2 ; [2,4): 2.0, 3.0 -> 2 ; [4,8): 4.0 -> 1 ;
        // overflow clamps 100.0 into the last bucket.
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 2);
        assert_eq!(h.counts[2], 1);
        assert_eq!(h.counts[4], 1);
        assert_eq!(h.underflow, 0);
    }

    #[test]
    fn summary_computes_order_statistics() {
        let s = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn graph_level_histograms() {
        let g = BipartiteGraph::from_edges(
            2,
            2,
            vec![
                Edge::new(ItemId(0), ConsumerId(0), 0.1),
                Edge::new(ItemId(0), ConsumerId(1), 0.5),
                Edge::new(ItemId(1), ConsumerId(1), 0.9),
            ],
        );
        let h = similarity_histogram(&g, 4);
        assert_eq!(h.total, 3);
        assert_eq!(h.counts.iter().sum::<u64>(), 3);

        let caps = Capacities::from_vectors(vec![1, 8], vec![2, 2]);
        let (items, consumers) = capacity_histograms(&caps, 6);
        assert_eq!(items.total, 2);
        assert_eq!(consumers.total, 2);
        assert_eq!(items.counts[0], 1); // capacity 1
        assert_eq!(items.counts[3], 1); // capacity 8 in [8,16)
        assert_eq!(consumers.counts[1], 2); // capacity 2 in [2,4)
    }

    #[test]
    fn to_rows_renders_one_line_per_bucket() {
        let h = Histogram::linear(&[0.5], 0.0, 1.0, 3);
        assert_eq!(h.to_rows().len(), 3);
    }
}
