//! Plain-text persistence of graphs and capacities.
//!
//! The format is a simple line-oriented edge list so that generated
//! datasets can be inspected, diffed and re-loaded:
//!
//! ```text
//! # items <n> consumers <m>
//! <item-index> <consumer-index> <weight>
//! ...
//! ```
//!
//! Capacities use one line per side:
//!
//! ```text
//! items 3 1 4
//! consumers 2 2
//! ```

use std::fmt::Write as _;
use std::num::{ParseFloatError, ParseIntError};

use crate::bipartite::{BipartiteGraph, Edge};
use crate::capacity::Capacities;
use crate::ids::{ConsumerId, ItemId};

/// Errors produced while parsing the text formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The header line is missing or malformed.
    MissingHeader,
    /// A line did not have the expected number of fields.
    MalformedLine {
        /// 1-based line number.
        line: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingHeader => write!(f, "missing '# items <n> consumers <m>' header"),
            ParseError::MalformedLine { line } => write!(f, "malformed line {line}"),
            ParseError::BadNumber { line, token } => {
                write!(f, "could not parse number '{token}' on line {line}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    fn bad_number(line: usize, token: &str) -> Self {
        ParseError::BadNumber {
            line,
            token: token.to_string(),
        }
    }
}

fn parse_usize(line: usize, token: &str) -> Result<usize, ParseError> {
    token
        .parse::<usize>()
        .map_err(|_: ParseIntError| ParseError::bad_number(line, token))
}

fn parse_u64(line: usize, token: &str) -> Result<u64, ParseError> {
    token
        .parse::<u64>()
        .map_err(|_: ParseIntError| ParseError::bad_number(line, token))
}

fn parse_f64(line: usize, token: &str) -> Result<f64, ParseError> {
    token
        .parse::<f64>()
        .map_err(|_: ParseFloatError| ParseError::bad_number(line, token))
}

/// Serializes a graph to the edge-list text format.
pub fn graph_to_string(graph: &BipartiteGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# items {} consumers {}",
        graph.num_items(),
        graph.num_consumers()
    );
    for e in graph.edges() {
        let _ = writeln!(out, "{} {} {}", e.item.0, e.consumer.0, e.weight);
    }
    out
}

/// Parses a graph from the edge-list text format.
pub fn graph_from_string(text: &str) -> Result<BipartiteGraph, ParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .by_ref()
        .find(|(_, l)| !l.trim().is_empty())
        .ok_or(ParseError::MissingHeader)?;
    let header_fields: Vec<&str> = header.split_whitespace().collect();
    if header_fields.len() != 5
        || header_fields[0] != "#"
        || header_fields[1] != "items"
        || header_fields[3] != "consumers"
    {
        return Err(ParseError::MissingHeader);
    }
    let num_items = parse_usize(1, header_fields[2])?;
    let num_consumers = parse_usize(1, header_fields[4])?;

    let mut edges = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(ParseError::MalformedLine { line: line_no });
        }
        let item = parse_usize(line_no, fields[0])? as u32;
        let consumer = parse_usize(line_no, fields[1])? as u32;
        let weight = parse_f64(line_no, fields[2])?;
        edges.push(Edge::new(ItemId(item), ConsumerId(consumer), weight));
    }
    Ok(BipartiteGraph::from_edges(num_items, num_consumers, edges))
}

/// Serializes capacities to the two-line text format.
pub fn capacities_to_string(caps: &Capacities) -> String {
    let mut out = String::new();
    let _ = write!(out, "items");
    for c in caps.item_capacities() {
        let _ = write!(out, " {c}");
    }
    let _ = writeln!(out);
    let _ = write!(out, "consumers");
    for c in caps.consumer_capacities() {
        let _ = write!(out, " {c}");
    }
    let _ = writeln!(out);
    out
}

/// Parses capacities from the two-line text format.
pub fn capacities_from_string(text: &str) -> Result<Capacities, ParseError> {
    let mut item_caps = Vec::new();
    let mut consumer_caps = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.is_empty() {
            continue;
        }
        let target = match fields[0] {
            "items" => &mut item_caps,
            "consumers" => &mut consumer_caps,
            _ => return Err(ParseError::MalformedLine { line: line_no }),
        };
        for token in &fields[1..] {
            target.push(parse_u64(line_no, token)?);
        }
    }
    Ok(Capacities::from_vectors(item_caps, consumer_caps))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            2,
            2,
            vec![
                Edge::new(ItemId(0), ConsumerId(1), 0.5),
                Edge::new(ItemId(1), ConsumerId(0), 1.25),
            ],
        )
    }

    #[test]
    fn graph_round_trips_through_text() {
        let g = sample();
        let text = graph_to_string(&g);
        let parsed = graph_from_string(&text).unwrap();
        assert_eq!(parsed.num_items(), 2);
        assert_eq!(parsed.num_consumers(), 2);
        assert_eq!(parsed.num_edges(), 2);
        assert_eq!(parsed.edge(0).item, ItemId(0));
        assert_eq!(parsed.edge(0).consumer, ConsumerId(1));
        assert!((parsed.edge(1).weight - 1.25).abs() < 1e-12);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "\n# items 1 consumers 1\n# a comment\n\n0 0 2.5\n";
        let g = graph_from_string(text).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge(0).weight, 2.5);
    }

    #[test]
    fn malformed_inputs_are_reported() {
        assert!(matches!(
            graph_from_string(""),
            Err(ParseError::MissingHeader)
        ));
        assert!(matches!(
            graph_from_string("# wrong header here x"),
            Err(ParseError::MissingHeader)
        ));
        let missing_field = "# items 1 consumers 1\n0 0\n";
        assert!(matches!(
            graph_from_string(missing_field),
            Err(ParseError::MalformedLine { line: 2 })
        ));
        let bad_number = "# items 1 consumers 1\n0 0 abc\n";
        assert!(matches!(
            graph_from_string(bad_number),
            Err(ParseError::BadNumber { line: 2, .. })
        ));
    }

    #[test]
    fn capacities_round_trip_through_text() {
        let caps = Capacities::from_vectors(vec![3, 1], vec![2, 2, 5]);
        let text = capacities_to_string(&caps);
        let parsed = capacities_from_string(&text).unwrap();
        assert_eq!(parsed, caps);
    }

    #[test]
    fn capacity_parse_errors() {
        assert!(matches!(
            capacities_from_string("widgets 1 2\n"),
            Err(ParseError::MalformedLine { line: 1 })
        ));
        assert!(matches!(
            capacities_from_string("items 1 x\nconsumers 1\n"),
            Err(ParseError::BadNumber { line: 1, .. })
        ));
    }

    #[test]
    fn parse_error_display_is_informative() {
        let e = ParseError::BadNumber {
            line: 3,
            token: "zz".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(ParseError::MissingHeader.to_string().contains("header"));
        assert!(ParseError::MalformedLine { line: 9 }
            .to_string()
            .contains('9'));
    }
}
