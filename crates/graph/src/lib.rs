//! Bipartite item–consumer graphs, node capacities and b-matchings.
//!
//! This crate provides the graph substrate of the reproduction of
//! "Social Content Matching in MapReduce" (VLDB 2011):
//!
//! * [`ids`] — typed identifiers for items (content) and consumers (users),
//! * [`bipartite`] — the weighted bipartite graph `G = (T, C, E)` of
//!   Problem 1, with adjacency access and threshold filtering,
//! * [`capacity`] — the capacity functions `b : T ∪ C → N` of Section 4
//!   (activity-proportional consumer capacities, uniform or
//!   quality-proportional item capacities, and the flickr / Yahoo! Answers
//!   formulas used in the evaluation),
//! * [`matching`] — b-matching solutions: value, feasibility, and the
//!   average capacity-violation measure ε′ of Section 6,
//! * [`stats`] — histograms of edge similarities and capacities
//!   (Figures 6 and 7),
//! * [`io`] — a plain-text edge-list format for persisting graphs.
//!
//! # Example
//!
//! ```
//! use smr_graph::prelude::*;
//!
//! let mut builder = GraphBuilder::new();
//! let t0 = builder.add_item("photo-0");
//! let c0 = builder.add_consumer("user-0");
//! let c1 = builder.add_consumer("user-1");
//! builder.add_edge(t0, c0, 0.9);
//! builder.add_edge(t0, c1, 0.4);
//! let graph = builder.build();
//!
//! let caps = Capacities::uniform(&graph, 1, 1);
//! let mut m = Matching::new(graph.num_edges());
//! m.insert(0);
//! assert!(m.is_feasible(&graph, &caps));
//! assert!((m.value(&graph) - 0.9).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bipartite;
pub mod capacity;
pub mod ids;
pub mod io;
pub mod matching;
pub mod stats;

pub use bipartite::{BipartiteGraph, Edge, EdgeId, GraphBuilder};
pub use capacity::{Capacities, CapacityModel};
pub use ids::{ConsumerId, ItemId, NodeId};
pub use matching::Matching;
pub use stats::{Histogram, Summary};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::bipartite::{BipartiteGraph, Edge, EdgeId, GraphBuilder};
    pub use crate::capacity::{Capacities, CapacityModel};
    pub use crate::ids::{ConsumerId, ItemId, NodeId};
    pub use crate::matching::Matching;
    pub use crate::stats::{Histogram, Summary};
}
