//! Node capacities `b : T ∪ C → N` and the capacity-assignment policies of
//! Section 4 of the paper.
//!
//! * Consumer capacities are proportional to the consumer's activity in the
//!   system: `b(c) = α · n(c)` where `n(c)` is an activity proxy (photos
//!   posted for flickr, answers written for Yahoo! Answers) and α a global
//!   knob that simulates higher or lower system activity.
//! * The total item budget is tied to the total consumer budget,
//!   `B = Σ_c b(c)`, because `B` bounds how many item deliveries can happen.
//! * Without a quality assessment all items share `B` equally:
//!   `b(t) = max(1, B / |T|)` (the Yahoo! Answers setting).
//! * With a quality score `q(t)` (normalized to sum to one) the budget is
//!   split proportionally: `b(t) = max(1, q(t)·B)` (the flickr setting,
//!   where `q` is the share of favourites a photo received).

use serde::{Deserialize, Serialize};

use crate::bipartite::BipartiteGraph;
use crate::ids::{ConsumerId, ItemId, NodeId};

/// Per-node capacities for a specific bipartite graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capacities {
    item_caps: Vec<u64>,
    consumer_caps: Vec<u64>,
}

impl Capacities {
    /// Creates capacities from explicit per-node vectors.
    ///
    /// # Panics
    /// Panics if any capacity is zero — the b-matching problem is defined
    /// with capacities in `N = {1, 2, …}`; a node that must receive nothing
    /// should simply not appear in the graph.
    pub fn from_vectors(item_caps: Vec<u64>, consumer_caps: Vec<u64>) -> Self {
        assert!(
            item_caps.iter().chain(consumer_caps.iter()).all(|&b| b > 0),
            "capacities must be strictly positive"
        );
        Capacities {
            item_caps,
            consumer_caps,
        }
    }

    /// Uniform capacities: every item gets `item_cap`, every consumer gets
    /// `consumer_cap`.
    pub fn uniform(graph: &BipartiteGraph, item_cap: u64, consumer_cap: u64) -> Self {
        Capacities::from_vectors(
            vec![item_cap; graph.num_items()],
            vec![consumer_cap; graph.num_consumers()],
        )
    }

    /// Capacity of an item.
    #[inline]
    pub fn item(&self, t: ItemId) -> u64 {
        self.item_caps[t.index()]
    }

    /// Capacity of a consumer.
    #[inline]
    pub fn consumer(&self, c: ConsumerId) -> u64 {
        self.consumer_caps[c.index()]
    }

    /// Capacity of any node.
    #[inline]
    pub fn of(&self, node: NodeId) -> u64 {
        match node {
            NodeId::Item(t) => self.item(t),
            NodeId::Consumer(c) => self.consumer(c),
        }
    }

    /// Number of items covered.
    pub fn num_items(&self) -> usize {
        self.item_caps.len()
    }

    /// Number of consumers covered.
    pub fn num_consumers(&self) -> usize {
        self.consumer_caps.len()
    }

    /// Total item-side budget `Σ_t b(t)`.
    pub fn total_item_capacity(&self) -> u64 {
        self.item_caps.iter().sum()
    }

    /// Total consumer-side budget `B = Σ_c b(c)`.
    pub fn total_consumer_capacity(&self) -> u64 {
        self.consumer_caps.iter().sum()
    }

    /// All item capacities (dense by [`ItemId`]).
    pub fn item_capacities(&self) -> &[u64] {
        &self.item_caps
    }

    /// All consumer capacities (dense by [`ConsumerId`]).
    pub fn consumer_capacities(&self) -> &[u64] {
        &self.consumer_caps
    }

    /// Checks that the capacity vectors match the graph's node counts.
    pub fn matches(&self, graph: &BipartiteGraph) -> bool {
        self.item_caps.len() == graph.num_items()
            && self.consumer_caps.len() == graph.num_consumers()
    }
}

/// The capacity-assignment policies of Section 4, parameterized by the
/// activity factor α.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityModel {
    /// The activity multiplier α: higher values simulate a system in which
    /// consumers log in (and therefore can be shown content) more often.
    pub alpha: f64,
}

impl Default for CapacityModel {
    fn default() -> Self {
        CapacityModel { alpha: 1.0 }
    }
}

impl CapacityModel {
    /// Creates a model with the given α.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        CapacityModel { alpha }
    }

    /// Consumer capacities from an activity proxy: `b(c) = max(1, ⌈α·n(c)⌉)`.
    pub fn consumer_capacities(&self, activity: &[u64]) -> Vec<u64> {
        activity
            .iter()
            .map(|&n| ((self.alpha * n as f64).round() as u64).max(1))
            .collect()
    }

    /// Uniform item capacities: `b(t) = max(1, ⌊B / |T|⌋)`.
    pub fn uniform_item_capacities(&self, total_budget: u64, num_items: usize) -> Vec<u64> {
        assert!(num_items > 0, "cannot assign capacities to zero items");
        let per_item = (total_budget / num_items as u64).max(1);
        vec![per_item; num_items]
    }

    /// Quality-proportional item capacities: `b(t) = max(1, round(q(t)·B))`
    /// where `q` is normalized to sum to one.
    ///
    /// # Panics
    /// Panics if `quality` is empty or sums to zero.
    pub fn quality_item_capacities(&self, total_budget: u64, quality: &[f64]) -> Vec<u64> {
        assert!(!quality.is_empty(), "quality scores must be non-empty");
        let total: f64 = quality.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "quality scores must have a positive finite sum"
        );
        quality
            .iter()
            .map(|&q| (((q / total) * total_budget as f64).round() as u64).max(1))
            .collect()
    }

    /// The flickr policy of Section 6: consumers get activity-proportional
    /// capacities from the number of photos they posted, photos get
    /// favourite-proportional capacities:
    /// `b(p) = f(p) · Σ_u α·n(u) / Σ_q f(q)`.
    pub fn flickr(&self, photos_per_user: &[u64], favorites_per_photo: &[u64]) -> Capacities {
        let consumer_caps = self.consumer_capacities(photos_per_user);
        let budget: u64 = consumer_caps.iter().sum();
        let quality: Vec<f64> = favorites_per_photo.iter().map(|&f| f as f64).collect();
        let item_caps = if quality.iter().sum::<f64>() > 0.0 {
            self.quality_item_capacities(budget, &quality)
        } else {
            self.uniform_item_capacities(budget, favorites_per_photo.len())
        };
        Capacities::from_vectors(item_caps, consumer_caps)
    }

    /// The Yahoo! Answers policy of Section 6: consumers get
    /// activity-proportional capacities from the number of answers they
    /// wrote, and every question gets the same capacity
    /// `b(q) = Σ_u α·n(u) / |Q|`.
    pub fn answers(&self, answers_per_user: &[u64], num_questions: usize) -> Capacities {
        let consumer_caps = self.consumer_capacities(answers_per_user);
        let budget: u64 = consumer_caps.iter().sum();
        let item_caps = self.uniform_item_capacities(budget, num_questions);
        Capacities::from_vectors(item_caps, consumer_caps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::Edge;

    #[test]
    fn uniform_capacities_cover_every_node() {
        let g = BipartiteGraph::from_edges(2, 3, vec![Edge::new(ItemId(0), ConsumerId(0), 1.0)]);
        let caps = Capacities::uniform(&g, 2, 5);
        assert!(caps.matches(&g));
        assert_eq!(caps.item(ItemId(1)), 2);
        assert_eq!(caps.consumer(ConsumerId(2)), 5);
        assert_eq!(caps.of(NodeId::item(0)), 2);
        assert_eq!(caps.of(NodeId::consumer(0)), 5);
        assert_eq!(caps.total_item_capacity(), 4);
        assert_eq!(caps.total_consumer_capacity(), 15);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_capacities_are_rejected() {
        Capacities::from_vectors(vec![1, 0], vec![1]);
    }

    #[test]
    fn consumer_capacities_scale_with_alpha_and_floor_at_one() {
        let activity = vec![0, 1, 10, 100];
        let low = CapacityModel::new(0.5).consumer_capacities(&activity);
        assert_eq!(low, vec![1, 1, 5, 50]);
        let high = CapacityModel::new(2.0).consumer_capacities(&activity);
        assert_eq!(high, vec![1, 2, 20, 200]);
    }

    #[test]
    fn uniform_item_capacities_split_budget() {
        let m = CapacityModel::default();
        assert_eq!(m.uniform_item_capacities(100, 10), vec![10; 10]);
        // A tiny budget still gives every item capacity one.
        assert_eq!(m.uniform_item_capacities(3, 10), vec![1; 10]);
    }

    #[test]
    fn quality_item_capacities_are_proportional() {
        let m = CapacityModel::default();
        let caps = m.quality_item_capacities(100, &[3.0, 1.0]);
        assert_eq!(caps, vec![75, 25]);
        // Unnormalized scores are normalized internally.
        let caps2 = m.quality_item_capacities(100, &[30.0, 10.0]);
        assert_eq!(caps, caps2);
        // Items with negligible quality still get capacity one.
        let caps3 = m.quality_item_capacities(10, &[1000.0, 0.0001]);
        assert_eq!(caps3[1], 1);
    }

    #[test]
    fn flickr_policy_ties_item_budget_to_consumer_budget() {
        let m = CapacityModel::new(1.0);
        let photos_per_user = vec![4, 6]; // budget = 10
        let favorites = vec![1, 1, 8]; // photo 2 is the popular one
        let caps = m.flickr(&photos_per_user, &favorites);
        assert_eq!(caps.total_consumer_capacity(), 10);
        assert_eq!(caps.item(ItemId(2)), 8);
        assert_eq!(caps.item(ItemId(0)), 1);
        assert_eq!(caps.num_items(), 3);
    }

    #[test]
    fn flickr_policy_with_no_favorites_falls_back_to_uniform() {
        let m = CapacityModel::new(1.0);
        let caps = m.flickr(&[5, 5], &[0, 0]);
        assert_eq!(caps.item_capacities(), &[5, 5]);
    }

    #[test]
    fn answers_policy_gives_constant_question_capacity() {
        let m = CapacityModel::new(1.0);
        let caps = m.answers(&[2, 4, 6], 4); // budget = 12, 4 questions
        assert_eq!(caps.item_capacities(), &[3, 3, 3, 3]);
        assert_eq!(caps.consumer_capacities(), &[2, 4, 6]);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn non_positive_alpha_is_rejected() {
        CapacityModel::new(0.0);
    }
}
