//! b-matching solutions.
//!
//! A b-matching is a subset of the edges such that at most `b(v)` selected
//! edges are incident to every node `v`.  The algorithms in `smr-matching`
//! produce [`Matching`] values; this module knows how to score them
//! (total weight), check feasibility, and compute the *average capacity
//! violation* ε′ that Figure 4 of the paper reports for StackMR:
//!
//! ```text
//! ε′ = 1/|V| · Σ_v max(|M(v)| − b(v), 0) / b(v)
//! ```

use serde::{Deserialize, Serialize};

use crate::bipartite::{BipartiteGraph, EdgeId};
use crate::capacity::Capacities;
use crate::ids::NodeId;

/// A (possibly infeasible) set of selected edges of a specific graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Matching {
    selected: Vec<bool>,
    num_selected: usize,
}

impl Matching {
    /// Creates an empty matching over a graph with `num_edges` edges.
    pub fn new(num_edges: usize) -> Self {
        Matching {
            selected: vec![false; num_edges],
            num_selected: 0,
        }
    }

    /// Creates a matching from an explicit list of selected edge ids.
    pub fn from_edges(num_edges: usize, edges: impl IntoIterator<Item = EdgeId>) -> Self {
        let mut m = Matching::new(num_edges);
        for e in edges {
            m.insert(e);
        }
        m
    }

    /// Number of edges the underlying graph has.
    pub fn num_graph_edges(&self) -> usize {
        self.selected.len()
    }

    /// Number of selected edges.
    pub fn len(&self) -> usize {
        self.num_selected
    }

    /// Whether no edge is selected.
    pub fn is_empty(&self) -> bool {
        self.num_selected == 0
    }

    /// Whether edge `e` is selected.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        self.selected[e]
    }

    /// Selects edge `e`.  Returns `true` if the edge was newly inserted.
    pub fn insert(&mut self, e: EdgeId) -> bool {
        if self.selected[e] {
            false
        } else {
            self.selected[e] = true;
            self.num_selected += 1;
            true
        }
    }

    /// Unselects edge `e`.  Returns `true` if the edge was present.
    pub fn remove(&mut self, e: EdgeId) -> bool {
        if self.selected[e] {
            self.selected[e] = false;
            self.num_selected -= 1;
            true
        } else {
            false
        }
    }

    /// Iterator over the selected edge ids in increasing order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.selected
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| if s { Some(i) } else { None })
    }

    /// Total weight of the selected edges.
    pub fn value(&self, graph: &BipartiteGraph) -> f64 {
        self.edges().map(|e| graph.edge(e).weight).sum()
    }

    /// Number of selected edges incident to `node` (`|M(v)|`).
    pub fn degree(&self, graph: &BipartiteGraph, node: NodeId) -> usize {
        graph
            .incident_edges(node)
            .iter()
            .filter(|&&e| self.selected[e])
            .count()
    }

    /// Whether every node respects its capacity.
    pub fn is_feasible(&self, graph: &BipartiteGraph, caps: &Capacities) -> bool {
        graph
            .nodes()
            .all(|v| self.degree(graph, v) as u64 <= caps.of(v))
    }

    /// Nodes whose capacity is exceeded, with their overflow `|M(v)| − b(v)`.
    pub fn violated_nodes(&self, graph: &BipartiteGraph, caps: &Capacities) -> Vec<(NodeId, u64)> {
        graph
            .nodes()
            .filter_map(|v| {
                let deg = self.degree(graph, v) as u64;
                let cap = caps.of(v);
                if deg > cap {
                    Some((v, deg - cap))
                } else {
                    None
                }
            })
            .collect()
    }

    /// The paper's average capacity violation ε′ (Section 6):
    /// `1/|V| · Σ_v max(|M(v)| − b(v), 0) / b(v)`.
    pub fn average_violation(&self, graph: &BipartiteGraph, caps: &Capacities) -> f64 {
        let num_nodes = graph.num_nodes();
        if num_nodes == 0 {
            return 0.0;
        }
        let sum: f64 = graph
            .nodes()
            .map(|v| {
                let deg = self.degree(graph, v) as f64;
                let cap = caps.of(v) as f64;
                ((deg - cap).max(0.0)) / cap
            })
            .sum();
        sum / num_nodes as f64
    }

    /// The worst single-node relative violation
    /// `max_v (|M(v)| − b(v))⁺ / b(v)`; StackMR guarantees this is at most
    /// ε.
    pub fn max_violation(&self, graph: &BipartiteGraph, caps: &Capacities) -> f64 {
        graph
            .nodes()
            .map(|v| {
                let deg = self.degree(graph, v) as f64;
                let cap = caps.of(v) as f64;
                ((deg - cap).max(0.0)) / cap
            })
            .fold(0.0, f64::max)
    }

    /// Merges another matching into this one (set union).
    pub fn union_with(&mut self, other: &Matching) {
        assert_eq!(self.selected.len(), other.selected.len());
        for e in 0..self.selected.len() {
            if other.selected[e] {
                self.insert(e);
            }
        }
    }

    /// Returns the selected edges as a sorted vector (convenient for tests
    /// and serialization).
    pub fn to_edge_vec(&self) -> Vec<EdgeId> {
        self.edges().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::Edge;
    use crate::ids::{ConsumerId, ItemId};

    /// 2 items × 2 consumers complete bipartite graph.
    fn k22() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            2,
            2,
            vec![
                Edge::new(ItemId(0), ConsumerId(0), 1.0),
                Edge::new(ItemId(0), ConsumerId(1), 2.0),
                Edge::new(ItemId(1), ConsumerId(0), 3.0),
                Edge::new(ItemId(1), ConsumerId(1), 4.0),
            ],
        )
    }

    #[test]
    fn insert_remove_and_len() {
        let mut m = Matching::new(4);
        assert!(m.is_empty());
        assert!(m.insert(2));
        assert!(!m.insert(2));
        assert!(m.contains(2));
        assert_eq!(m.len(), 1);
        assert!(m.remove(2));
        assert!(!m.remove(2));
        assert!(m.is_empty());
    }

    #[test]
    fn value_and_degree() {
        let g = k22();
        let m = Matching::from_edges(4, [0, 3]);
        assert!((m.value(&g) - 5.0).abs() < 1e-12);
        assert_eq!(m.degree(&g, NodeId::item(0)), 1);
        assert_eq!(m.degree(&g, NodeId::item(1)), 1);
        assert_eq!(m.degree(&g, NodeId::consumer(0)), 1);
        assert_eq!(m.degree(&g, NodeId::consumer(1)), 1);
    }

    #[test]
    fn feasibility_respects_capacities() {
        let g = k22();
        let caps1 = Capacities::uniform(&g, 1, 1);
        let perfect = Matching::from_edges(4, [1, 2]); // t0-c1, t1-c0
        assert!(perfect.is_feasible(&g, &caps1));
        let overloaded = Matching::from_edges(4, [0, 1]); // both edges of t0
        assert!(!overloaded.is_feasible(&g, &caps1));
        let caps2 = Capacities::uniform(&g, 2, 1);
        assert!(overloaded.is_feasible(&g, &caps2));
    }

    #[test]
    fn violation_measures() {
        let g = k22();
        let caps = Capacities::uniform(&g, 1, 1);
        // All four edges selected: every node has degree 2, capacity 1.
        let all = Matching::from_edges(4, [0, 1, 2, 3]);
        let violated = all.violated_nodes(&g, &caps);
        assert_eq!(violated.len(), 4);
        assert!(violated.iter().all(|&(_, overflow)| overflow == 1));
        // Every node overflows by 1/1 = 1.0, so the average is 1.0.
        assert!((all.average_violation(&g, &caps) - 1.0).abs() < 1e-12);
        assert!((all.max_violation(&g, &caps) - 1.0).abs() < 1e-12);
        // A feasible matching has zero violation.
        let ok = Matching::from_edges(4, [1, 2]);
        assert_eq!(ok.average_violation(&g, &caps), 0.0);
        assert_eq!(ok.max_violation(&g, &caps), 0.0);
        assert!(ok.violated_nodes(&g, &caps).is_empty());
    }

    #[test]
    fn union_accumulates_edges() {
        let mut a = Matching::from_edges(4, [0]);
        let b = Matching::from_edges(4, [0, 3]);
        a.union_with(&b);
        assert_eq!(a.to_edge_vec(), vec![0, 3]);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn empty_graph_has_zero_violation() {
        let g = BipartiteGraph::from_edges(0, 0, vec![]);
        let caps = Capacities::from_vectors(vec![], vec![]);
        let m = Matching::new(0);
        assert_eq!(m.average_violation(&g, &caps), 0.0);
        assert!(m.is_feasible(&g, &caps));
    }
}
