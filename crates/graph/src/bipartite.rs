//! The weighted bipartite graph of Problem 1.

use serde::{Deserialize, Serialize};

use crate::ids::{ConsumerId, ItemId, NodeId};

/// Index of an edge in a [`BipartiteGraph`].
pub type EdgeId = usize;

/// A weighted edge between an item and a consumer.
///
/// Weights are the relevance scores `w(t, c) > 0` of the paper (for the
/// social-content application they are tf·idf dot products produced by the
/// similarity join).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// The item endpoint.
    pub item: ItemId,
    /// The consumer endpoint.
    pub consumer: ConsumerId,
    /// The positive relevance score of delivering `item` to `consumer`.
    pub weight: f64,
}

impl Edge {
    /// Creates an edge.
    pub fn new(item: ItemId, consumer: ConsumerId, weight: f64) -> Self {
        Edge {
            item,
            consumer,
            weight,
        }
    }

    /// The endpoint of this edge on the given side.
    pub fn endpoint(&self, side_item: bool) -> NodeId {
        if side_item {
            NodeId::Item(self.item)
        } else {
            NodeId::Consumer(self.consumer)
        }
    }

    /// The endpoint opposite to `node`.
    ///
    /// # Panics
    /// Panics in debug builds if `node` is not an endpoint of this edge.
    pub fn other_endpoint(&self, node: NodeId) -> NodeId {
        match node {
            NodeId::Item(t) => {
                debug_assert_eq!(t, self.item);
                NodeId::Consumer(self.consumer)
            }
            NodeId::Consumer(c) => {
                debug_assert_eq!(c, self.consumer);
                NodeId::Item(self.item)
            }
        }
    }

    /// Whether `node` is an endpoint of this edge.
    pub fn touches(&self, node: NodeId) -> bool {
        match node {
            NodeId::Item(t) => t == self.item,
            NodeId::Consumer(c) => c == self.consumer,
        }
    }
}

/// The undirected bipartite graph `G = (T, C, E)` with positive edge
/// weights.
///
/// The edge list is the primary representation; adjacency (per-node lists
/// of incident edge indices) is built once at construction so that both the
/// centralized algorithms and the node-centric MapReduce jobs can iterate
/// over neighbourhoods cheaply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BipartiteGraph {
    num_items: usize,
    num_consumers: usize,
    edges: Vec<Edge>,
    item_labels: Vec<String>,
    consumer_labels: Vec<String>,
    /// `item_adj[t]` = indices of edges incident to item `t`.
    item_adj: Vec<Vec<EdgeId>>,
    /// `consumer_adj[c]` = indices of edges incident to consumer `c`.
    consumer_adj: Vec<Vec<EdgeId>>,
}

impl BipartiteGraph {
    /// Builds a graph from explicit side sizes and an edge list.
    ///
    /// # Panics
    /// Panics if an edge references a node outside the declared sides or
    /// has a non-positive / non-finite weight.
    pub fn from_edges(num_items: usize, num_consumers: usize, edges: Vec<Edge>) -> Self {
        let item_labels = (0..num_items).map(|i| format!("t{i}")).collect();
        let consumer_labels = (0..num_consumers).map(|i| format!("c{i}")).collect();
        Self::from_edges_labelled(
            num_items,
            num_consumers,
            edges,
            item_labels,
            consumer_labels,
        )
    }

    fn from_edges_labelled(
        num_items: usize,
        num_consumers: usize,
        edges: Vec<Edge>,
        item_labels: Vec<String>,
        consumer_labels: Vec<String>,
    ) -> Self {
        assert_eq!(item_labels.len(), num_items);
        assert_eq!(consumer_labels.len(), num_consumers);
        let mut item_adj = vec![Vec::new(); num_items];
        let mut consumer_adj = vec![Vec::new(); num_consumers];
        for (idx, e) in edges.iter().enumerate() {
            assert!(
                e.item.index() < num_items,
                "edge {idx} references item {} outside 0..{num_items}",
                e.item
            );
            assert!(
                e.consumer.index() < num_consumers,
                "edge {idx} references consumer {} outside 0..{num_consumers}",
                e.consumer
            );
            assert!(
                e.weight.is_finite() && e.weight > 0.0,
                "edge {idx} has non-positive or non-finite weight {}",
                e.weight
            );
            item_adj[e.item.index()].push(idx);
            consumer_adj[e.consumer.index()].push(idx);
        }
        BipartiteGraph {
            num_items,
            num_consumers,
            edges,
            item_labels,
            consumer_labels,
            item_adj,
            consumer_adj,
        }
    }

    /// Number of items `|T|`.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of consumers `|C|`.
    pub fn num_consumers(&self) -> usize {
        self.num_consumers
    }

    /// Number of nodes `|T| + |C|`.
    pub fn num_nodes(&self) -> usize {
        self.num_items + self.num_consumers
    }

    /// Number of edges `|E|`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge with the given index.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id]
    }

    /// All edges, in index order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The label attached to an item (dataset-specific, e.g. a photo id).
    pub fn item_label(&self, t: ItemId) -> &str {
        &self.item_labels[t.index()]
    }

    /// The label attached to a consumer.
    pub fn consumer_label(&self, c: ConsumerId) -> &str {
        &self.consumer_labels[c.index()]
    }

    /// Indices of the edges incident to `node`.
    pub fn incident_edges(&self, node: NodeId) -> &[EdgeId] {
        match node {
            NodeId::Item(t) => &self.item_adj[t.index()],
            NodeId::Consumer(c) => &self.consumer_adj[c.index()],
        }
    }

    /// Degree of `node` (number of incident candidate edges).
    pub fn degree(&self, node: NodeId) -> usize {
        self.incident_edges(node).len()
    }

    /// Iterator over every node of the graph (items first).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_items as u32)
            .map(NodeId::item)
            .chain((0..self.num_consumers as u32).map(NodeId::consumer))
    }

    /// Maximum edge weight (`w_max`), or `None` for an edgeless graph.
    pub fn max_weight(&self) -> Option<f64> {
        self.edges
            .iter()
            .map(|e| e.weight)
            .max_by(|a, b| a.partial_cmp(b).expect("weights are finite"))
    }

    /// Minimum edge weight (`w_min`), or `None` for an edgeless graph.
    pub fn min_weight(&self) -> Option<f64> {
        self.edges
            .iter()
            .map(|e| e.weight)
            .min_by(|a, b| a.partial_cmp(b).expect("weights are finite"))
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Returns a new graph containing only the edges with weight `>= sigma`.
    ///
    /// This is the σ-thresholding of Section 4 used to sweep the number of
    /// candidate edges in the experiments.  Node sets (and labels) are kept
    /// unchanged so that capacities remain comparable across thresholds.
    pub fn filter_by_threshold(&self, sigma: f64) -> BipartiteGraph {
        let edges: Vec<Edge> = self
            .edges
            .iter()
            .copied()
            .filter(|e| e.weight >= sigma)
            .collect();
        BipartiteGraph::from_edges_labelled(
            self.num_items,
            self.num_consumers,
            edges,
            self.item_labels.clone(),
            self.consumer_labels.clone(),
        )
    }

    /// The edge-weight values, useful for similarity-distribution plots.
    pub fn weights(&self) -> Vec<f64> {
        self.edges.iter().map(|e| e.weight).collect()
    }
}

/// Incremental builder for [`BipartiteGraph`].
///
/// The similarity join and the dataset generators discover items, consumers
/// and edges as they go; the builder assigns dense ids and validates edges
/// at [`GraphBuilder::build`] time.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    item_labels: Vec<String>,
    consumer_labels: Vec<String>,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Adds an item with the given label and returns its id.
    pub fn add_item(&mut self, label: impl Into<String>) -> ItemId {
        let id = ItemId(self.item_labels.len() as u32);
        self.item_labels.push(label.into());
        id
    }

    /// Adds a consumer with the given label and returns its id.
    pub fn add_consumer(&mut self, label: impl Into<String>) -> ConsumerId {
        let id = ConsumerId(self.consumer_labels.len() as u32);
        self.consumer_labels.push(label.into());
        id
    }

    /// Adds `count` anonymous items, returning the id of the first.
    pub fn add_items(&mut self, count: usize) -> ItemId {
        let first = ItemId(self.item_labels.len() as u32);
        for i in 0..count {
            self.add_item(format!("t{}", first.0 as usize + i));
        }
        first
    }

    /// Adds `count` anonymous consumers, returning the id of the first.
    pub fn add_consumers(&mut self, count: usize) -> ConsumerId {
        let first = ConsumerId(self.consumer_labels.len() as u32);
        for i in 0..count {
            self.add_consumer(format!("c{}", first.0 as usize + i));
        }
        first
    }

    /// Adds an edge between an already-added item and consumer.
    pub fn add_edge(&mut self, item: ItemId, consumer: ConsumerId, weight: f64) -> &mut Self {
        self.edges.push(Edge::new(item, consumer, weight));
        self
    }

    /// Number of items added so far.
    pub fn num_items(&self) -> usize {
        self.item_labels.len()
    }

    /// Number of consumers added so far.
    pub fn num_consumers(&self) -> usize {
        self.consumer_labels.len()
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph.
    ///
    /// # Panics
    /// Panics if any edge references an id that was never added or has a
    /// non-positive weight.
    pub fn build(self) -> BipartiteGraph {
        BipartiteGraph::from_edges_labelled(
            self.item_labels.len(),
            self.consumer_labels.len(),
            self.edges,
            self.item_labels,
            self.consumer_labels,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> BipartiteGraph {
        // 2 items, 3 consumers, 4 edges.
        BipartiteGraph::from_edges(
            2,
            3,
            vec![
                Edge::new(ItemId(0), ConsumerId(0), 1.0),
                Edge::new(ItemId(0), ConsumerId(1), 0.5),
                Edge::new(ItemId(1), ConsumerId(1), 2.0),
                Edge::new(ItemId(1), ConsumerId(2), 0.25),
            ],
        )
    }

    #[test]
    fn counts_and_adjacency() {
        let g = sample_graph();
        assert_eq!(g.num_items(), 2);
        assert_eq!(g.num_consumers(), 3);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(NodeId::item(0)), 2);
        assert_eq!(g.degree(NodeId::item(1)), 2);
        assert_eq!(g.degree(NodeId::consumer(1)), 2);
        assert_eq!(g.degree(NodeId::consumer(2)), 1);
        assert_eq!(g.incident_edges(NodeId::consumer(1)), &[1, 2]);
    }

    #[test]
    fn weight_extremes_and_total() {
        let g = sample_graph();
        assert_eq!(g.max_weight(), Some(2.0));
        assert_eq!(g.min_weight(), Some(0.25));
        assert!((g.total_weight() - 3.75).abs() < 1e-12);
        let empty = BipartiteGraph::from_edges(1, 1, vec![]);
        assert_eq!(empty.max_weight(), None);
        assert_eq!(empty.min_weight(), None);
    }

    #[test]
    fn threshold_filtering_keeps_nodes_and_drops_light_edges() {
        let g = sample_graph();
        let filtered = g.filter_by_threshold(0.5);
        assert_eq!(filtered.num_items(), 2);
        assert_eq!(filtered.num_consumers(), 3);
        assert_eq!(filtered.num_edges(), 3);
        assert!(filtered.edges().iter().all(|e| e.weight >= 0.5));
        // Filtering with a threshold below the minimum keeps everything.
        assert_eq!(g.filter_by_threshold(0.0).num_edges(), 4);
        // Filtering above the maximum removes everything.
        assert_eq!(g.filter_by_threshold(3.0).num_edges(), 0);
    }

    #[test]
    fn edge_endpoint_helpers() {
        let e = Edge::new(ItemId(3), ConsumerId(7), 1.5);
        assert_eq!(e.other_endpoint(NodeId::item(3)), NodeId::consumer(7));
        assert_eq!(e.other_endpoint(NodeId::consumer(7)), NodeId::item(3));
        assert!(e.touches(NodeId::item(3)));
        assert!(e.touches(NodeId::consumer(7)));
        assert!(!e.touches(NodeId::item(4)));
        assert_eq!(e.endpoint(true), NodeId::item(3));
        assert_eq!(e.endpoint(false), NodeId::consumer(7));
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = GraphBuilder::new();
        let t0 = b.add_item("photo-a");
        let t1 = b.add_item("photo-b");
        let c0 = b.add_consumer("user-a");
        b.add_edge(t0, c0, 0.3);
        b.add_edge(t1, c0, 0.6);
        assert_eq!(b.num_items(), 2);
        assert_eq!(b.num_consumers(), 1);
        assert_eq!(b.num_edges(), 2);
        let g = b.build();
        assert_eq!(g.item_label(t0), "photo-a");
        assert_eq!(g.item_label(t1), "photo-b");
        assert_eq!(g.consumer_label(c0), "user-a");
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn builder_bulk_add() {
        let mut b = GraphBuilder::new();
        let first_item = b.add_items(3);
        let first_consumer = b.add_consumers(2);
        assert_eq!(first_item, ItemId(0));
        assert_eq!(first_consumer, ConsumerId(0));
        assert_eq!(b.num_items(), 3);
        assert_eq!(b.num_consumers(), 2);
        let more = b.add_items(2);
        assert_eq!(more, ItemId(3));
    }

    #[test]
    fn nodes_iterator_lists_items_then_consumers() {
        let g = sample_graph();
        let nodes: Vec<NodeId> = g.nodes().collect();
        assert_eq!(nodes.len(), 5);
        assert_eq!(nodes[0], NodeId::item(0));
        assert_eq!(nodes[2], NodeId::consumer(0));
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn zero_weight_edges_are_rejected() {
        BipartiteGraph::from_edges(1, 1, vec![Edge::new(ItemId(0), ConsumerId(0), 0.0)]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_edges_are_rejected() {
        BipartiteGraph::from_edges(1, 1, vec![Edge::new(ItemId(5), ConsumerId(0), 1.0)]);
    }
}
