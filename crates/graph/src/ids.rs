//! Typed identifiers for the two sides of the bipartite graph.
//!
//! The paper distributes *items* `T = {t1, …, tn}` to *consumers*
//! `C = {c1, …, cm}`.  Identifiers are dense indices into the respective
//! side, which keeps every per-node array (capacities, dual variables,
//! degrees) a flat vector.

use serde::{Deserialize, Serialize};
use smr_storage::{impl_codec_newtype, Codec, CodecError};
use std::fmt;

/// Identifier of an item (a piece of content: a photo, a question, …).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ItemId(pub u32);

/// Identifier of a consumer (a user the content is delivered to).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ConsumerId(pub u32);

impl ItemId {
    /// The dense index of this item.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ConsumerId {
    /// The dense index of this consumer.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl_codec_newtype!(ItemId(u32));
impl_codec_newtype!(ConsumerId(u32));

impl From<u32> for ItemId {
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

impl From<u32> for ConsumerId {
    fn from(v: u32) -> Self {
        ConsumerId(v)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for ConsumerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A node of the bipartite graph: either an item or a consumer.
///
/// `NodeId` is the key type used by the MapReduce matching algorithms: the
/// node-based graph representation of Section 5.3 keys every record by the
/// node whose local neighbourhood it describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// An item node (left side, `T`).
    Item(ItemId),
    /// A consumer node (right side, `C`).
    Consumer(ConsumerId),
}

impl NodeId {
    /// Creates an item node id.
    pub fn item(index: u32) -> Self {
        NodeId::Item(ItemId(index))
    }

    /// Creates a consumer node id.
    pub fn consumer(index: u32) -> Self {
        NodeId::Consumer(ConsumerId(index))
    }

    /// Whether this node is an item.
    pub fn is_item(self) -> bool {
        matches!(self, NodeId::Item(_))
    }

    /// Whether this node is a consumer.
    pub fn is_consumer(self) -> bool {
        matches!(self, NodeId::Consumer(_))
    }

    /// The item id, if this node is an item.
    pub fn as_item(self) -> Option<ItemId> {
        match self {
            NodeId::Item(t) => Some(t),
            NodeId::Consumer(_) => None,
        }
    }

    /// The consumer id, if this node is a consumer.
    pub fn as_consumer(self) -> Option<ConsumerId> {
        match self {
            NodeId::Consumer(c) => Some(c),
            NodeId::Item(_) => None,
        }
    }
}

impl Ord for NodeId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Items order before consumers; within a side, by index.  A total
        // order is required because MapReduce reduce partitions are sorted
        // by key.
        match (self, other) {
            (NodeId::Item(a), NodeId::Item(b)) => a.cmp(b),
            (NodeId::Consumer(a), NodeId::Consumer(b)) => a.cmp(b),
            (NodeId::Item(_), NodeId::Consumer(_)) => std::cmp::Ordering::Less,
            (NodeId::Consumer(_), NodeId::Item(_)) => std::cmp::Ordering::Greater,
        }
    }
}

impl PartialOrd for NodeId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Codec for NodeId {
    fn encode(&self, out: &mut Vec<u8>) {
        // Tag byte (0 = item, 1 = consumer), then the dense index.
        match self {
            NodeId::Item(t) => {
                out.push(0);
                t.encode(out);
            }
            NodeId::Consumer(c) => {
                out.push(1);
                c.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(input)? {
            0 => Ok(NodeId::Item(ItemId::decode(input)?)),
            1 => Ok(NodeId::Consumer(ConsumerId::decode(input)?)),
            other => Err(CodecError::InvalidData(format!(
                "invalid NodeId tag {other}"
            ))),
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Item(t) => write!(f, "{t}"),
            NodeId::Consumer(c) => write!(f, "{c}"),
        }
    }
}

impl From<ItemId> for NodeId {
    fn from(t: ItemId) -> Self {
        NodeId::Item(t)
    }
}

impl From<ConsumerId> for NodeId {
    fn from(c: ConsumerId) -> Self {
        NodeId::Consumer(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_the_codec() {
        for node in [NodeId::item(0), NodeId::item(u32::MAX), NodeId::consumer(7)] {
            let bytes = node.encode_to_vec();
            assert_eq!(NodeId::decode_all(&bytes).unwrap(), node);
        }
        assert!(NodeId::decode_all(&[2, 0, 0, 0, 0]).is_err(), "bad tag");
        let item = ItemId(9).encode_to_vec();
        assert_eq!(ItemId::decode_all(&item).unwrap(), ItemId(9));
        let consumer = ConsumerId(5).encode_to_vec();
        assert_eq!(ConsumerId::decode_all(&consumer).unwrap(), ConsumerId(5));
    }

    #[test]
    fn node_id_constructors_and_accessors() {
        let t = NodeId::item(3);
        let c = NodeId::consumer(5);
        assert!(t.is_item());
        assert!(!t.is_consumer());
        assert!(c.is_consumer());
        assert_eq!(t.as_item(), Some(ItemId(3)));
        assert_eq!(t.as_consumer(), None);
        assert_eq!(c.as_consumer(), Some(ConsumerId(5)));
        assert_eq!(c.as_item(), None);
    }

    #[test]
    fn node_ordering_puts_items_before_consumers() {
        let mut nodes = vec![
            NodeId::consumer(0),
            NodeId::item(2),
            NodeId::consumer(3),
            NodeId::item(0),
        ];
        nodes.sort();
        assert_eq!(
            nodes,
            vec![
                NodeId::item(0),
                NodeId::item(2),
                NodeId::consumer(0),
                NodeId::consumer(3),
            ]
        );
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(NodeId::item(7).to_string(), "t7");
        assert_eq!(NodeId::consumer(9).to_string(), "c9");
        assert_eq!(ItemId(1).to_string(), "t1");
        assert_eq!(ConsumerId(2).to_string(), "c2");
    }

    #[test]
    fn conversions_round_trip() {
        let t: NodeId = ItemId(4).into();
        let c: NodeId = ConsumerId(8).into();
        assert_eq!(t, NodeId::item(4));
        assert_eq!(c, NodeId::consumer(8));
        assert_eq!(ItemId::from(4u32).index(), 4);
        assert_eq!(ConsumerId::from(8u32).index(), 8);
    }
}
