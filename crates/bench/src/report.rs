//! Plain-text table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple aligned-column table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (must have as many cells as the header).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row has {} cells for {} columns",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header_line: Vec<String> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header_line.join("  "));
        let total_width: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total_width));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with a fixed number of decimals, for table cells.
pub fn fmt_f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a percentage.
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["dataset", "edges"]);
        t.push_row(vec!["flickr-small".to_string(), "550667".to_string()]);
        t.push_row(vec!["ya".to_string(), "7".to_string()]);
        let rendered = t.render();
        assert!(rendered.contains("== demo =="));
        assert!(rendered.contains("flickr-small"));
        let lines: Vec<&str> = rendered.lines().collect();
        // Title + header + separator + 2 rows.
        assert_eq!(lines.len(), 5);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.title(), "demo");
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn row_arity_is_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only-one".to_string()]);
    }

    #[test]
    fn float_and_percent_formatting() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(0.0612), "6.12%");
    }
}
