//! The experiments of Section 6, one function per table / figure.

use std::collections::HashMap;
use std::time::Duration;

use smr_datagen::DatasetPreset;
use smr_graph::stats::{capacity_histograms, similarity_histogram};
use smr_graph::{BipartiteGraph, Capacities};
use smr_mapreduce::{Combiner, Emitter, FlowContext, Job, JobConfig, Mapper, Reducer};
use smr_matching::{AlgorithmKind, GreedyMr, GreedyMrConfig, MatchingRun, StackMr, StackMrConfig};

use crate::pipeline::DatasetInstance;
use crate::report::{fmt_f, fmt_pct, Table};

/// How big an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Tiny runs for tests and Criterion benches: only `flickr-small`,
    /// two σ points, a single α.
    Smoke,
    /// The full sweep over all three presets (what `EXPERIMENTS.md`
    /// records).
    Full,
}

impl ExperimentScale {
    /// The presets included at this scale.
    pub fn presets(self) -> Vec<DatasetPreset> {
        match self {
            ExperimentScale::Smoke => vec![DatasetPreset::FlickrSmall],
            ExperimentScale::Full => DatasetPreset::all().to_vec(),
        }
    }

    /// The σ sweep for a preset at this scale.
    pub fn sigma_sweep(self, preset: DatasetPreset) -> Vec<f64> {
        let sweep = preset.sigma_sweep();
        match self {
            ExperimentScale::Smoke => vec![sweep[0], *sweep.last().unwrap()],
            ExperimentScale::Full => sweep,
        }
    }

    /// The α values used for the capacity-violation sweep (Figure 4).
    pub fn alpha_sweep(self) -> Vec<f64> {
        match self {
            ExperimentScale::Smoke => vec![1.0],
            ExperimentScale::Full => vec![0.5, 1.0, 2.0],
        }
    }
}

/// Shared state of an experiment run: scale, MapReduce configuration and a
/// cache of generated dataset instances (the similarity join runs once per
/// preset).
#[derive(Debug)]
pub struct ExperimentSet {
    /// Run scale.
    pub scale: ExperimentScale,
    /// Worker threads for every MapReduce job (0 = all cores).
    pub threads: usize,
    /// Random seed for the stack algorithms.
    pub seed: u64,
    instances: HashMap<DatasetPreset, DatasetInstance>,
}

impl ExperimentSet {
    /// Creates an experiment set.
    pub fn new(scale: ExperimentScale, threads: usize, seed: u64) -> Self {
        ExperimentSet {
            scale,
            threads,
            seed,
            instances: HashMap::new(),
        }
    }

    /// The MapReduce job configuration used by every experiment.
    pub fn job(&self) -> JobConfig {
        JobConfig::named("experiment").with_threads(self.threads)
    }

    /// The (cached) dataset instance for a preset.
    pub fn instance(&mut self, preset: DatasetPreset) -> &DatasetInstance {
        let job = self.job();
        self.instances
            .entry(preset)
            .or_insert_with(|| DatasetInstance::generate(preset, job))
    }

    fn greedy_config(&self) -> GreedyMrConfig {
        GreedyMrConfig::default().with_job(self.job().with_name("greedy-mr"))
    }

    fn stack_config(&self, epsilon: f64) -> StackMrConfig {
        StackMrConfig::default()
            .with_epsilon(epsilon)
            .with_seed(self.seed)
            .with_job(self.job().with_name("stack-mr"))
    }

    /// Runs one of the three MapReduce algorithms of the evaluation.
    pub fn run(
        &self,
        algorithm: AlgorithmKind,
        graph: &BipartiteGraph,
        caps: &Capacities,
        epsilon: f64,
    ) -> MatchingRun {
        let config = smr_matching::runner::RunnerConfig {
            greedy_mr: self.greedy_config(),
            stack_mr: self.stack_config(epsilon),
        };
        let job = match algorithm {
            AlgorithmKind::GreedyMr => config.greedy_mr.job.clone(),
            _ => config.stack_mr.job.clone(),
        };
        smr_matching::run_algorithm(algorithm, graph, caps, &config, &FlowContext::new(job))
    }
}

/// The three MapReduce algorithms compared throughout the evaluation.
pub fn evaluated_algorithms() -> [AlgorithmKind; 3] {
    [
        AlgorithmKind::GreedyMr,
        AlgorithmKind::StackMr,
        AlgorithmKind::StackGreedyMr,
    ]
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// Table 1: dataset characteristics — |T|, |C| and the number of candidate
/// edges produced by the similarity join at the loosest σ of the sweep.
pub fn table1(set: &mut ExperimentSet) -> Table {
    let mut table = Table::new(
        "Table 1: dataset characteristics (|E| at the loosest sigma of the sweep)",
        &["dataset", "|T|", "|C|", "sigma", "|E|"],
    );
    for preset in set.scale.presets() {
        let instance = set.instance(preset);
        table.push_row(vec![
            preset.name().to_string(),
            instance.dataset.num_items().to_string(),
            instance.dataset.num_consumers().to_string(),
            fmt_f(instance.base_sigma, 2),
            instance.base_graph.num_edges().to_string(),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Figures 1–3
// ---------------------------------------------------------------------------

/// Figures 1–3: b-matching value and number of MapReduce iterations as a
/// function of the number of candidate edges (σ sweep), for GreedyMR,
/// StackMR and StackGreedyMR on one dataset.
pub fn quality_and_iterations(set: &mut ExperimentSet, preset: DatasetPreset) -> Table {
    let alpha = 1.0;
    let epsilon = 1.0;
    let figure = match preset {
        DatasetPreset::FlickrSmall => "Figure 1 (flickr-small)",
        DatasetPreset::FlickrLarge => "Figure 2 (flickr-large)",
        DatasetPreset::YahooAnswers => "Figure 3 (yahoo-answers)",
        DatasetPreset::FlickrXl => "Scale tier (flickr-xl)",
    };
    let mut table = Table::new(
        format!("{figure}: matching value and MapReduce iterations vs edges (alpha=1, eps=1)"),
        &[
            "sigma",
            "edges",
            "algorithm",
            "value",
            "mr-jobs",
            "rounds",
            "shuffled",
        ],
    );
    let sweep = set.scale.sigma_sweep(preset);
    let caps = {
        let instance = set.instance(preset);
        instance.capacities(alpha)
    };
    for sigma in sweep {
        let graph = set.instance(preset).graph_at(sigma);
        for algorithm in evaluated_algorithms() {
            let run = set.run(algorithm, &graph, &caps, epsilon);
            table.push_row(vec![
                fmt_f(sigma, 2),
                graph.num_edges().to_string(),
                algorithm.name().to_string(),
                fmt_f(run.value(&graph), 2),
                run.mr_jobs.to_string(),
                run.rounds.to_string(),
                run.total_shuffled_records().to_string(),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------------

/// Figure 4: average capacity violation ε′ of StackMR as a function of the
/// number of edges, for several α (ε = 1, as in the paper).
pub fn violations(set: &mut ExperimentSet) -> Table {
    let epsilon = 1.0;
    let mut table = Table::new(
        "Figure 4: StackMR capacity violations (eps=1)",
        &[
            "dataset",
            "alpha",
            "sigma",
            "edges",
            "avg violation",
            "max violation",
        ],
    );
    for preset in set.scale.presets() {
        let sweep = set.scale.sigma_sweep(preset);
        for alpha in set.scale.alpha_sweep() {
            let caps = set.instance(preset).capacities(alpha);
            for &sigma in &sweep {
                let graph = set.instance(preset).graph_at(sigma);
                let run = set.run(AlgorithmKind::StackMr, &graph, &caps, epsilon);
                table.push_row(vec![
                    preset.name().to_string(),
                    fmt_f(alpha, 1),
                    fmt_f(sigma, 2),
                    graph.num_edges().to_string(),
                    fmt_pct(run.average_violation(&graph, &caps)),
                    fmt_pct(run.matching.max_violation(&graph, &caps)),
                ]);
            }
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------------

/// Figure 5: any-time behaviour of GreedyMR — the fraction of the final
/// b-matching value reached after each fraction of the iterations, plus the
/// point where 95% of the final value is reached.
pub fn anytime(set: &mut ExperimentSet) -> Table {
    let alpha = 1.0;
    let mut table = Table::new(
        "Figure 5: GreedyMR any-time convergence (alpha=1)",
        &[
            "dataset",
            "edges",
            "rounds",
            "25% rounds",
            "50% rounds",
            "75% rounds",
            "rounds to 95% value",
            "fraction of rounds",
        ],
    );
    for preset in set.scale.presets() {
        let sigma = preset.default_sigma();
        let caps = set.instance(preset).capacities(alpha);
        let graph = set.instance(preset).graph_at(sigma);
        let run = set.run(AlgorithmKind::GreedyMr, &graph, &caps, 1.0);
        let total_rounds = run.value_per_round.len().max(1);
        let final_value = run.value_per_round.last().copied().unwrap_or(0.0);
        let frac_at = |fraction: f64| -> String {
            let idx = ((total_rounds as f64 * fraction).ceil() as usize).clamp(1, total_rounds) - 1;
            if final_value > 0.0 {
                fmt_pct(run.value_per_round[idx] / final_value)
            } else {
                "n/a".to_string()
            }
        };
        let (rounds95, fraction95) = run
            .rounds_to_reach_fraction(0.95)
            .unwrap_or((total_rounds, 1.0));
        table.push_row(vec![
            preset.name().to_string(),
            graph.num_edges().to_string(),
            total_rounds.to_string(),
            frac_at(0.25),
            frac_at(0.50),
            frac_at(0.75),
            rounds95.to_string(),
            fmt_pct(fraction95),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Figures 6 and 7
// ---------------------------------------------------------------------------

/// Figure 6: the distribution of edge similarities of each dataset.
pub fn similarity_distribution(set: &mut ExperimentSet) -> Vec<Table> {
    let mut tables = Vec::new();
    for preset in set.scale.presets() {
        let instance = set.instance(preset);
        let histogram = similarity_histogram(&instance.base_graph, 10);
        let mut table = Table::new(
            format!("Figure 6: edge-similarity distribution ({})", preset.name()),
            &["similarity >=", "edges", "fraction"],
        );
        for (i, lower) in histogram.bucket_lower_bounds.iter().enumerate() {
            table.push_row(vec![
                fmt_f(*lower, 3),
                histogram.counts[i].to_string(),
                fmt_f(histogram.fraction(i), 4),
            ]);
        }
        tables.push(table);
    }
    tables
}

/// Figure 7: the distribution of node capacities of each dataset
/// (items and consumers separately, α = 1).
pub fn capacity_distribution(set: &mut ExperimentSet) -> Vec<Table> {
    let mut tables = Vec::new();
    for preset in set.scale.presets() {
        let caps = set.instance(preset).capacities(1.0);
        let (items, consumers) = capacity_histograms(&caps, 12);
        let mut table = Table::new(
            format!(
                "Figure 7: capacity distribution ({}, alpha=1)",
                preset.name()
            ),
            &["capacity >=", "items", "consumers"],
        );
        for (i, lower) in items.bucket_lower_bounds.iter().enumerate() {
            table.push_row(vec![
                fmt_f(*lower, 0),
                items.counts[i].to_string(),
                consumers.counts[i].to_string(),
            ]);
        }
        tables.push(table);
    }
    tables
}

// ---------------------------------------------------------------------------
// Shuffle-engine ablation
// ---------------------------------------------------------------------------

/// Mapper of the combiner-enabled ablation workload: tag-count over the
/// dataset's documents (the same aggregation shape as the tf-idf
/// vocabulary pass, with a heavy-hitter key distribution).
struct TagCountMapper;

impl Mapper for TagCountMapper {
    type InKey = usize;
    type InValue = String;
    type OutKey = String;
    type OutValue = u64;
    fn map(&self, _doc: &usize, text: &String, out: &mut Emitter<String, u64>) {
        for tag in text.split_whitespace() {
            out.emit(tag.to_string(), 1);
        }
    }
}

struct TagCountCombiner;

impl Combiner for TagCountCombiner {
    type Key = String;
    type Value = u64;
    fn combine(&self, _tag: &String, counts: &[u64]) -> Vec<u64> {
        vec![counts.iter().sum()]
    }
}

struct TagCountReducer;

impl Reducer for TagCountReducer {
    type Key = String;
    type InValue = u64;
    type OutKey = String;
    type OutValue = u64;
    fn reduce(&self, tag: &String, counts: &[u64], out: &mut Emitter<String, u64>) {
        out.emit(tag.clone(), counts.iter().sum());
    }
}

/// One measured configuration of the streaming-shuffle profile.
#[derive(Debug, Clone)]
pub struct ShuffleAblationRow {
    /// Dataset preset the workload ran on.
    pub preset: DatasetPreset,
    /// Workload name (`tag-count` is combiner-enabled, `greedy-rounds`
    /// exercises the iterative no-combiner path).
    pub workload: &'static str,
    /// MapReduce rounds (jobs) the workload executed.
    pub rounds: usize,
    /// Records emitted by map tasks, before any combining.
    pub map_output_records: u64,
    /// Total records that crossed the shuffle into reduce partitions.
    pub records_shuffled: u64,
    /// Sorted runs merged by the streaming shuffle.
    pub merge_runs: u64,
    /// Wall-clock time spent in the shuffle phase, per round.
    pub shuffle_per_round: Duration,
    /// Total wall-clock time across all phases.
    pub total: Duration,
}

/// Profiles the streaming shuffle and returns the raw rows: for every
/// preset, a combiner-enabled tag-count job and a full GreedyMR run.
/// (The legacy concat+sort A/B baseline lives in `EXPERIMENTS.md`; the
/// legacy path itself has been removed.)
pub fn shuffle_rows(set: &mut ExperimentSet) -> Vec<ShuffleAblationRow> {
    let mut rows = Vec::new();
    for preset in set.scale.presets() {
        // Combiner-enabled aggregation over the dataset's documents.
        let documents: Vec<(usize, String)> = {
            let instance = set.instance(preset);
            instance
                .dataset
                .items
                .iter()
                .chain(instance.dataset.consumers.iter())
                .map(|doc| doc.text.clone())
                .enumerate()
                .collect()
        };
        // A graph instance for the iterative no-combiner workload.
        let caps = set.instance(preset).capacities(1.0);
        let graph = set.instance(preset).graph_at(preset.default_sigma());

        let job = Job::new(
            set.job()
                .with_name("shuffle-ablation-tagcount")
                .with_map_tasks(8)
                .with_reduce_tasks(4),
        );
        let result = job.run_with_combiner(
            &TagCountMapper,
            &TagCountCombiner,
            &TagCountReducer,
            documents,
        );
        rows.push(ShuffleAblationRow {
            preset,
            workload: "tag-count",
            rounds: 1,
            map_output_records: result.metrics.map_output_records,
            records_shuffled: result.metrics.shuffle_records,
            merge_runs: result.metrics.merge_runs,
            shuffle_per_round: result.metrics.timings.shuffle,
            total: result.metrics.timings.total(),
        });

        let job = set.job().with_name("shuffle-ablation-greedy");
        let run = GreedyMr::new(GreedyMrConfig::default().with_job(job.clone())).run(
            &graph,
            &caps,
            &FlowContext::new(job),
        );
        let rounds = run.rounds.max(1);
        let shuffle_total: Duration = run.job_metrics.iter().map(|m| m.timings.shuffle).sum();
        let wall_total: Duration = run.job_metrics.iter().map(|m| m.timings.total()).sum();
        rows.push(ShuffleAblationRow {
            preset,
            workload: "greedy-rounds",
            rounds: run.rounds,
            map_output_records: run.job_metrics.iter().map(|m| m.map_output_records).sum(),
            records_shuffled: run.total_shuffled_records(),
            merge_runs: run.job_metrics.iter().map(|m| m.merge_runs).sum(),
            shuffle_per_round: shuffle_total / rounds as u32,
            total: wall_total,
        });
    }
    rows
}

/// Streaming-shuffle profile: per-round shuffle wall time, records
/// shuffled vs map output (the combiner's shrink factor) and runs merged,
/// on a combiner-enabled aggregation and on GreedyMR rounds.
pub fn shuffle_ablation(set: &mut ExperimentSet) -> Table {
    let mut table = Table::new(
        "Shuffle profile: combine-while-partitioning + k-way merge",
        &[
            "dataset",
            "workload",
            "rounds",
            "map-out",
            "shuffled",
            "merge-runs",
            "shuffle/round",
            "total",
        ],
    );
    for row in shuffle_rows(set) {
        table.push_row(vec![
            row.preset.name().to_string(),
            row.workload.to_string(),
            row.rounds.to_string(),
            row.map_output_records.to_string(),
            row.records_shuffled.to_string(),
            row.merge_runs.to_string(),
            format!("{:.2?}", row.shuffle_per_round),
            format!("{:.2?}", row.total),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Similarity-join ablation (streaming join with suffix-bound pruning)
// ---------------------------------------------------------------------------

/// One measured configuration of the streaming similarity join.
#[derive(Debug, Clone)]
pub struct JoinAblationRow {
    /// Dataset preset the join ran on.
    pub preset: DatasetPreset,
    /// Similarity threshold σ.
    pub sigma: f64,
    /// Candidate pairs generated by probing (what a dedup-only probe —
    /// the pre-streaming join — would have shuffled).
    pub candidates: u64,
    /// Candidates pruned on `partial score + remainder bound < σ` without
    /// a shuffle record or a vector fetch.
    pub pruned_cheap: u64,
    /// Candidates verified with an exact dot product (the survivors).
    pub verified_exact: u64,
    /// Records the probe job actually shuffled.
    pub records_shuffled: u64,
    /// Bytes the probe job shuffled.
    pub shuffle_bytes: u64,
    /// Term-range partitions the inverted index was persisted into.
    pub index_partitions: u64,
    /// Candidate edges in the verified graph.
    pub edges: usize,
}

/// Runs the streaming similarity join over every preset × σ of the scale's
/// sweep (fresh join per σ, through the facade's `MatchingPipeline`) and
/// reports the candidate accounting: generated vs pruned-cheap vs
/// verified-exact, plus the probe job's shuffle volume.  `candidates`
/// doubles as the A/B baseline — it is exactly what the pre-streaming
/// dedup probe shuffled.
pub fn join_rows(set: &mut ExperimentSet) -> Vec<JoinAblationRow> {
    use smr_text::TokenizerConfig;
    let mut rows = Vec::new();
    for preset in set.scale.presets() {
        let dataset = preset.generate();
        for sigma in set.scale.sigma_sweep(preset) {
            let candidate = social_content_matching::MatchingPipeline::new(dataset.clone())
                .tokenizer(TokenizerConfig::tags_only())
                .sigma(sigma)
                .job(set.job().with_name(format!("join-{}", preset.name())))
                .build_graph();
            let probe = candidate
                .report
                .jobs
                .last()
                .expect("the join always runs a probe job");
            rows.push(JoinAblationRow {
                preset,
                sigma,
                candidates: candidate.candidate_pairs as u64,
                pruned_cheap: candidate.candidates_pruned as u64,
                verified_exact: candidate.verify_exact as u64,
                records_shuffled: probe.shuffle_records,
                shuffle_bytes: probe.shuffle_bytes,
                index_partitions: probe
                    .user_counters
                    .get(smr_simjoin::join::counter::INDEX_PARTITIONS)
                    .copied()
                    .unwrap_or(0),
                edges: candidate.graph.num_edges(),
            });
        }
    }
    rows
}

/// Streaming-join profile: candidates generated / pruned cheap / verified
/// exact per preset × σ, with the probe shuffle volume.  The `candidates`
/// column is the pre-streaming baseline (dedup probe shuffled one record
/// per candidate), so `shuffled` vs `candidates` is the communication A/B.
pub fn join_ablation(set: &mut ExperimentSet) -> Table {
    let mut table = Table::new(
        "Join profile: partial products + suffix-bound pruning \
         (candidates = dedup-probe baseline shuffle)",
        &[
            "dataset",
            "sigma",
            "candidates",
            "pruned-cheap",
            "verified-exact",
            "shuffled",
            "shuffle-bytes",
            "index-parts",
            "edges",
        ],
    );
    for row in join_rows(set) {
        table.push_row(vec![
            row.preset.name().to_string(),
            fmt_f(row.sigma, 2),
            row.candidates.to_string(),
            row.pruned_cheap.to_string(),
            row.verified_exact.to_string(),
            row.records_shuffled.to_string(),
            row.shuffle_bytes.to_string(),
            row.index_partitions.to_string(),
            row.edges.to_string(),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Sketch candidate-generation frontier (recall vs shuffle cost)
// ---------------------------------------------------------------------------

/// One generator × preset point of the sketch recall/cost frontier.
#[derive(Debug, Clone)]
pub struct SketchFrontierRow {
    /// Dataset preset the generator ran on.
    pub preset: DatasetPreset,
    /// Similarity threshold σ (the preset's default).
    pub sigma: f64,
    /// The generator's tag (`exact`, `disco-λ`, `lsh-BxR`).
    pub generator: String,
    /// Whether this is the exact reference row of its preset.
    pub is_exact: bool,
    /// Edges the generator kept (every one exactly verified at σ).
    pub edges: usize,
    /// Fraction of the exact join's edges recovered.
    pub recall: f64,
    /// Candidate pairs generated before pruning/verification.
    pub candidates: u64,
    /// Candidates that cost an exact dot product.
    pub verified_exact: u64,
    /// Records shuffled across the generator's two jobs.
    pub records_shuffled: u64,
    /// Bytes shuffled across the generator's two jobs.
    pub shuffle_bytes: u64,
}

/// Sweeps the candidate generators — the exact prefix-filter join
/// (recall = 1 reference), DISCO sampling at λ ∈ {4, 16} and MinHash/LSH
/// banding at (bands × rows) ∈ {16×2, 8×4} — over the flickr presets at
/// their default σ, with each preset's well-known sketch seed.  Every
/// generator ends in exact verification, so a sketch's edge set is a
/// subset of the exact join's with bit-identical weights and recall is
/// simply the edge-count ratio.
pub fn sketch_rows(set: &mut ExperimentSet) -> Vec<SketchFrontierRow> {
    use smr_sketch::{CandidateGenerator, DiscoSampler, ExactPrefixJoin, LshBander};
    use smr_text::{Corpus, TokenizerConfig};

    let presets = match set.scale {
        ExperimentScale::Smoke => vec![DatasetPreset::FlickrSmall],
        // The frontier is the paper's small/large flickr contrast (what
        // EXPERIMENTS.md records); yahoo-answers adds runtime, not signal.
        ExperimentScale::Full => vec![DatasetPreset::FlickrSmall, DatasetPreset::FlickrLarge],
    };
    let mut rows = Vec::new();
    for preset in presets {
        let sigma = preset.default_sigma();
        let seed = preset.sketch_seed();
        let dataset = preset.generate();
        let tokenizer = TokenizerConfig::tags_only();
        let items = Corpus::build(dataset.items, &tokenizer);
        let consumers = Corpus::build(dataset.consumers, &tokenizer);
        let generators: Vec<Box<dyn CandidateGenerator>> = vec![
            Box::new(ExactPrefixJoin::new()),
            Box::new(DiscoSampler::new(seed, 4.0)),
            Box::new(DiscoSampler::new(seed, 16.0)),
            Box::new(LshBander::new(seed, 16, 2)),
            Box::new(LshBander::new(seed, 8, 4)),
        ];
        let mut exact_edges: Option<usize> = None;
        for generator in &generators {
            let flow = FlowContext::new(set.job().with_name(format!(
                "sketch-{}-{}",
                preset.name(),
                generator.name()
            )));
            let result = generator.generate(&items, &consumers, sigma, &flow);
            let edges = result.graph.num_edges();
            let is_exact = exact_edges.is_none();
            let reference = *exact_edges.get_or_insert(edges);
            rows.push(SketchFrontierRow {
                preset,
                sigma,
                generator: result.generator,
                is_exact,
                edges,
                recall: if reference == 0 {
                    1.0
                } else {
                    edges as f64 / reference as f64
                },
                candidates: result.candidate_pairs as u64,
                verified_exact: result.verify_exact as u64,
                records_shuffled: result.shuffled_records,
                shuffle_bytes: result.shuffled_bytes,
            });
        }
    }
    rows
}

/// The recall-vs-shuffle-cost frontier: one row per generator × preset,
/// exact first as the recall = 1 reference.
pub fn sketch_frontier(rows: &[SketchFrontierRow]) -> Table {
    let mut table = Table::new(
        "Sketch frontier: recall vs shuffle cost per candidate generator \
         (every kept edge exactly verified at σ)",
        &[
            "dataset",
            "sigma",
            "generator",
            "edges",
            "recall",
            "candidates",
            "verified-exact",
            "shuffled",
            "shuffle-bytes",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.preset.name().to_string(),
            fmt_f(row.sigma, 2),
            row.generator.clone(),
            row.edges.to_string(),
            fmt_f(row.recall, 3),
            row.candidates.to_string(),
            row.verified_exact.to_string(),
            row.records_shuffled.to_string(),
            row.shuffle_bytes.to_string(),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Spill (out-of-core) ablation
// ---------------------------------------------------------------------------

/// One measured memory-budget configuration of the spill experiment.
#[derive(Debug, Clone)]
pub struct SpillAblationRow {
    /// Name of the dataset the workload ran on.
    pub dataset: String,
    /// Memory budget in bytes (`None` = unlimited).
    pub budget: Option<u64>,
    /// Records that crossed the shuffle.
    pub records_shuffled: u64,
    /// Sorted runs spilled to disk and merged back.
    pub disk_runs: u64,
    /// Encoded bytes written to spill files.
    pub spill_bytes: u64,
    /// Wall-clock map phase (includes spilling).
    pub map: Duration,
    /// Wall-clock shuffle phase (includes streaming disk runs).
    pub shuffle: Duration,
    /// Total wall-clock time.
    pub total: Duration,
    /// Whether this run's output was byte-identical to the
    /// unlimited-budget run (always checked, never assumed).
    pub output_matches_unlimited: bool,
}

fn budget_name(budget: Option<u64>) -> String {
    match budget {
        None => "unlimited".to_string(),
        Some(bytes) if bytes % 1024 == 0 => format!("{}KiB", bytes / 1024),
        Some(bytes) => format!("{bytes}B"),
    }
}

/// The budgets the spill experiment sweeps at each scale.
fn spill_budgets(scale: ExperimentScale) -> Vec<Option<u64>> {
    match scale {
        ExperimentScale::Smoke => vec![None, Some(4 * 1024)],
        ExperimentScale::Full => vec![None, Some(32 * 1024), Some(4 * 1024)],
    }
}

/// Runs the out-of-core ablation: the combiner-enabled tag-count workload
/// over the spill-scale dataset (`flickr-xl` at full scale, the preset
/// sweep's dataset at smoke scale), A/B-ing memory budgets.  Every
/// budgeted run's output is compared byte-for-byte against the
/// unlimited-budget reference.
pub fn spill_rows(set: &mut ExperimentSet) -> Vec<SpillAblationRow> {
    let dataset = match set.scale {
        ExperimentScale::Smoke => DatasetPreset::FlickrSmall.generate(),
        // The spill tier: big enough that a small budget forces heavy
        // spilling, generated directly (no similarity join needed here).
        ExperimentScale::Full => DatasetPreset::FlickrXl.generate(),
    };
    let documents: Vec<(usize, String)> = dataset
        .items
        .iter()
        .chain(dataset.consumers.iter())
        .map(|doc| doc.text.clone())
        .enumerate()
        .collect();

    let run = |budget: Option<u64>| {
        Job::new(
            set.job()
                .with_name("spill-ablation-tagcount")
                .with_map_tasks(8)
                .with_reduce_tasks(4)
                .with_memory_budget(budget),
        )
        .run_with_combiner(
            &TagCountMapper,
            &TagCountCombiner,
            &TagCountReducer,
            documents.clone(),
        )
    };

    let reference = run(None);
    let mut rows = Vec::new();
    for budget in spill_budgets(set.scale) {
        let result = if budget.is_none() {
            reference.clone()
        } else {
            run(budget)
        };
        rows.push(SpillAblationRow {
            dataset: dataset.name.clone(),
            budget,
            records_shuffled: result.metrics.shuffle_records,
            disk_runs: result.metrics.disk_runs,
            spill_bytes: result.metrics.spill_bytes,
            map: result.metrics.timings.map,
            shuffle: result.metrics.timings.shuffle,
            total: result.metrics.timings.total(),
            output_matches_unlimited: result.output == reference.output,
        });
    }
    rows
}

/// Out-of-core ablation: disk runs, spilled bytes and wall time as a
/// function of the memory budget, with a byte-identity check against the
/// unlimited-budget run.
pub fn spill_ablation(set: &mut ExperimentSet) -> Table {
    let mut table = Table::new(
        "Spill ablation: memory budget vs disk runs (output checked byte-identical)",
        &[
            "dataset",
            "budget",
            "shuffled",
            "disk-runs",
            "spill-bytes",
            "map",
            "shuffle",
            "total",
            "identical",
        ],
    );
    for row in spill_rows(set) {
        table.push_row(vec![
            row.dataset.clone(),
            budget_name(row.budget),
            row.records_shuffled.to_string(),
            row.disk_runs.to_string(),
            row.spill_bytes.to_string(),
            format!("{:.2?}", row.map),
            format!("{:.2?}", row.shuffle),
            format!("{:.2?}", row.total),
            if row.output_matches_unlimited {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Matching-rounds (out-of-core round state) ablation
// ---------------------------------------------------------------------------

/// One measured (algorithm × memory budget) configuration of the rounds
/// experiment.
#[derive(Debug, Clone)]
pub struct RoundsAblationRow {
    /// Name of the dataset the matchers ran on.
    pub dataset: String,
    /// Which matcher ran.
    pub algorithm: AlgorithmKind,
    /// Engine memory budget in bytes (`None` = unlimited).
    pub budget: Option<u64>,
    /// σ the candidate graph was thresholded at.
    pub sigma: f64,
    /// Candidate edges of the thresholded graph.
    pub edges: usize,
    /// Algorithm-level rounds to convergence.
    pub rounds: usize,
    /// Records shuffled across every MapReduce job of the run.
    pub records_shuffled: u64,
    /// Sorted runs the engine spilled to disk and merged back.
    pub disk_runs: u64,
    /// Largest on-disk inter-round state the run held at any point — the
    /// peak-resident proxy for what the in-memory round path would have
    /// kept in RAM between rounds.
    pub max_round_state_bytes: u64,
    /// Whether the final matching was byte-identical to the
    /// unlimited-budget run of the same algorithm (always checked, never
    /// assumed).
    pub matches_unlimited: bool,
}

/// Runs the matching-rounds ablation: GreedyMR and StackMR on the rounds
/// tier (`flickr-large` at full scale, `flickr-small` at smoke scale) at
/// the preset's default σ, A/B-ing an unlimited engine budget against
/// 4 KiB.  Round state is disk-backed in both configurations (the
/// default); the budget controls the *shuffle* spill path, so `disk_runs`
/// measures the engine going out-of-core while `max_round_state_bytes`
/// measures the inter-round state that no longer lives in RAM.  Every
/// budgeted run's final matching is compared against the
/// unlimited-budget reference.
pub fn rounds_rows(set: &mut ExperimentSet) -> Vec<RoundsAblationRow> {
    let preset = match set.scale {
        ExperimentScale::Smoke => DatasetPreset::FlickrSmall,
        ExperimentScale::Full => DatasetPreset::FlickrLarge,
    };
    let sigma = preset.default_sigma();
    let (dataset_name, graph, caps) = {
        let instance = set.instance(preset);
        (
            instance.dataset.name.clone(),
            instance.graph_at(sigma),
            instance.capacities(1.0),
        )
    };
    let seed = set.seed;
    let base_job = set.job();
    let mut rows = Vec::new();
    for algorithm in [AlgorithmKind::GreedyMr, AlgorithmKind::StackMr] {
        let run_at = |budget: Option<u64>| -> MatchingRun {
            let job = base_job
                .clone()
                .with_name(format!("rounds-{}", algorithm.name()))
                .with_memory_budget(budget);
            let flow = FlowContext::new(job.clone());
            match algorithm {
                AlgorithmKind::GreedyMr => {
                    GreedyMr::new(GreedyMrConfig::default().with_job(job)).run(&graph, &caps, &flow)
                }
                _ => StackMr::new(StackMrConfig::default().with_seed(seed).with_job(job))
                    .run(&graph, &caps, &flow),
            }
        };
        let reference = run_at(None);
        for budget in [None, Some(4 * 1024)] {
            let run = if budget.is_none() {
                reference.clone()
            } else {
                run_at(budget)
            };
            rows.push(RoundsAblationRow {
                dataset: dataset_name.clone(),
                algorithm,
                budget,
                sigma,
                edges: graph.num_edges(),
                rounds: run.rounds,
                records_shuffled: run.total_shuffled_records(),
                disk_runs: run.job_metrics.iter().map(|m| m.disk_runs).sum(),
                max_round_state_bytes: run.max_round_state_bytes,
                matches_unlimited: run.matching == reference.matching,
            });
        }
    }
    rows
}

/// Matching-rounds ablation: rounds, shuffle volume, engine disk runs and
/// peak round state as a function of the memory budget, with a
/// byte-identity check of the final matching against the unlimited-budget
/// run.
pub fn rounds_ablation(set: &mut ExperimentSet) -> Table {
    let mut table = Table::new(
        "Rounds ablation: out-of-core matching rounds (final matching checked byte-identical)",
        &[
            "dataset",
            "algorithm",
            "budget",
            "sigma",
            "edges",
            "rounds",
            "shuffled",
            "disk-runs",
            "round-state-bytes",
            "identical",
        ],
    );
    for row in rounds_rows(set) {
        table.push_row(vec![
            row.dataset.clone(),
            row.algorithm.name().to_string(),
            budget_name(row.budget),
            fmt_f(row.sigma, 2),
            row.edges.to_string(),
            row.rounds.to_string(),
            row.records_shuffled.to_string(),
            row.disk_runs.to_string(),
            row.max_round_state_bytes.to_string(),
            if row.matches_unlimited {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Serving (standing index) experiment
// ---------------------------------------------------------------------------

/// One measured (preset × batch budget) configuration of the serving
/// experiment.
#[derive(Debug, Clone)]
pub struct ServingRow {
    /// Name of the dataset served.
    pub dataset: String,
    /// Memory budget of the *batch* reference join (`None` = unlimited);
    /// the serving side runs no MapReduce job, so the budget only varies
    /// the reference the recall is checked against.
    pub budget: Option<u64>,
    /// Point queries issued (one per item, in arrival order).
    pub queries: usize,
    /// Median `match_one` latency.
    pub p50: Duration,
    /// 99th-percentile `match_one` latency.
    pub p99: Duration,
    /// Point queries per second over the whole stream.
    pub queries_per_sec: f64,
    /// Fraction of the batch join's candidate edges the point queries
    /// recovered (must be 1.0 — the serving index is exact).
    pub recall: f64,
    /// Value of the incremental assignment after replaying every arrival.
    pub online_value: f64,
    /// Value of the batch GreedyMR matching on the same instance.
    pub batch_value: f64,
    /// Disk reads the serving index performed for the whole query stream
    /// (cache hits excluded).
    pub disk_reads: u64,
}

/// The presets the serving experiment measures at each scale.
fn serving_presets(scale: ExperimentScale) -> Vec<DatasetPreset> {
    match scale {
        ExperimentScale::Smoke => vec![DatasetPreset::FlickrSmall],
        ExperimentScale::Full => vec![DatasetPreset::FlickrSmall, DatasetPreset::FlickrLarge],
    }
}

/// Runs the serving experiment: builds the standing index once per preset,
/// replays every item as a point query in a seeded arrival order (p50/p99
/// latency, queries/sec), checks recall against the batch join at the same
/// σ under each batch budget, and replays the arrivals through the
/// incremental matcher against batch GreedyMR's value.
pub fn serving_rows(set: &mut ExperimentSet) -> Vec<ServingRow> {
    use smr_datagen::ArrivalStream;
    use smr_matching::IncrementalMatcher;
    use social_content_matching::MatchingPipeline;

    let alpha = 1.0;
    let mut rows = Vec::new();
    for preset in serving_presets(set.scale) {
        let dataset = preset.generate();
        let sigma = preset.default_sigma();
        let serving = MatchingPipeline::new(dataset.clone()).sigma(sigma).serve();
        let stream = ArrivalStream::new(&dataset, alpha, set.seed);

        // Query phase: one timed point query per arrival.  Vectorization
        // happens outside the timed section — the index lookup is what the
        // experiment characterizes.
        let queries: Vec<_> = stream
            .arrivals
            .iter()
            .map(|a| (a.item, serving.vectorize(&dataset.items[a.item].text)))
            .collect();
        let reads_before = serving.index().disk_reads();
        let mut latencies = Vec::with_capacity(queries.len());
        let mut served_edges: Vec<(usize, usize)> = Vec::new();
        let stream_started = std::time::Instant::now();
        for (item, query) in &queries {
            let started = std::time::Instant::now();
            let matches = serving.match_vector(query, usize::MAX);
            latencies.push(started.elapsed());
            served_edges.extend(matches.iter().map(|m| (*item, m.consumer)));
        }
        let elapsed = stream_started.elapsed();
        let disk_reads = serving.index().disk_reads() - reads_before;
        latencies.sort_unstable();
        let p50 = latencies[latencies.len() / 2];
        let p99 = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];
        let queries_per_sec = queries.len() as f64 / elapsed.as_secs_f64().max(1e-9);
        served_edges.sort_unstable();

        // Assignment phase: replay the arrivals through the incremental
        // matcher (same candidates the queries returned).
        let caps = dataset.capacities(alpha);
        let mut matcher = IncrementalMatcher::from_capacities(&caps);
        for (item, query) in &queries {
            let candidates: Vec<(usize, f64)> = serving
                .match_vector(query, usize::MAX)
                .into_iter()
                .map(|m| (m.consumer, m.score))
                .collect();
            matcher.arrive(*item, &candidates);
        }
        let online_value = matcher.total_weight();

        for budget in [None, Some(4 * 1024u64)] {
            let batch = MatchingPipeline::new(dataset.clone())
                .sigma(sigma)
                .job(
                    set.job()
                        .with_name(format!("serving-ref-{}", preset.name()))
                        .with_memory_budget(budget),
                )
                .build_graph();
            let mut batch_edges: Vec<(usize, usize)> = batch
                .graph
                .edges()
                .iter()
                .map(|e| (e.item.index(), e.consumer.index()))
                .collect();
            batch_edges.sort_unstable();
            let recovered = batch_edges
                .iter()
                .filter(|e| served_edges.binary_search(e).is_ok())
                .count();
            let recall = if batch_edges.is_empty() {
                1.0
            } else {
                recovered as f64 / batch_edges.len() as f64
            };
            let batch_run = set.run(AlgorithmKind::GreedyMr, &batch.graph, &caps, 1.0);
            rows.push(ServingRow {
                dataset: preset.name().to_string(),
                budget,
                queries: queries.len(),
                p50,
                p99,
                queries_per_sec,
                recall,
                online_value,
                batch_value: batch_run.value(&batch.graph),
                disk_reads,
            });
        }
    }
    rows
}

/// Serving experiment: point-query latency and throughput of the standing
/// index, recall against the batch join, and the incremental assignment's
/// value against batch GreedyMR.
pub fn serving_ablation(set: &mut ExperimentSet) -> Table {
    serving_table(&serving_rows(set))
}

/// Renders pre-computed serving rows (lets drivers inspect the rows — the
/// CLI fails the run on recall < 1.0 — before printing).
pub fn serving_table(rows: &[ServingRow]) -> Table {
    let mut table = Table::new(
        "Serving: standing-index point queries + incremental assignment \
         (recall vs the batch join at the same sigma)",
        &[
            "dataset",
            "batch-budget",
            "queries",
            "p50",
            "p99",
            "queries/s",
            "recall",
            "online-value",
            "greedy-mr-value",
            "disk-reads",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.dataset.clone(),
            budget_name(row.budget),
            row.queries.to_string(),
            format!("{:.2?}", row.p50),
            format!("{:.2?}", row.p99),
            format!("{:.0}", row.queries_per_sec),
            fmt_f(row.recall, 3),
            fmt_f(row.online_value, 2),
            fmt_f(row.batch_value, 2),
            row.disk_reads.to_string(),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Distrib (multi-process shards) experiment
// ---------------------------------------------------------------------------

/// One measured configuration of the distrib experiment (`shards == 0` is
/// the in-process baseline).
#[derive(Debug, Clone)]
pub struct DistribRow {
    /// Name of the dataset the pipeline ran on.
    pub dataset: String,
    /// Which matcher ran.
    pub algorithm: AlgorithmKind,
    /// Worker processes (`0` = in-process baseline, no session).
    pub shards: usize,
    /// End-to-end wall clock of the whole pipeline run.
    pub wall: Duration,
    /// Records shuffled across every MapReduce job of the run.
    pub records_shuffled: u64,
    /// Shuffle bytes across every job — the cross-process exchange volume
    /// a sharded run moves through run files.
    pub shuffle_bytes: u64,
    /// Workers killed and respawned (0 on a fault-free run; only the
    /// coordinator observes this, workers report 0).
    pub respawns: u64,
    /// Whether this run reproduced the baseline byte-for-byte: same
    /// similarity-join edges, same final matching, same per-job
    /// shuffled-record profile (always checked, never assumed).
    pub matches_local: bool,
}

/// Runs the distrib experiment: the full pipeline in-process, then across
/// 1, 2 and 4 worker processes, comparing each sharded run byte-for-byte
/// against the in-process baseline (similarity-join edges, final matching,
/// per-job shuffle profile).
///
/// `worker_args` overrides the argv workers are re-invoked with; the CLI
/// passes `None` (workers replay the same `run-experiments` invocation),
/// while a `#[test]` must pass `["--exact", "<test name>", "--nocapture"]`
/// so the re-invoked test binary replays only the calling test.
pub fn distrib_rows(set: &mut ExperimentSet, worker_args: Option<Vec<String>>) -> Vec<DistribRow> {
    use smr_distrib::{is_worker_process, last_session_stats, ShardOptions};
    use social_content_matching::{MatchingPipeline, PipelineRun};

    let preset = match set.scale {
        ExperimentScale::Smoke => DatasetPreset::FlickrSmall,
        ExperimentScale::Full => DatasetPreset::FlickrLarge,
    };
    let dataset = preset.generate();
    let sigma = preset.default_sigma();
    let algorithm = AlgorithmKind::GreedyMr;
    let job = set.job().with_name("distrib");
    let pipeline = || {
        MatchingPipeline::new(dataset.clone())
            .sigma(sigma)
            .algorithm(algorithm)
            .job(job.clone())
    };
    let profile = |run: &PipelineRun| -> Vec<(String, u64)> {
        run.report
            .jobs
            .iter()
            .map(|j| (j.job_name.clone(), j.shuffle_records))
            .collect()
    };

    let started = std::time::Instant::now();
    let local = pipeline().run();
    let local_wall = started.elapsed();
    let row = |run: &PipelineRun, shards: usize, wall: Duration, respawns: u64| DistribRow {
        dataset: preset.name().to_string(),
        algorithm,
        shards,
        wall,
        records_shuffled: run.report.total_shuffled_records(),
        shuffle_bytes: run.report.totals.shuffle_bytes,
        respawns,
        matches_local: run.graph.edges() == local.graph.edges()
            && run.matching.matching == local.matching.matching
            && profile(run) == profile(&local),
    };

    let mut rows = vec![row(&local, 0, local_wall, 0)];
    for shards in [1, 2, 4] {
        let mut opts = ShardOptions::new(shards).with_session_key(format!("distrib-{shards}"));
        if let Some(args) = worker_args.clone() {
            opts = opts.with_worker_args(args);
        }
        let started = std::time::Instant::now();
        let sharded = pipeline().shard_options(opts).run();
        let wall = started.elapsed();
        // Session stats exist only in the coordinator; a worker spawned
        // for a later session replays this code without any.
        let respawns = if is_worker_process() {
            0
        } else {
            last_session_stats().map(|s| s.respawns).unwrap_or(0)
        };
        rows.push(row(&sharded, shards, wall, respawns));
    }
    rows
}

/// Distrib experiment: in-process baseline vs 1/2/4 worker processes, with
/// a byte-identity check of every sharded run against the baseline.
pub fn distrib_ablation(set: &mut ExperimentSet) -> Table {
    distrib_table(&distrib_rows(set, None))
}

/// Renders pre-computed distrib rows (lets drivers fail the run on a
/// byte-identity miss before printing).
pub fn distrib_table(rows: &[DistribRow]) -> Table {
    let mut table = Table::new(
        "Distrib: multi-process shards vs in-process (output checked byte-identical)",
        &[
            "dataset",
            "algorithm",
            "shards",
            "wall",
            "shuffled",
            "shuffle-bytes",
            "respawns",
            "identical",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.dataset.clone(),
            row.algorithm.name().to_string(),
            if row.shards == 0 {
                "local".to_string()
            } else {
                row.shards.to_string()
            },
            format!("{:.2?}", row.wall),
            row.records_shuffled.to_string(),
            row.shuffle_bytes.to_string(),
            row.respawns.to_string(),
            if row.matches_local {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_set() -> ExperimentSet {
        ExperimentSet::new(ExperimentScale::Smoke, 2, 7)
    }

    #[test]
    fn scale_controls_the_sweeps() {
        assert_eq!(ExperimentScale::Smoke.presets().len(), 1);
        assert_eq!(ExperimentScale::Full.presets().len(), 3);
        assert_eq!(
            ExperimentScale::Smoke
                .sigma_sweep(DatasetPreset::FlickrSmall)
                .len(),
            2
        );
        assert_eq!(ExperimentScale::Smoke.alpha_sweep(), vec![1.0]);
        assert_eq!(ExperimentScale::Full.alpha_sweep().len(), 3);
    }

    #[test]
    fn table1_reports_one_row_per_preset() {
        let mut set = smoke_set();
        let table = table1(&mut set);
        assert_eq!(table.num_rows(), 1);
        let rendered = table.render();
        assert!(rendered.contains("flickr-small"));
    }

    #[test]
    fn quality_experiment_produces_rows_for_every_algorithm_and_sigma() {
        let mut set = smoke_set();
        let table = quality_and_iterations(&mut set, DatasetPreset::FlickrSmall);
        // 2 sigma points x 3 algorithms.
        assert_eq!(table.num_rows(), 6);
        let rendered = table.render();
        assert!(rendered.contains("GreedyMR"));
        assert!(rendered.contains("StackMR"));
        assert!(rendered.contains("StackGreedyMR"));
    }

    #[test]
    fn violations_experiment_reports_bounded_violations() {
        let mut set = smoke_set();
        let table = violations(&mut set);
        assert_eq!(table.num_rows(), 2); // 1 preset x 1 alpha x 2 sigmas

        // Every reported violation is a percentage between 0 and 100%
        // (ε = 1 bounds the per-node violation by 100%).
        for line in table.render().lines().skip(3) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            let avg: f64 = cells[cells.len() - 2]
                .trim_end_matches('%')
                .parse()
                .unwrap();
            assert!((0.0..=100.0).contains(&avg), "violation {avg} out of range");
        }
    }

    #[test]
    fn anytime_experiment_reports_monotone_fractions() {
        let mut set = smoke_set();
        let table = anytime(&mut set);
        assert_eq!(table.num_rows(), 1);
        assert!(table.render().contains('%'));
    }

    #[test]
    fn distribution_experiments_cover_every_preset() {
        let mut set = smoke_set();
        assert_eq!(similarity_distribution(&mut set).len(), 1);
        assert_eq!(capacity_distribution(&mut set).len(), 1);
    }

    #[test]
    fn shuffle_profile_reports_both_workloads() {
        let mut set = smoke_set();
        let table = shuffle_ablation(&mut set);
        // 1 preset x 2 workloads.
        assert_eq!(table.num_rows(), 2);
        let rendered = table.render();
        assert!(rendered.contains("tag-count"));
        assert!(rendered.contains("greedy-rounds"));
    }

    #[test]
    fn combining_shuffles_strictly_fewer_records_than_the_map_emits() {
        let mut set = smoke_set();
        let rows = shuffle_rows(&mut set);
        let tag_count = rows
            .iter()
            .find(|r| r.workload == "tag-count")
            .expect("row present");
        // Combiner-enabled: combining while partitioning plus the
        // merge-side combine collapses per-task partial counts.
        assert!(
            tag_count.records_shuffled < tag_count.map_output_records,
            "{tag_count:?}"
        );
        // Every workload merges sorted runs.
        for row in &rows {
            assert!(row.merge_runs > 0, "{row:?}");
        }
    }

    #[test]
    fn join_profile_closes_its_candidate_accounting() {
        let mut set = smoke_set();
        let rows = join_rows(&mut set);
        // 1 preset × 2 σ points at smoke scale.
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(
                row.candidates,
                row.pruned_cheap + row.records_shuffled,
                "{row:?}"
            );
            assert_eq!(row.verified_exact, row.records_shuffled, "{row:?}");
            assert!(row.edges as u64 <= row.verified_exact, "{row:?}");
            assert!(row.index_partitions >= 1, "{row:?}");
        }
        // The probe shuffles strictly fewer records than the dedup-probe
        // baseline (= candidates) on every smoke configuration.
        assert!(rows.iter().all(|r| r.records_shuffled < r.candidates));
        let rendered = join_ablation(&mut smoke_set()).render();
        assert!(rendered.contains("pruned-cheap"));
    }

    /// CI regression guard: the streaming join's candidate accounting for
    /// `flickr-small` at σ = 0.16 is deterministic (map-side pruning runs
    /// on complete per-item scores, independent of threads and budgets).
    /// These exact counts gate against silent regressions in the prefix
    /// filter, the suffix bound or the partial-product accumulation.
    #[test]
    fn join_counts_regression_guard_flickr_small_sigma_016() {
        use smr_text::TokenizerConfig;
        let candidate =
            social_content_matching::MatchingPipeline::new(DatasetPreset::FlickrSmall.generate())
                .tokenizer(TokenizerConfig::tags_only())
                .sigma(0.16)
                .job(JobConfig::named("join-guard").with_threads(2))
                .build_graph();
        // 12 654 candidates is also what the pre-streaming dedup probe
        // shuffled (and exactly verified) at this σ; the suffix bound now
        // prunes 2 025 of them before the shuffle.  3 502 edges matches
        // the seed baseline in EXPERIMENTS.md, byte for byte.
        assert_eq!(candidate.candidate_pairs, 12_654);
        assert_eq!(candidate.candidates_pruned, 2_025);
        assert_eq!(candidate.verify_exact, 10_629);
        assert_eq!(candidate.graph.num_edges(), 3_502);
    }

    #[test]
    fn rounds_regression_guard_flickr_large_sigma_009() {
        // The densest point of the flickr-large sweep at the grown preset
        // size (4 200 photos / 640 users).  Rounds-to-convergence and the
        // total shuffle volume are exact-deterministic for GreedyMR (no
        // combiner on the round jobs, so threads and memory budgets move
        // bytes around without changing what crosses the shuffle); any
        // drift here means the round semantics changed, not just the
        // schedule.
        let mut set = ExperimentSet::new(ExperimentScale::Full, 2, 2011);
        let (graph, caps) = {
            let instance = set.instance(DatasetPreset::FlickrLarge);
            (instance.graph_at(0.09), instance.capacities(1.0))
        };
        assert_eq!(graph.num_edges(), 372_730);
        let run = set.run(AlgorithmKind::GreedyMr, &graph, &caps, 1.0);
        assert_eq!(run.rounds, 32);
        assert_eq!(run.total_shuffled_records(), 5_349_918);
        assert!(run.matching.is_feasible(&graph, &caps));
    }

    #[test]
    fn rounds_ablation_spills_under_a_tiny_budget_and_keeps_matchings_identical() {
        let mut set = smoke_set();
        let rows = rounds_rows(&mut set);
        assert_eq!(rows.len(), 4, "2 algorithms x 2 budgets");
        for row in &rows {
            assert!(row.matches_unlimited, "{row:?}");
            assert!(row.rounds > 0, "{row:?}");
            // Round state is disk-backed at every budget: the peak is the
            // size of the largest inter-round run file, never zero.
            assert!(row.max_round_state_bytes > 0, "{row:?}");
            match row.budget {
                None => assert_eq!(row.disk_runs, 0, "{row:?}"),
                Some(_) => assert!(row.disk_runs > 0, "{row:?}"),
            }
        }
        // The budget changes where the shuffle lives, not what it moves:
        // each algorithm shuffles the same records at both budgets.
        for pair in rows.chunks(2) {
            assert_eq!(pair[0].algorithm, pair[1].algorithm);
            assert_eq!(
                pair[0].records_shuffled, pair[1].records_shuffled,
                "{pair:?}"
            );
            assert_eq!(pair[0].rounds, pair[1].rounds, "{pair:?}");
        }
    }

    #[test]
    fn distrib_experiment_is_byte_identical_at_every_shard_count() {
        let mut set = smoke_set();
        // The worker replays this test binary; without `--exact` it would
        // replay the whole suite instead of just this test.
        let rows = distrib_rows(
            &mut set,
            Some(
                [
                    "--exact",
                    "experiments::tests::distrib_experiment_is_byte_identical_at_every_shard_count",
                    "--nocapture",
                ]
                .map(String::from)
                .to_vec(),
            ),
        );
        assert_eq!(rows.len(), 4, "local baseline + shards 1, 2, 4");
        assert_eq!(rows[0].shards, 0);
        for row in &rows {
            assert!(row.matches_local, "{row:?}");
            assert!(row.records_shuffled > 0, "{row:?}");
        }
        // All shard counts shuffle the same records as the baseline.
        assert!(rows
            .windows(2)
            .all(|w| w[0].records_shuffled == w[1].records_shuffled));
        if !smr_distrib::is_worker_process() {
            let stats = smr_distrib::last_session_stats().expect("a session just completed");
            assert_eq!(stats.shards, 4);
            assert_eq!(stats.respawns, 0, "fault-free run must not respawn");
        }
    }

    #[test]
    fn spill_ablation_spills_under_a_tiny_budget_and_stays_byte_identical() {
        let mut set = smoke_set();
        let rows = spill_rows(&mut set);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.output_matches_unlimited, "{row:?}");
            match row.budget {
                None => {
                    assert_eq!(row.disk_runs, 0, "{row:?}");
                    assert_eq!(row.spill_bytes, 0, "{row:?}");
                }
                Some(_) => {
                    assert!(row.disk_runs > 0, "{row:?}");
                    assert!(row.spill_bytes > 0, "{row:?}");
                }
            }
        }
        // All budgets shuffle the same records: spilling moves bytes, not
        // semantics.
        assert!(rows
            .windows(2)
            .all(|w| w[0].records_shuffled == w[1].records_shuffled));
    }

    #[test]
    fn serving_recall_is_perfect_and_the_online_value_stays_in_the_envelope() {
        let mut set = smoke_set();
        let rows = serving_rows(&mut set);
        assert_eq!(rows.len(), 2, "1 preset x 2 batch budgets");
        for row in &rows {
            // The serving index is exact: every batch candidate edge is
            // recovered by the point queries under every batch budget.
            assert_eq!(row.recall, 1.0, "{row:?}");
            assert!(row.queries > 0 && row.queries_per_sec > 0.0, "{row:?}");
            assert!(row.p50 <= row.p99, "{row:?}");
            assert!(row.disk_reads > 0, "the index is disk-backed: {row:?}");
            // The shared 1/2 guarantee envelope of greedy matching.
            assert!(row.online_value >= 0.5 * row.batch_value - 1e-9, "{row:?}");
            assert!(row.batch_value > 0.0, "{row:?}");
        }
        let table = serving_ablation(&mut set).render();
        assert!(table.contains("flickr-small"));
        assert!(table.contains("recall"));
    }
}
