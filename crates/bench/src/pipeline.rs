//! The end-to-end pipeline shared by all experiments: dataset generation,
//! similarity join, σ-thresholding and capacity assignment — built on the
//! facade crate's [`MatchingPipeline`], so the harness exercises exactly
//! the entry point users call.

use smr_datagen::{DatasetPreset, SocialDataset};
use smr_graph::{BipartiteGraph, Capacities};
use smr_mapreduce::{FlowReport, JobConfig};
use smr_text::TokenizerConfig;
use social_content_matching::MatchingPipeline;

/// A dataset that has been pushed through the similarity join once, at the
/// loosest threshold of its σ sweep.  Denser/sparser candidate graphs are
/// then obtained by filtering, exactly like the paper sweeps density by
/// varying σ over one dataset.
#[derive(Debug, Clone)]
pub struct DatasetInstance {
    /// Which preset this instance came from.
    pub preset: DatasetPreset,
    /// The generated documents and signals.
    pub dataset: SocialDataset,
    /// Candidate graph at the loosest σ of the sweep.
    pub base_graph: BipartiteGraph,
    /// The loosest σ (every edge of `base_graph` has weight ≥ this).
    pub base_sigma: f64,
    /// Number of MapReduce jobs the similarity join used (always 2).
    pub simjoin_jobs: usize,
    /// Per-job metrics of the similarity join.
    pub join_report: FlowReport,
}

impl DatasetInstance {
    /// Generates the preset, runs the similarity join at the loosest σ of
    /// the preset's sweep (through [`MatchingPipeline`]) and returns the
    /// instance.
    pub fn generate(preset: DatasetPreset, job: JobConfig) -> Self {
        let dataset = preset.generate();
        let base_sigma = *preset
            .sigma_sweep()
            .last()
            .expect("every preset has a non-empty sigma sweep");
        let job = job.with_name(format!("simjoin-{}", dataset.name));
        let candidate = MatchingPipeline::new(dataset)
            .tokenizer(TokenizerConfig::tags_only())
            .sigma(base_sigma)
            .job(job)
            .build_graph();
        DatasetInstance {
            preset,
            dataset: candidate.dataset,
            base_graph: candidate.graph,
            base_sigma,
            simjoin_jobs: candidate.simjoin_jobs,
            join_report: candidate.report,
        }
    }

    /// The candidate graph at threshold `sigma ≥ base_sigma`.
    pub fn graph_at(&self, sigma: f64) -> BipartiteGraph {
        self.base_graph.filter_by_threshold(sigma)
    }

    /// Capacities for the given α.
    pub fn capacities(&self, alpha: f64) -> Capacities {
        self.dataset.capacities(alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_job() -> JobConfig {
        JobConfig::named("pipeline-test").with_threads(2)
    }

    #[test]
    fn instance_generation_produces_a_nonempty_candidate_graph() {
        let instance = DatasetInstance::generate(DatasetPreset::FlickrSmall, quick_job());
        assert!(instance.base_graph.num_edges() > 0);
        assert_eq!(instance.simjoin_jobs, 2);
        assert_eq!(instance.join_report.num_jobs(), 2);
        assert!(instance.join_report.total_shuffled_records() > 0);
        assert_eq!(
            instance.base_graph.num_items(),
            instance.dataset.num_items()
        );
        assert!(instance
            .base_graph
            .edges()
            .iter()
            .all(|e| e.weight >= instance.base_sigma));
    }

    #[test]
    fn lowering_sigma_adds_candidate_edges() {
        let instance = DatasetInstance::generate(DatasetPreset::FlickrSmall, quick_job());
        // The sweep lists σ in decreasing order, so the edge count must be
        // non-decreasing along it (more edges pass a lower threshold).
        let sweep = instance.preset.sigma_sweep();
        let mut last_edges = 0usize;
        for sigma in sweep {
            let g = instance.graph_at(sigma);
            assert!(
                g.num_edges() >= last_edges,
                "lower sigma must not remove edges"
            );
            last_edges = g.num_edges();
        }
        assert_eq!(last_edges, instance.base_graph.num_edges());
    }

    #[test]
    fn capacities_match_the_candidate_graph() {
        let instance = DatasetInstance::generate(DatasetPreset::FlickrSmall, quick_job());
        let caps = instance.capacities(1.0);
        assert!(caps.matches(&instance.base_graph));
    }
}
