//! Command-line driver that regenerates the paper's tables and figures.
//!
//! ```text
//! run-experiments [EXPERIMENT ...] [--scale smoke|full] [--threads N] [--seed S]
//!
//! EXPERIMENT: table1 | fig1 | fig2 | fig3 | fig4 | fig5 | fig6 | fig7
//!           | shuffle | spill | join | sketch | rounds | serving | distrib
//!           | perf | all
//! ```
//!
//! `shuffle`, `spill`, `join`, `sketch`, `rounds`, `serving` and `distrib`
//! are not paper artefacts: `shuffle` profiles the engine's streaming
//! shuffle (sorted runs + k-way merge, combine-while-partitioning),
//! `spill` A/Bs memory budgets on the disk-spilling out-of-core path
//! (output checked byte-identical to the in-memory run), `rounds` A/Bs
//! memory budgets on the out-of-core matching rounds (final matching
//! checked byte-identical to the unlimited-budget run), `join` profiles
//! the streaming similarity join (candidates generated vs pruned cheap vs
//! verified exact, per preset and σ), `sketch` sweeps the pluggable
//! candidate generators (exact prefix join, DISCO sampling, MinHash/LSH
//! banding) and prints their recall-vs-shuffle-cost frontier (exact
//! asserted at recall 1.0, DISCO asserted to shuffle strictly fewer
//! records than exact somewhere), `serving` measures the standing serving index
//! (point-query latency/throughput, recall vs the batch join — asserted
//! to be exactly 1.0 — and the incremental assignment's value against
//! batch GreedyMR), and `distrib` A/Bs the full pipeline across 1/2/4
//! worker *processes* against the in-process baseline (output asserted
//! byte-identical at every shard count).
//!
//! `perf` is the CI-gated hot-path harness (`docs/perf.md`): it times the
//! codec, run-file, merge and probe lanes against the implementations
//! they replaced *in the same run*, sweeps the end-to-end pipeline across
//! memory budgets × thread counts asserting byte-identical output, writes
//! `BENCH_PR10.json` into the working directory and fails the invocation
//! if any gate trips (speedup floor, thread-scaling inversion, >15%
//! regression against the committed `crates/bench/perf_baseline.json`).
//! Like `distrib`, it runs as its own invocation and is not part of
//! `all`.
//!
//! `distrib` is deliberately excluded from `all`: its workers re-invoke
//! this binary with the same arguments and replay everything that runs
//! before the sharded sessions, so bundling it after the other
//! experiments would re-run the entire suite once per worker.  Run it as
//! its own invocation: `run-experiments distrib [--scale smoke|full]`.

use std::process::ExitCode;

use smr_bench::experiments::{self, ExperimentScale, ExperimentSet};
use smr_datagen::DatasetPreset;

#[derive(Debug, Clone)]
struct CliOptions {
    experiments: Vec<String>,
    scale: ExperimentScale,
    threads: usize,
    seed: u64,
}

fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut options = CliOptions {
        experiments: Vec::new(),
        scale: ExperimentScale::Full,
        threads: 0,
        seed: 2011,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let value = args.get(i).ok_or("--scale needs a value")?;
                options.scale = match value.as_str() {
                    "smoke" => ExperimentScale::Smoke,
                    "full" => ExperimentScale::Full,
                    other => return Err(format!("unknown scale '{other}'")),
                };
            }
            "--threads" => {
                i += 1;
                options.threads = args
                    .get(i)
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "--threads needs an integer".to_string())?;
            }
            "--seed" => {
                i += 1;
                options.seed = args
                    .get(i)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?;
            }
            "--help" | "-h" => return Err(usage()),
            name => options.experiments.push(name.to_string()),
        }
        i += 1;
    }
    if options.experiments.is_empty() {
        options.experiments.push("all".to_string());
    }
    Ok(options)
}

fn usage() -> String {
    "usage: run-experiments \
     [table1|fig1|fig2|fig3|fig4|fig5|fig6|fig7|shuffle|spill|join|sketch|rounds|serving|distrib\
     |perf|all ...] [--scale smoke|full] [--threads N] [--seed S]"
        .to_string()
}

fn run_experiment(name: &str, set: &mut ExperimentSet) -> Result<(), String> {
    match name {
        "table1" => println!("{}", experiments::table1(set)),
        "fig1" => println!(
            "{}",
            experiments::quality_and_iterations(set, DatasetPreset::FlickrSmall)
        ),
        "fig2" => println!(
            "{}",
            experiments::quality_and_iterations(set, DatasetPreset::FlickrLarge)
        ),
        "fig3" => println!(
            "{}",
            experiments::quality_and_iterations(set, DatasetPreset::YahooAnswers)
        ),
        "fig4" => println!("{}", experiments::violations(set)),
        "fig5" => println!("{}", experiments::anytime(set)),
        "fig6" => {
            for table in experiments::similarity_distribution(set) {
                println!("{table}");
            }
        }
        "fig7" => {
            for table in experiments::capacity_distribution(set) {
                println!("{table}");
            }
        }
        "shuffle" => println!("{}", experiments::shuffle_ablation(set)),
        "spill" => println!("{}", experiments::spill_ablation(set)),
        "join" => println!("{}", experiments::join_ablation(set)),
        "rounds" => println!("{}", experiments::rounds_ablation(set)),
        "serving" => {
            let rows = experiments::serving_rows(set);
            // The serving index shares the batch probe's pruning math and
            // verifies survivors exactly; anything below perfect recall is
            // a correctness bug, not a tuning knob — fail the run.
            if let Some(row) = rows.iter().find(|row| row.recall < 1.0) {
                return Err(format!(
                    "serving recall degraded below 1.0 against the batch join: {row:?}"
                ));
            }
            println!("{}", experiments::serving_table(&rows));
        }
        "sketch" => {
            let rows = experiments::sketch_rows(set);
            // The exact prefix join IS the reference; its recall is 1.0 by
            // construction, and a sketch generator that keeps no edges at
            // all produced an empty frontier point — both are bugs, not
            // tuning artefacts.
            if let Some(row) = rows.iter().find(|row| row.is_exact && row.recall != 1.0) {
                return Err(format!(
                    "exact generator must have recall 1.0 in the sketch frontier: {row:?}"
                ));
            }
            if let Some(row) = rows.iter().find(|row| !row.is_exact && row.edges == 0) {
                return Err(format!(
                    "sketch generator recovered no edges (unpopulated frontier point): {row:?}"
                ));
            }
            // DISCO's whole point is trading recall for shuffle volume; if
            // no DISCO row shuffles strictly fewer records than its
            // preset's exact join, the sampler is not sampling.
            let disco_saves = rows.iter().any(|row| {
                row.generator.starts_with("disco")
                    && rows.iter().any(|exact| {
                        exact.is_exact
                            && exact.preset == row.preset
                            && row.records_shuffled < exact.records_shuffled
                    })
            });
            if !disco_saves {
                return Err(
                    "no DISCO row shuffled strictly fewer records than the exact join".to_string(),
                );
            }
            println!("{}", experiments::sketch_frontier(&rows));
        }
        "perf" => {
            let baseline = smr_bench::perf::committed_baseline();
            let report = smr_bench::perf::run_perf(set.scale, baseline.as_deref());
            println!("{}", report.render());
            let out = std::path::Path::new("BENCH_PR10.json");
            smr_bench::perf::write_json(&report, out)
                .map_err(|e| format!("writing {}: {e}", out.display()))?;
            eprintln!("[perf report written to {}]", out.display());
            let failures = report.failures();
            if !failures.is_empty() {
                return Err(format!(
                    "perf gates failed: {}",
                    failures
                        .iter()
                        .map(|g| format!("{} ({})", g.name, g.detail))
                        .collect::<Vec<_>>()
                        .join("; ")
                ));
            }
        }
        "distrib" => {
            let rows = experiments::distrib_rows(set, None);
            // The sharded engine is byte-identical to the in-process one
            // by construction; any divergence is a correctness bug, not a
            // measurement — fail the run.
            if let Some(row) = rows.iter().find(|row| !row.matches_local) {
                return Err(format!(
                    "sharded run diverged from the in-process baseline: {row:?}"
                ));
            }
            println!("{}", experiments::distrib_table(&rows));
        }
        "all" => {
            let all = [
                "table1", "fig6", "fig7", "fig1", "fig2", "fig3", "fig4", "fig5", "shuffle",
                "spill", "join", "sketch", "rounds", "serving",
            ];
            for exp in all {
                run_experiment(exp, set)?;
            }
        }
        other => return Err(format!("unknown experiment '{other}'\n{}", usage())),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let experiment_names = options.experiments.clone();
    let mut set = ExperimentSet::new(options.scale, options.threads, options.seed);
    for name in &experiment_names {
        let started = std::time::Instant::now();
        if let Err(message) = run_experiment(name, &mut set) {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
        eprintln!("[{name} finished in {:.1?}]", started.elapsed());
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_run_everything_at_full_scale() {
        let options = parse_args(&[]).unwrap();
        assert_eq!(options.experiments, vec!["all".to_string()]);
        assert_eq!(options.scale, ExperimentScale::Full);
        assert_eq!(options.seed, 2011);
    }

    #[test]
    fn flags_are_parsed() {
        let options = parse_args(&strings(&[
            "fig1",
            "fig4",
            "--scale",
            "smoke",
            "--threads",
            "3",
            "--seed",
            "99",
        ]))
        .unwrap();
        assert_eq!(options.experiments, vec!["fig1", "fig4"]);
        assert_eq!(options.scale, ExperimentScale::Smoke);
        assert_eq!(options.threads, 3);
        assert_eq!(options.seed, 99);
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert!(parse_args(&strings(&["--scale", "planetary"])).is_err());
        assert!(parse_args(&strings(&["--threads", "many"])).is_err());
        assert!(parse_args(&strings(&["--seed"])).is_err());
    }

    #[test]
    fn unknown_experiments_are_rejected_at_run_time() {
        let mut set = ExperimentSet::new(ExperimentScale::Smoke, 1, 1);
        assert!(run_experiment("fig99", &mut set).is_err());
    }

    #[test]
    fn shuffle_experiment_runs_at_smoke_scale() {
        let mut set = ExperimentSet::new(ExperimentScale::Smoke, 2, 1);
        assert!(run_experiment("shuffle", &mut set).is_ok());
    }

    #[test]
    fn spill_experiment_runs_at_smoke_scale() {
        let mut set = ExperimentSet::new(ExperimentScale::Smoke, 2, 1);
        assert!(run_experiment("spill", &mut set).is_ok());
    }

    #[test]
    fn rounds_experiment_runs_at_smoke_scale() {
        let mut set = ExperimentSet::new(ExperimentScale::Smoke, 2, 1);
        assert!(run_experiment("rounds", &mut set).is_ok());
    }

    #[test]
    fn join_experiment_runs_at_smoke_scale() {
        let mut set = ExperimentSet::new(ExperimentScale::Smoke, 2, 1);
        assert!(run_experiment("join", &mut set).is_ok());
    }

    #[test]
    fn sketch_experiment_runs_and_enforces_its_frontier_invariants() {
        let mut set = ExperimentSet::new(ExperimentScale::Smoke, 2, 1);
        assert!(run_experiment("sketch", &mut set).is_ok());
    }

    #[test]
    fn serving_experiment_runs_and_enforces_perfect_recall() {
        let mut set = ExperimentSet::new(ExperimentScale::Smoke, 2, 1);
        assert!(run_experiment("serving", &mut set).is_ok());
    }
}
