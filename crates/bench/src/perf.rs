//! Hot-path perf harness: times each optimised engine lane against the
//! implementation it replaced, **in the same process and run**, and gates
//! on the resulting speedup ratios.
//!
//! Lanes (baseline → optimised):
//!
//! | Lane | Baseline | Optimised |
//! |---|---|---|
//! | `codec` | [`Codec::encode_to_vec`], one allocation per record | [`Codec::encode_into`], caller-owned scratch |
//! | `runio` | version-1 run file, one read per frame | version-2 block-framed file, one read per ~64 KiB block |
//! | `merge` | `BinaryHeap` k-way merge (`merge_runs_reference`) | loser-tree merge (`merge_runs`) |
//! | `probe` | array-of-structs postings + `HashMap` scores | struct-of-arrays postings + open-addressed [`ScoreAccumulator`] |
//!
//! plus the end-to-end pipeline across memory budgets {4 KiB, ∞} ×
//! thread counts {1, 8}, whose outputs are asserted **byte-identical**.
//!
//! Because both sides of every lane run back-to-back on the same machine,
//! the speedup ratios are machine-independent in a way absolute
//! nanoseconds are not; the committed baseline
//! (`crates/bench/perf_baseline.json`) therefore stores ratios, and the
//! CI regression gate compares ratios within a 15% tolerance.  See
//! `docs/perf.md`.

use std::collections::HashMap;
use std::hint::black_box;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use smr_datagen::DatasetPreset;
use smr_graph::BipartiteGraph;
use smr_mapreduce::shuffle::merge_runs_reference;
use smr_mapreduce::{merge_runs, JobConfig};
use smr_simjoin::join::probe_partition;
use smr_simjoin::{IndexPartition, PartialScore, Posting, ScoreAccumulator};
use smr_storage::{Codec, RunReader, RunWriter};
use smr_text::{TermId, TokenizerConfig};
use social_content_matching::MatchingPipeline;

use crate::experiments::ExperimentScale;
use crate::report::{fmt_f, Table};

/// Minimum in-run speedup a lane must show for the speedup gate.
pub const SPEEDUP_FLOOR: f64 = 1.3;
/// How many of the three gated lanes (`codec`, `merge`, `probe`) must
/// clear [`SPEEDUP_FLOOR`].
pub const SPEEDUP_LANES_REQUIRED: usize = 2;
/// Relative tolerance of the regression gate against the committed
/// baseline ratios: the run fails if a lane's speedup drops below
/// `baseline · (1 − 0.15)`.
pub const REGRESSION_TOLERANCE: f64 = 0.15;
/// Slack allowed on the thread-scaling gate (8 threads may be up to this
/// factor slower than 1 thread before the gate trips — it is a "threads
/// must not invert" gate, not a linear-scaling demand).
pub const THREAD_GATE_SLACK: f64 = 1.10;

/// One timed measurement: a named workload, its best-of-N wall time and
/// the volume it processed.
#[derive(Debug, Clone)]
pub struct LaneSample {
    /// Measurement name (e.g. `codec_baseline`, `pipeline_t8_b4096`).
    pub name: String,
    /// Best-of-reps wall time, milliseconds.
    pub wall_ms: f64,
    /// Records processed per repetition.
    pub records: u64,
    /// Bytes processed per repetition.
    pub bytes: u64,
}

impl LaneSample {
    /// Nanoseconds of wall time per record.
    pub fn ns_per_record(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.wall_ms * 1e6 / self.records as f64
        }
    }
}

/// A baseline/optimised pair for one lane.
#[derive(Debug, Clone)]
pub struct LaneComparison {
    /// Lane name (`codec`, `runio`, `merge`, `probe`).
    pub lane: &'static str,
    /// The replaced implementation, re-run in this process.
    pub baseline: LaneSample,
    /// The shipping implementation.
    pub optimized: LaneSample,
}

impl LaneComparison {
    /// Baseline-over-optimised per-record time ratio (> 1 means the
    /// optimised lane is faster).
    pub fn speedup(&self) -> f64 {
        let optimized = self.optimized.ns_per_record();
        if optimized == 0.0 {
            1.0
        } else {
            self.baseline.ns_per_record() / optimized
        }
    }
}

/// One pass/fail check of the run.
#[derive(Debug, Clone)]
pub struct Gate {
    /// Gate name as written to the JSON report.
    pub name: String,
    /// Whether the gate held.
    pub passed: bool,
    /// Human-readable evidence.
    pub detail: String,
    /// Hard gates are correctness claims (byte-identity) that hold at any
    /// scale and in any build profile; soft gates are timing claims that
    /// are only meaningful in release builds.
    pub hard: bool,
}

/// The full result of a perf run.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Baseline/optimised lane pairs.
    pub lanes: Vec<LaneComparison>,
    /// End-to-end pipeline samples, one per (threads, budget) config.
    pub pipeline: Vec<LaneSample>,
    /// All gates evaluated on this run.
    pub gates: Vec<Gate>,
}

impl PerfReport {
    /// Gates that failed, including timing gates.
    pub fn failures(&self) -> Vec<&Gate> {
        self.gates.iter().filter(|g| !g.passed).collect()
    }

    /// Failed *correctness* gates — the subset that must hold even in
    /// unoptimised builds (used by the debug-profile smoke test).
    pub fn hard_failures(&self) -> Vec<&Gate> {
        self.gates.iter().filter(|g| g.hard && !g.passed).collect()
    }

    /// The lane comparison with the given name, if present.
    pub fn lane(&self, name: &str) -> Option<&LaneComparison> {
        self.lanes.iter().find(|l| l.lane == name)
    }

    /// Renders the lanes, pipeline configs and gates as plain-text tables.
    pub fn render(&self) -> String {
        let mut lanes = Table::new(
            "perf lanes (baseline vs optimized, best-of-reps)",
            &["lane", "base ns/rec", "opt ns/rec", "speedup", "records"],
        );
        for lane in &self.lanes {
            lanes.push_row(vec![
                lane.lane.to_string(),
                fmt_f(lane.baseline.ns_per_record(), 1),
                fmt_f(lane.optimized.ns_per_record(), 1),
                format!("{:.2}x", lane.speedup()),
                lane.optimized.records.to_string(),
            ]);
        }
        let mut pipeline = Table::new(
            "end-to-end pipeline (byte-identity asserted)",
            &["config", "wall ms", "shuffled records"],
        );
        for sample in &self.pipeline {
            pipeline.push_row(vec![
                sample.name.clone(),
                fmt_f(sample.wall_ms, 1),
                sample.records.to_string(),
            ]);
        }
        let mut gates = Table::new("gates", &["gate", "result", "detail"]);
        for gate in &self.gates {
            gates.push_row(vec![
                gate.name.clone(),
                if gate.passed { "pass" } else { "FAIL" }.to_string(),
                gate.detail.clone(),
            ]);
        }
        format!("{lanes}\n{pipeline}\n{gates}")
    }
}

/// Deterministic xorshift for synthetic lane inputs.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self, modulus: u64) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0 % modulus
    }

    fn next_f64(&mut self) -> f64 {
        self.next(1 << 20) as f64 / (1u64 << 20) as f64
    }
}

/// Runs `work` `reps` times and returns (best wall ms, last result).
fn best_of<R>(reps: usize, mut work: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let started = Instant::now();
        let r = work();
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
        result = Some(r);
    }
    (best, result.expect("reps >= 1"))
}

fn reps(scale: ExperimentScale) -> usize {
    match scale {
        ExperimentScale::Smoke => 3,
        ExperimentScale::Full => 5,
    }
}

/// The record type the codec and run-file lanes push through: the probe
/// shuffle's actual wire shape, `((item, consumer), PartialScore)`-like.
type WireRecord = ((u64, u64), (f64, f64));

fn wire_records(scale: ExperimentScale) -> Vec<WireRecord> {
    let n = match scale {
        ExperimentScale::Smoke => 100_000,
        ExperimentScale::Full => 1_000_000,
    };
    let mut rng = XorShift(0x5eed);
    (0..n)
        .map(|_| {
            (
                (rng.next(1 << 20), rng.next(1 << 20)),
                (rng.next_f64(), rng.next_f64()),
            )
        })
        .collect()
}

/// Codec lane: per-record `encode_to_vec` (alloc per record) vs
/// `encode_into` a reused scratch buffer.
fn codec_lane(scale: ExperimentScale) -> LaneComparison {
    let records = wire_records(scale);
    let reps = reps(scale);
    let (base_ms, base_bytes) = best_of(reps, || {
        let mut total = 0u64;
        for record in &records {
            total += black_box(record.encode_to_vec()).len() as u64;
        }
        total
    });
    let (opt_ms, opt_bytes) = best_of(reps, || {
        let mut scratch = Vec::new();
        let mut total = 0u64;
        for record in &records {
            total += black_box(record.encode_into(&mut scratch)).len() as u64;
        }
        total
    });
    assert_eq!(base_bytes, opt_bytes, "codec lanes must encode identically");
    LaneComparison {
        lane: "codec",
        baseline: LaneSample {
            name: "codec_baseline".into(),
            wall_ms: base_ms,
            records: records.len() as u64,
            bytes: base_bytes,
        },
        optimized: LaneSample {
            name: "codec_optimized".into(),
            wall_ms: opt_ms,
            records: records.len() as u64,
            bytes: opt_bytes,
        },
    }
}

/// Run-file lane: reading back a version-1 file (one frame per record)
/// vs a version-2 block-framed file (one read per ~64 KiB block).
fn runio_lane(scale: ExperimentScale, dir: &Path) -> LaneComparison {
    let records = wire_records(scale);
    let reps = reps(scale);
    let v1 = dir.join("perf-v1.run");
    let v2 = dir.join("perf-v2.run");
    let mut w1: RunWriter<WireRecord> = RunWriter::create_legacy_v1(&v1).unwrap();
    let mut w2: RunWriter<WireRecord> = RunWriter::create(&v2).unwrap();
    for record in &records {
        w1.push(record).unwrap();
        w2.push(record).unwrap();
    }
    w1.finish().unwrap();
    w2.finish().unwrap();
    let read_all = |path: &Path| {
        let reader: RunReader<WireRecord> = RunReader::open(path).unwrap();
        black_box(reader.read_to_end().unwrap()).len() as u64
    };
    let (base_ms, base_n) = best_of(reps, || read_all(&v1));
    let (opt_ms, opt_n) = best_of(reps, || read_all(&v2));
    assert_eq!(base_n, opt_n, "both format versions hold the same records");
    let comparison = LaneComparison {
        lane: "runio",
        baseline: LaneSample {
            name: "runio_v1_read".into(),
            wall_ms: base_ms,
            records: base_n,
            bytes: std::fs::metadata(&v1).unwrap().len(),
        },
        optimized: LaneSample {
            name: "runio_v2_read".into(),
            wall_ms: opt_ms,
            records: opt_n,
            bytes: std::fs::metadata(&v2).unwrap().len(),
        },
    };
    let _ = std::fs::remove_file(&v1);
    let _ = std::fs::remove_file(&v2);
    comparison
}

/// Merge lane: the retired `BinaryHeap` k-way merge vs the loser tree,
/// over 64 sorted runs shaped like the engine's real shuffles — each key
/// appears ~8 times per run, so every sorted run carries contiguous
/// equal-key streaks, exactly what a map task's term-grouped posting
/// emissions (or a word count's repeated words — the reason map-side
/// combining exists) look like.  In-run streaks are where the
/// winner-stays fast path earns its keep: the tournament collapses to
/// one comparison per record along them.  On all-distinct uniform keys
/// the tree has no streaks to exploit and the `BinaryHeap` is a close
/// match; that regime is locked correct (not fast) by the merge property
/// tests.
fn merge_lane(scale: ExperimentScale) -> LaneComparison {
    let run_count = 64usize;
    let per_run = match scale {
        ExperimentScale::Smoke => 2_000,
        ExperimentScale::Full => 20_000,
    };
    let key_space = (per_run / 8).max(1) as u64;
    let mut rng = XorShift(0xfeed);
    let runs: Vec<Vec<(u64, u64)>> = (0..run_count)
        .map(|_| {
            let mut run: Vec<(u64, u64)> = (0..per_run)
                .map(|_| (rng.next(key_space), rng.next(u64::MAX)))
                .collect();
            run.sort_unstable_by_key(|r| r.0);
            run
        })
        .collect();
    let total = (run_count * per_run) as u64;
    let bytes = total * std::mem::size_of::<(u64, u64)>() as u64;
    let reps = reps(scale);
    // Merges consume their input: pre-clone one copy per repetition so
    // the timed region moves, not clones.
    let mut pool: Vec<_> = (0..reps).map(|_| runs.clone()).collect();
    let (base_ms, base_out) = best_of(reps, || {
        let input = pool.pop().expect("one clone per rep");
        black_box(merge_runs_reference(input)).len() as u64
    });
    let mut pool: Vec<_> = (0..reps).map(|_| runs.clone()).collect();
    let (opt_ms, opt_out) = best_of(reps, || {
        let input = pool.pop().expect("one clone per rep");
        black_box(merge_runs(input)).len() as u64
    });
    assert_eq!(base_out, opt_out, "merges must emit every record");
    LaneComparison {
        lane: "merge",
        baseline: LaneSample {
            name: "merge_heap".into(),
            wall_ms: base_ms,
            records: total,
            bytes,
        },
        optimized: LaneSample {
            name: "merge_loser_tree".into(),
            wall_ms: opt_ms,
            records: total,
            bytes,
        },
    }
}

/// One sparse query: sorted, deduped `(term, weight)` pairs.
type ProbeQuery = Vec<(TermId, f64)>;

/// Synthetic probe inputs: a term-partitioned index plus a query batch.
fn probe_inputs(scale: ExperimentScale) -> (Vec<(u32, Posting)>, Vec<ProbeQuery>) {
    let (terms, per_term, queries, query_terms) = match scale {
        ExperimentScale::Smoke => (1_000, 32, 200, 12),
        ExperimentScale::Full => (4_000, 64, 1_000, 16),
    };
    let consumers = terms * per_term / 4;
    let mut rng = XorShift(0xabcd);
    let mut records = Vec::with_capacity(terms * per_term);
    for term in 0..terms as u32 {
        for _ in 0..per_term {
            records.push((
                term,
                Posting {
                    doc: rng.next(consumers as u64) as usize,
                    weight: rng.next_f64(),
                    bound: rng.next_f64() * 0.25,
                },
            ));
        }
    }
    let query_batch: Vec<Vec<(TermId, f64)>> = (0..queries)
        .map(|_| {
            let mut ids: Vec<u32> = (0..query_terms)
                .map(|_| rng.next(terms as u64) as u32)
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids.into_iter()
                .map(|t| (TermId(t), rng.next_f64()))
                .collect()
        })
        .collect();
    (records, query_batch)
}

/// The retired probe: array-of-structs postings, `HashMap` accumulation —
/// a faithful replica of the pre-optimisation `probe_partition`, kept
/// here as the lane's executable baseline.
fn legacy_probe(
    index: &[(u32, Vec<Posting>)],
    query: &[(TermId, f64)],
    scores: &mut HashMap<usize, PartialScore>,
) {
    for &(term, weight) in query {
        let postings = match index.binary_search_by_key(&term.0, |(t, _)| *t) {
            Ok(i) => &index[i].1,
            Err(_) => continue,
        };
        for posting in postings {
            let entry = scores.entry(posting.doc).or_insert(PartialScore {
                score: 0.0,
                remainder: posting.bound,
            });
            entry.score += weight * posting.weight;
        }
    }
}

/// Probe lane: legacy AoS + `HashMap` vs SoA columns + open-addressed
/// accumulator, over the same index and queries; outputs are asserted
/// identical.
fn probe_lane(scale: ExperimentScale) -> LaneComparison {
    let (records, queries) = probe_inputs(scale);
    // Legacy layout: per-term posting vectors, term-sorted.
    let mut sorted = records.clone();
    sorted.sort_by_key(|(term, _)| *term);
    let mut legacy: Vec<(u32, Vec<Posting>)> = Vec::new();
    for (term, posting) in sorted {
        match legacy.last_mut() {
            Some((last, list)) if *last == term => list.push(posting),
            _ => legacy.push((term, vec![posting])),
        }
    }
    let partition = IndexPartition::from_records(records);
    // Work volume: one record = one posting visited by one query.
    let touched: u64 = queries
        .iter()
        .flat_map(|q| q.iter())
        .map(|&(t, _)| partition.postings(t.0).len() as u64)
        .sum();
    let bytes = touched * std::mem::size_of::<Posting>() as u64;
    let reps = reps(scale);
    let (base_ms, base_candidates) = best_of(reps, || {
        let mut emitted = Vec::new();
        for query in &queries {
            let mut scores: HashMap<usize, PartialScore> = HashMap::new();
            legacy_probe(&legacy, query, &mut scores);
            let mut candidates: Vec<(usize, PartialScore)> = scores.into_iter().collect();
            candidates.sort_unstable_by_key(|(doc, _)| *doc);
            emitted.push(candidates);
        }
        emitted
    });
    let (opt_ms, opt_candidates) = best_of(reps, || {
        let mut emitted = Vec::new();
        let mut scores = ScoreAccumulator::new();
        for query in &queries {
            probe_partition(&partition, query, &mut scores);
            emitted.push(scores.drain_sorted());
        }
        emitted
    });
    assert_eq!(
        base_candidates, opt_candidates,
        "probe lanes must produce identical candidates"
    );
    LaneComparison {
        lane: "probe",
        baseline: LaneSample {
            name: "probe_aos_hashmap".into(),
            wall_ms: base_ms,
            records: touched,
            bytes,
        },
        optimized: LaneSample {
            name: "probe_soa_accumulator".into(),
            wall_ms: opt_ms,
            records: touched,
            bytes,
        },
    }
}

/// End-to-end pipeline over (threads × memory budget) configs; returns
/// the samples and the graphs for the byte-identity gate.
fn pipeline_samples(scale: ExperimentScale) -> (Vec<LaneSample>, Vec<BipartiteGraph>) {
    let preset = match scale {
        ExperimentScale::Smoke => DatasetPreset::FlickrSmall,
        ExperimentScale::Full => DatasetPreset::FlickrLarge,
    };
    let dataset = preset.generate();
    let sigma = *preset
        .sigma_sweep()
        .last()
        .expect("presets have non-empty sweeps");
    let configs: [(usize, Option<u64>); 4] =
        [(1, None), (8, None), (1, Some(4096)), (8, Some(4096))];
    let mut samples = Vec::new();
    let mut graphs = Vec::new();
    for (threads, budget) in configs {
        let name = format!(
            "pipeline_t{threads}_{}",
            budget.map_or("unbudgeted".to_string(), |b| format!("b{b}"))
        );
        // Task counts default to the thread count, and the engine's
        // determinism contract is per *task layout*: the same logical
        // tasks produce the same bytes whatever worker pool executes
        // them.  Pin the layout so only threads and budget vary.
        let started = Instant::now();
        let candidate = MatchingPipeline::new(dataset.clone())
            .tokenizer(TokenizerConfig::tags_only())
            .sigma(sigma)
            .job(
                JobConfig::named(&name)
                    .with_threads(threads)
                    .with_map_tasks(8)
                    .with_reduce_tasks(8),
            )
            .memory_budget(budget)
            .build_graph();
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        samples.push(LaneSample {
            name,
            wall_ms,
            records: candidate.report.total_shuffled_records(),
            bytes: (candidate.graph.num_edges() * std::mem::size_of::<smr_graph::Edge>()) as u64,
        });
        graphs.push(candidate.graph);
    }
    (samples, graphs)
}

fn evaluate_gates(
    lanes: &[LaneComparison],
    pipeline: &[LaneSample],
    graphs: &[BipartiteGraph],
    baseline_json: Option<&str>,
) -> Vec<Gate> {
    let mut gates = Vec::new();

    // Byte-identity across budgets × thread counts (hard).
    let mut divergence = None;
    for (config, graph) in graphs.iter().enumerate().skip(1) {
        if graph.edges() == graphs[0].edges() {
            continue;
        }
        let at = graph
            .edges()
            .iter()
            .zip(graphs[0].edges())
            .position(|(a, b)| a != b);
        divergence = Some(match at {
            Some(i) => format!(
                "config {} diverges at edge {i}: {:?} vs {:?}",
                pipeline[config].name,
                graph.edges()[i],
                graphs[0].edges()[i]
            ),
            None => format!(
                "config {} has {} edges vs {}",
                pipeline[config].name,
                graph.num_edges(),
                graphs[0].num_edges()
            ),
        });
        break;
    }
    gates.push(Gate {
        name: "pipeline_byte_identity".into(),
        passed: divergence.is_none(),
        detail: divergence.unwrap_or_else(|| {
            format!(
                "{} configs, {} edges each",
                graphs.len(),
                graphs.first().map_or(0, |g| g.num_edges())
            )
        }),
        hard: true,
    });

    // In-run speedup floor on the gated lanes (soft — timing).
    let gated = ["codec", "merge", "probe"];
    let cleared: Vec<String> = lanes
        .iter()
        .filter(|l| gated.contains(&l.lane) && l.speedup() >= SPEEDUP_FLOOR)
        .map(|l| format!("{} {:.2}x", l.lane, l.speedup()))
        .collect();
    gates.push(Gate {
        name: "speedup_floor".into(),
        passed: cleared.len() >= SPEEDUP_LANES_REQUIRED,
        detail: format!(
            "{}/{} lanes >= {SPEEDUP_FLOOR}x: [{}]",
            cleared.len(),
            gated.len(),
            cleared.join(", ")
        ),
        hard: false,
    });

    // Thread scaling must not invert — only meaningful with >= 2 cores
    // (soft — timing).
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let wall_of = |name: &str| pipeline.iter().find(|s| s.name == name).map(|s| s.wall_ms);
    let (t1, t8) = (
        wall_of("pipeline_t1_unbudgeted"),
        wall_of("pipeline_t8_unbudgeted"),
    );
    let (passed, detail) = match (cores >= 2, t1, t8) {
        (false, _, _) => (
            true,
            format!("skipped: {cores} core(s) available, scaling unmeasurable"),
        ),
        (true, Some(t1), Some(t8)) => (
            t8 <= t1 * THREAD_GATE_SLACK,
            format!("t8 {t8:.1} ms vs t1 {t1:.1} ms (slack {THREAD_GATE_SLACK}x)"),
        ),
        _ => (false, "pipeline samples missing".to_string()),
    };
    gates.push(Gate {
        name: "thread_scaling".into(),
        passed,
        detail,
        hard: false,
    });

    // Regression vs the committed baseline ratios (soft — timing).
    for lane in lanes.iter().filter(|l| gated.contains(&l.lane)) {
        let key = format!("{}_speedup", lane.lane);
        let (passed, detail) = match baseline_json.and_then(|text| json_number(text, &key)) {
            None => (true, "no committed baseline".to_string()),
            Some(reference) => {
                let floor = reference * (1.0 - REGRESSION_TOLERANCE);
                (
                    lane.speedup() >= floor,
                    format!(
                        "{:.2}x vs baseline {reference:.2}x (floor {floor:.2}x)",
                        lane.speedup()
                    ),
                )
            }
        };
        gates.push(Gate {
            name: format!("regression_{}", lane.lane),
            passed,
            detail,
            hard: false,
        });
    }
    gates
}

/// Runs every lane and the end-to-end pipeline at the given scale,
/// evaluates the gates against `baseline_json` (the contents of
/// `crates/bench/perf_baseline.json`, when present) and returns the
/// report.  Pure measurement — callers decide what a failed gate means.
pub fn run_perf(scale: ExperimentScale, baseline_json: Option<&str>) -> PerfReport {
    let dir = std::env::temp_dir().join(format!("smr-perf-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir for the run-file lane");
    let lanes = vec![
        codec_lane(scale),
        runio_lane(scale, &dir),
        merge_lane(scale),
        probe_lane(scale),
    ];
    let _ = std::fs::remove_dir_all(&dir);
    let (pipeline, graphs) = pipeline_samples(scale);
    let gates = evaluate_gates(&lanes, &pipeline, &graphs, baseline_json);
    PerfReport {
        lanes,
        pipeline,
        gates,
    }
}

/// The committed baseline ratios this checkout carries.
pub fn committed_baseline() -> Option<String> {
    std::fs::read_to_string(baseline_path()).ok()
}

/// Path of the committed baseline JSON inside the repository.
pub fn baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("perf_baseline.json")
}

/// Extracts the number following `"key":` in a flat JSON object — enough
/// JSON for the baseline file without a parser dependency.
pub fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let after = &text[text.find(&needle)? + needle.len()..];
    let after = after.trim_start().strip_prefix(':')?.trim_start();
    let end = after
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

fn push_sample(out: &mut String, sample: &LaneSample, last: bool) {
    out.push_str(&format!(
        "    \"{}\": {{\"wall_ms\": {:.3}, \"records\": {}, \"bytes\": {}, \"ns_per_record\": {:.3}}}{}\n",
        sample.name,
        sample.wall_ms,
        sample.records,
        sample.bytes,
        sample.ns_per_record(),
        if last { "" } else { "," }
    ));
}

/// Serialises the report as the `BENCH_PR10.json` document: every
/// measurement under `"experiments"` (schema: name → wall_ms / records /
/// bytes / ns_per_record), the lane speedup ratios under `"speedups"`
/// (the machine-portable numbers the regression gate compares), and the
/// gate verdicts under `"gates"`.
pub fn to_json(report: &PerfReport) -> String {
    let mut out = String::from("{\n  \"experiments\": {\n");
    let samples: Vec<&LaneSample> = report
        .lanes
        .iter()
        .flat_map(|l| [&l.baseline, &l.optimized])
        .chain(report.pipeline.iter())
        .collect();
    for (i, sample) in samples.iter().enumerate() {
        push_sample(&mut out, sample, i + 1 == samples.len());
    }
    out.push_str("  },\n  \"speedups\": {\n");
    for (i, lane) in report.lanes.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}_speedup\": {:.4}{}\n",
            lane.lane,
            lane.speedup(),
            if i + 1 == report.lanes.len() { "" } else { "," }
        ));
    }
    out.push_str("  },\n  \"gates\": {\n");
    for (i, gate) in report.gates.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {}{}\n",
            gate.name,
            gate.passed,
            if i + 1 == report.gates.len() { "" } else { "," }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Writes [`to_json`] to `path`.
pub fn write_json(report: &PerfReport, path: &Path) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(to_json(report).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_number_extracts_flat_keys() {
        let text = "{\n  \"codec_speedup\": 2.125,\n  \"merge_speedup\": 1.5e0\n}";
        assert_eq!(json_number(text, "codec_speedup"), Some(2.125));
        assert_eq!(json_number(text, "merge_speedup"), Some(1.5));
        assert_eq!(json_number(text, "probe_speedup"), None);
    }

    #[test]
    fn committed_baseline_parses() {
        // The repo ships a baseline; if this fails the baseline file is
        // malformed and the CI regression gate would silently pass.
        let text = committed_baseline().expect("perf_baseline.json is committed");
        for key in ["codec_speedup", "merge_speedup", "probe_speedup"] {
            assert!(
                json_number(&text, key).is_some(),
                "baseline is missing {key}"
            );
        }
    }

    #[test]
    fn probe_lanes_agree_and_pipeline_is_byte_identical_at_smoke_scale() {
        // Timing gates are meaningless under the test (debug) profile;
        // the hard gates — identical lane outputs, byte-identical
        // pipeline — must hold in any profile.
        let report = run_perf(ExperimentScale::Smoke, None);
        assert!(
            report.hard_failures().is_empty(),
            "hard gates failed: {:?}",
            report.hard_failures()
        );
        assert_eq!(report.lanes.len(), 4);
        assert_eq!(report.pipeline.len(), 4);
        for lane in &report.lanes {
            assert!(lane.baseline.records > 0);
            assert!(lane.baseline.ns_per_record() > 0.0);
        }
        let json = to_json(&report);
        for key in [
            "codec_speedup",
            "merge_speedup",
            "probe_speedup",
            "runio_speedup",
        ] {
            assert!(json_number(&json, key).is_some(), "JSON missing {key}");
        }
        assert!(json.contains("\"pipeline_t8_b4096\""));
        assert!(report.render().contains("perf lanes"));
    }
}
