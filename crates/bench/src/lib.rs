//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section (Section 6) on the synthetic stand-in datasets.
//!
//! | Experiment | Paper artefact | Function |
//! |---|---|---|
//! | `table1` | Table 1 — dataset characteristics | [`experiments::table1`] |
//! | `fig1`–`fig3` | Figures 1–3 — matching value and #iterations vs #edges | [`experiments::quality_and_iterations`] |
//! | `fig4` | Figure 4 — StackMR capacity violations | [`experiments::violations`] |
//! | `fig5` | Figure 5 — GreedyMR any-time convergence | [`experiments::anytime`] |
//! | `fig6` | Figure 6 — edge-similarity distributions | [`experiments::similarity_distribution`] |
//! | `fig7` | Figure 7 — capacity distributions | [`experiments::capacity_distribution`] |
//!
//! The binary `run-experiments` drives them from the command line:
//!
//! ```text
//! cargo run --release -p smr-bench --bin run-experiments -- all
//! cargo run --release -p smr-bench --bin run-experiments -- fig1 --scale small
//! ```
//!
//! Each experiment prints a plain-text table; `EXPERIMENTS.md` at the
//! workspace root records a captured run next to the paper's own numbers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod perf;
pub mod pipeline;
pub mod report;

pub use experiments::{ExperimentScale, ExperimentSet};
pub use perf::PerfReport;
pub use pipeline::DatasetInstance;
pub use report::Table;
