//! Criterion group for the streaming similarity join — the group the CI
//! bench smoke step runs:
//!
//! * the two-job MapReduce join (prefix filter + partial products +
//!   suffix-bound pruning) vs the brute-force all-pairs baseline,
//! * the same join under a 4 KiB memory budget, forcing the out-of-core
//!   shuffle on both jobs (the regime the `spill-test` CI job runs the
//!   whole suite in).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use smr_datagen::DatasetPreset;
use smr_mapreduce::JobConfig;
use smr_simjoin::{baseline_similarity_join, mapreduce_similarity_join, SimJoinConfig};
use smr_text::{Corpus, TokenizerConfig};

/// Streaming similarity join vs the brute-force baseline, in memory and
/// under a tiny budget.
fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_similarity");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let dataset = DatasetPreset::FlickrSmall.generate();
    let items = Corpus::build(dataset.items.clone(), &TokenizerConfig::tags_only());
    let consumers = Corpus::build(dataset.consumers.clone(), &TokenizerConfig::tags_only());
    let sigma = DatasetPreset::FlickrSmall.default_sigma();
    group.bench_function("streaming_prefix_filtering", |b| {
        b.iter(|| {
            mapreduce_similarity_join(
                &items,
                &consumers,
                &SimJoinConfig::default()
                    .with_threshold(sigma)
                    .with_job(JobConfig::named("join-bench")),
            )
        })
    });
    group.bench_function("streaming_budget_4KiB", |b| {
        b.iter(|| {
            mapreduce_similarity_join(
                &items,
                &consumers,
                &SimJoinConfig::default().with_threshold(sigma).with_job(
                    JobConfig::named("join-bench-spill").with_memory_budget(Some(4 * 1024)),
                ),
            )
        })
    });
    group.bench_function("brute_force_baseline", |b| {
        b.iter(|| baseline_similarity_join(&items, &consumers, sigma))
    });
    group.finish();
}

criterion_group!(join_benches, bench_join);
criterion_main!(join_benches);
