//! Criterion benchmarks — one group per table/figure of the paper.
//!
//! The benches measure the wall-clock cost of regenerating each artefact on
//! the smoke-scale instances (the full-scale numbers are produced by the
//! `run-experiments` binary and recorded in `EXPERIMENTS.md`); they keep
//! the whole pipeline exercised under `cargo bench`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smr_bench::experiments::{self, ExperimentScale, ExperimentSet};
use smr_bench::pipeline::DatasetInstance;
use smr_datagen::{DatasetPreset, RandomGraphConfig, WeightDistribution};
use smr_graph::Capacities;
use smr_mapreduce::{FlowContext, JobConfig};
use smr_matching::{GreedyMr, GreedyMrConfig, StackMr, StackMrConfig};

fn bench_job() -> JobConfig {
    JobConfig::named("bench").with_threads(0)
}

fn bench_flow() -> FlowContext {
    FlowContext::new(bench_job())
}

fn smoke_set() -> ExperimentSet {
    ExperimentSet::new(ExperimentScale::Smoke, 0, 2011)
}

/// A mid-sized synthetic candidate graph used by the per-figure matching
/// benches (generated directly, skipping the similarity join, so the bench
/// isolates the matching algorithms).
fn bench_graph(num_edges: usize) -> (smr_graph::BipartiteGraph, Capacities) {
    let graph = RandomGraphConfig {
        num_items: 300,
        num_consumers: 120,
        num_edges,
        weights: WeightDistribution::Exponential {
            min: 0.05,
            rate: 8.0,
            cap: 1.0,
        },
        popularity_exponent: 0.8,
        seed: 7,
    }
    .generate();
    let caps = Capacities::uniform(&graph, 4, 3);
    (graph, caps)
}

/// Table 1: dataset generation + similarity join.
fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_dataset_characteristics");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("flickr_small_pipeline", |b| {
        b.iter(|| DatasetInstance::generate(DatasetPreset::FlickrSmall, bench_job()))
    });
    group.finish();
}

/// Figures 1–3: matching value / iterations for the three algorithms.
fn bench_quality_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_2_3_matching_value_and_iterations");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &edges in &[1_000usize, 3_000] {
        let (graph, caps) = bench_graph(edges);
        group.bench_with_input(BenchmarkId::new("GreedyMR", edges), &edges, |b, _| {
            b.iter(|| {
                GreedyMr::new(GreedyMrConfig::default().with_job(bench_job())).run(
                    &graph,
                    &caps,
                    &bench_flow(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("StackMR", edges), &edges, |b, _| {
            b.iter(|| {
                StackMr::new(StackMrConfig::default().with_seed(1).with_job(bench_job())).run(
                    &graph,
                    &caps,
                    &bench_flow(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("StackGreedyMR", edges), &edges, |b, _| {
            b.iter(|| {
                StackMr::new(
                    StackMrConfig::default()
                        .with_seed(1)
                        .with_job(bench_job())
                        .stack_greedy(),
                )
                .run(&graph, &caps, &bench_flow())
            })
        });
    }
    group.finish();
}

/// Figure 4: violation measurement of StackMR.
fn bench_violations(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_capacity_violations");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let (graph, caps) = bench_graph(2_000);
    group.bench_function("stackmr_with_violation_report", |b| {
        b.iter(|| {
            let run = StackMr::new(StackMrConfig::default().with_seed(3).with_job(bench_job()))
                .run(&graph, &caps, &bench_flow());
            run.average_violation(&graph, &caps)
        })
    });
    group.finish();
}

/// Figure 5: GreedyMR any-time trace.
fn bench_anytime(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_greedymr_anytime");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let (graph, caps) = bench_graph(2_000);
    group.bench_function("greedymr_value_trace", |b| {
        b.iter(|| {
            let run = GreedyMr::new(GreedyMrConfig::default().with_job(bench_job())).run(
                &graph,
                &caps,
                &bench_flow(),
            );
            run.rounds_to_reach_fraction(0.95)
        })
    });
    group.finish();
}

/// Figures 6 and 7: distribution histograms over a generated dataset.
fn bench_distributions(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_7_distributions");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("similarity_and_capacity_histograms", |b| {
        let mut set = smoke_set();
        // Warm the instance cache once so the bench isolates the histogram
        // computation plus the threshold filtering.
        let _ = experiments::table1(&mut set);
        b.iter(|| {
            let sims = experiments::similarity_distribution(&mut set);
            let caps = experiments::capacity_distribution(&mut set);
            (sims.len(), caps.len())
        })
    });
    group.finish();
}

/// GreedyMR worst case: the increasing-weight path (Section 5.4).
fn bench_greedymr_worst_case(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedymr_worst_case_path");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for &length in &[32usize, 128] {
        let (graph, caps) = smr_datagen::pathological::increasing_weight_path(length);
        group.bench_with_input(BenchmarkId::new("path", length), &length, |b, _| {
            b.iter(|| {
                GreedyMr::new(GreedyMrConfig::default().with_job(bench_job())).run(
                    &graph,
                    &caps,
                    &bench_flow(),
                )
            })
        });
    }
    group.finish();
}

/// End-to-end smoke-scale regeneration of the evaluation (Table 1 +
/// Figure 1 + Figure 4 on flickr-small), the closest single number to
/// "how long does reproducing the paper take".
fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_smoke_evaluation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("table1_fig1_fig4_smoke", |b| {
        b.iter(|| {
            let mut set = smoke_set();
            let t1 = experiments::table1(&mut set);
            let f1 = experiments::quality_and_iterations(&mut set, DatasetPreset::FlickrSmall);
            let f4 = experiments::violations(&mut set);
            (t1.num_rows(), f1.num_rows(), f4.num_rows())
        })
    });
    group.finish();
}

/// Exact solver vs the approximations (the "why approximation algorithms"
/// motivation of Section 1).
fn bench_exact_vs_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_solver_vs_greedy");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let (graph, caps) = bench_graph(1_000);
    group.bench_function("exact_min_cost_flow", |b| {
        b.iter(|| smr_matching::optimal_matching(&graph, &caps))
    });
    group.bench_function("centralized_greedy", |b| {
        b.iter(|| smr_matching::greedy_matching(&graph, &caps))
    });
    group.finish();
}

criterion_group!(
    paper_benches,
    bench_table1,
    bench_quality_figures,
    bench_violations,
    bench_anytime,
    bench_distributions,
    bench_greedymr_worst_case,
    bench_end_to_end,
    bench_exact_vs_greedy,
);
criterion_main!(paper_benches);
