//! Ablation benchmarks for the design choices called out in `DESIGN.md`:
//!
//! * the marking strategy of the maximal-matching subroutine
//!   (random = StackMR, heaviest-first = StackGreedyMR,
//!   weight-proportional = the third variant the paper dismisses),
//! * the slackness parameter ε (violation vs rounds trade-off),
//! * the thread count of the MapReduce engine (scaling of one GreedyMR
//!   round),
//! * the shuffle engine: streaming sorted-runs + k-way merge vs the
//!   legacy concat+sort path, on a full GreedyMR run.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smr_datagen::{RandomGraphConfig, WeightDistribution};
use smr_graph::Capacities;
use smr_mapreduce::{FlowContext, JobConfig};
use smr_matching::{GreedyMr, GreedyMrConfig, MarkingStrategy, StackMr, StackMrConfig};

fn bench_graph(num_edges: usize, seed: u64) -> (smr_graph::BipartiteGraph, Capacities) {
    let graph = RandomGraphConfig {
        num_items: 250,
        num_consumers: 100,
        num_edges,
        weights: WeightDistribution::Exponential {
            min: 0.05,
            rate: 8.0,
            cap: 1.0,
        },
        popularity_exponent: 0.8,
        seed,
    }
    .generate();
    let caps = Capacities::uniform(&graph, 4, 3);
    (graph, caps)
}

/// Marking-strategy ablation: the StackMR / StackGreedyMR /
/// weight-proportional variants on the same instance.
fn bench_marking_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_marking_strategy");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let (graph, caps) = bench_graph(2_000, 11);
    for (name, strategy) in [
        ("random", MarkingStrategy::Random),
        ("heaviest_first", MarkingStrategy::HeaviestFirst),
        ("weight_proportional", MarkingStrategy::WeightProportional),
    ] {
        group.bench_function(BenchmarkId::new("stack_mr", name), |b| {
            b.iter(|| {
                let job = JobConfig::named("ablation");
                StackMr::new(
                    StackMrConfig::default()
                        .with_seed(5)
                        .with_marking(strategy)
                        .with_job(job.clone()),
                )
                .run(&graph, &caps, &FlowContext::new(job))
            })
        });
    }
    group.finish();
}

/// ε ablation: thinner layers (small ε) trade more rounds for smaller
/// capacity violations.
fn bench_epsilon(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_epsilon");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let (graph, caps) = bench_graph(2_000, 13);
    for &epsilon in &[0.25f64, 0.5, 1.0, 2.0] {
        group.bench_with_input(
            BenchmarkId::new("stack_mr_eps", format!("{epsilon}")),
            &epsilon,
            |b, &eps| {
                b.iter(|| {
                    let job = JobConfig::named("ablation");
                    StackMr::new(
                        StackMrConfig::default()
                            .with_seed(5)
                            .with_epsilon(eps)
                            .with_job(job.clone()),
                    )
                    .run(&graph, &caps, &FlowContext::new(job))
                })
            },
        );
    }
    group.finish();
}

/// Thread-count ablation of the MapReduce engine, measured on a full
/// GreedyMR run.
fn bench_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_engine_threads");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let (graph, caps) = bench_graph(3_000, 17);
    for &threads in &[1usize, 2, 8] {
        group.bench_with_input(
            BenchmarkId::new("greedymr_threads", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let job = JobConfig::named("ablation").with_threads(t);
                    GreedyMr::new(GreedyMrConfig::default().with_job(job.clone())).run(
                        &graph,
                        &caps,
                        &FlowContext::new(job),
                    )
                })
            },
        );
    }
    group.finish();
}

/// Out-of-core ablation: identical GreedyMR runs with an unlimited,
/// a moderate and a tiny memory budget — the cost of spilling sorted runs
/// to disk and streaming them back through the external merge.
fn bench_memory_budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_memory_budget");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let (graph, caps) = bench_graph(3_000, 19);
    for (name, budget) in [
        ("unlimited", None),
        ("256KiB", Some(256 * 1024u64)),
        ("4KiB", Some(4 * 1024)),
    ] {
        group.bench_function(BenchmarkId::new("greedymr_budget", name), |b| {
            b.iter(|| {
                let job = JobConfig::named("ablation").with_memory_budget(budget);
                GreedyMr::new(GreedyMrConfig::default().with_job(job.clone())).run(
                    &graph,
                    &caps,
                    &FlowContext::new(job),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    ablation_benches,
    bench_marking_strategy,
    bench_epsilon,
    bench_threads,
    bench_memory_budget,
);
criterion_main!(ablation_benches);
