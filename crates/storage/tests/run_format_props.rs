//! Property tests locking the block-framed (version 2) run format to its
//! compatibility contract:
//!
//! - files written by the **legacy version-1** writer read back
//!   byte-identically through the current reader (read compatibility with
//!   existing run files on disk);
//! - files of any *other* version are rejected with a clean
//!   [`StorageError::VersionMismatch`] carrying the version found — never
//!   misparsed as frames or surfaced as a decode panic.  This is also the
//!   forward contract: a version-1 reader's header check (`version != 1`)
//!   rejects version-2 files the same way, because block-framed files
//!   genuinely store `2` in the shared header layout;
//! - appends preserve the file's original version, and read back as the
//!   exact concatenation, whichever version the file started at.

use proptest::prelude::*;
use smr_storage::{RunReader, RunWriter, StorageError, FORMAT_VERSION, LEGACY_FORMAT_VERSION};
use std::path::PathBuf;

fn temp_path(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smr-run-props-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{case}.run"))
}

fn records_from(lens: &[u16]) -> Vec<(u64, String)> {
    lens.iter()
        .enumerate()
        .map(|(i, len)| (i as u64, "x".repeat(*len as usize % 512)))
        .collect()
}

fn write_with(path: &PathBuf, records: &[(u64, String)], version: u16) -> Result<(), StorageError> {
    let mut writer: RunWriter<(u64, String)> = if version == LEGACY_FORMAT_VERSION {
        RunWriter::create_legacy_v1(path)?
    } else {
        RunWriter::create(path)?
    };
    for record in records {
        writer.push(record)?;
    }
    writer.finish()?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn both_format_versions_round_trip_identically(
        case in 0u64..u64::MAX,
        lens in proptest::collection::vec(0u16..1024, 0..120),
    ) {
        let records = records_from(&lens);
        for version in [LEGACY_FORMAT_VERSION, FORMAT_VERSION] {
            let path = temp_path("round-trip", case ^ u64::from(version));
            write_with(&path, &records, version).unwrap();
            let reader: RunReader<(u64, String)> = RunReader::open(&path).unwrap();
            prop_assert_eq!(reader.version(), version);
            prop_assert_eq!(reader.records(), records.len() as u64);
            let read = reader.read_to_end().unwrap();
            prop_assert!(read == records, "version {version} diverged");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn unknown_versions_are_rejected_cleanly(
        case in 0u64..u64::MAX,
        bogus in 0u16..u16::MAX,
        lens in proptest::collection::vec(0u16..64, 1..10),
    ) {
        // Readers must reject any version they do not speak with a typed
        // VersionMismatch naming what they found — the same clean failure
        // a version-1 reader produces when handed a version-2 file.
        let bogus = if bogus == LEGACY_FORMAT_VERSION || bogus == FORMAT_VERSION {
            0xbeef
        } else {
            bogus
        };
        let path = temp_path("version", case);
        write_with(&path, &records_from(&lens), FORMAT_VERSION).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..6].copy_from_slice(&bogus.to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        match RunReader::<(u64, String)>::open(&path) {
            Err(StorageError::VersionMismatch { found, expected }) => {
                prop_assert_eq!(found, bogus);
                prop_assert_eq!(expected, FORMAT_VERSION);
            }
            other => {
                std::fs::remove_file(&path).unwrap();
                return Err(TestCaseError::fail(format!(
                    "expected VersionMismatch, got {other:?}"
                )));
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn appends_preserve_the_version_and_the_records(
        case in 0u64..u64::MAX,
        first in proptest::collection::vec(0u16..256, 0..40),
        second in proptest::collection::vec(0u16..256, 1..40),
    ) {
        let head = records_from(&first);
        let tail = records_from(&second);
        for version in [LEGACY_FORMAT_VERSION, FORMAT_VERSION] {
            let path = temp_path("append", case ^ u64::from(version));
            write_with(&path, &head, version).unwrap();
            let mut appender: RunWriter<(u64, String)> = RunWriter::append_to(&path).unwrap();
            for record in &tail {
                appender.push(record).unwrap();
            }
            appender.finish().unwrap();
            let reader: RunReader<(u64, String)> = RunReader::open(&path).unwrap();
            prop_assert!(
                reader.version() == version,
                "append switched the file's format version: {} != {version}",
                reader.version()
            );
            let mut expected = head.clone();
            expected.extend(tail.iter().cloned());
            prop_assert_eq!(reader.read_to_end().unwrap(), expected);
            std::fs::remove_file(&path).unwrap();
        }
    }
}
