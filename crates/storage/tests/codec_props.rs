//! Property tests for the record codec and the run-file format: arbitrary
//! keys/values round-trip exactly, truncated files are rejected at every
//! cut point, and files stamped with a foreign format version never open.

use proptest::prelude::*;
use smr_storage::{Codec, CodecError, RunReader, RunWriter, StorageError, FORMAT_VERSION};

/// A composite record shaped like real shuffle traffic: a string key plus
/// a structured value with nested variable-size fields.
type Record = (String, (u64, Vec<u32>, Option<i64>));

fn temp_file(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("smr-codec-props-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.run"))
}

/// Strategy for printable-ASCII strings (the shim has no string strategy).
fn string_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(32u8..127, 0..12)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
}

fn record_strategy() -> impl Strategy<Value = Record> {
    (
        string_strategy(),
        (
            any::<u64>(),
            proptest::collection::vec(any::<u32>(), 0..6),
            (0u32..2, any::<u64>())
                .prop_map(|(tag, v)| if tag == 0 { None } else { Some(v as i64) }),
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_records_round_trip_through_the_codec(
        records in proptest::collection::vec(record_strategy(), 0..20),
    ) {
        // Value-level round trip.
        for record in &records {
            let bytes = record.encode_to_vec();
            prop_assert_eq!(&Record::decode_all(&bytes).unwrap(), record);
        }
        // Concatenated stream round trip (records decode back-to-back the
        // way run frames and struct fields embed them).
        let mut stream = Vec::new();
        for record in &records {
            record.encode(&mut stream);
        }
        let mut input = &stream[..];
        for record in &records {
            prop_assert_eq!(&Record::decode(&mut input).unwrap(), record);
        }
        prop_assert!(input.is_empty());
    }

    #[test]
    fn truncated_encodings_never_decode_silently(
        record in record_strategy(),
        cut_fraction in 0u32..1000,
    ) {
        let bytes = record.encode_to_vec();
        if bytes.is_empty() {
            return Ok(());
        }
        let cut = (cut_fraction as usize * bytes.len() / 1000).min(bytes.len() - 1);
        // Decoding a strict prefix must fail: either mid-value EOF, or (if
        // the prefix happens to decode) decode_all flags the missing tail
        // as a short read of the *outer* value. Both are CodecErrors.
        match Record::decode_all(&bytes[..cut]) {
            Err(CodecError::UnexpectedEof { .. }) | Err(CodecError::InvalidData(_)) => {}
            Ok(value) => {
                // A prefix may only decode to the same value if the cut
                // removed zero meaningful bytes — impossible for a strict
                // prefix of a canonical encoding.
                prop_assert!(false, "prefix of len {cut} decoded to {value:?}");
            }
        }
    }

    #[test]
    fn run_files_round_trip_and_reject_truncation(
        records in proptest::collection::vec(record_strategy(), 1..12),
        cut_fraction in 0u32..1000,
    ) {
        let path = temp_file("prop-truncate");
        let mut writer: RunWriter<Record> = RunWriter::create(&path).unwrap();
        for r in &records {
            writer.push(r).unwrap();
        }
        writer.finish().unwrap();

        // Intact file round-trips.
        let reader: RunReader<Record> = RunReader::open(&path).unwrap();
        reader.check_type().unwrap();
        prop_assert_eq!(reader.read_to_end().unwrap(), records.clone());

        // Any strict prefix is rejected somewhere: at open (header cut) or
        // while streaming records (frame cut).
        let bytes = std::fs::read(&path).unwrap();
        let cut = (cut_fraction as usize * bytes.len() / 1000).min(bytes.len() - 1);
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let failed = match RunReader::<Record>::open(&path) {
            Err(_) => true,
            Ok(mut reader) => loop {
                match reader.next_record() {
                    Ok(Some(_)) => {}
                    Ok(None) => break false,
                    Err(_) => break true,
                }
            },
        };
        prop_assert!(failed, "truncation at {cut}/{} went unnoticed", bytes.len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_format_versions_are_rejected(version in 0u32..u16::MAX as u32 + 1) {
        let version = version as u16;
        if version == FORMAT_VERSION {
            return Ok(());
        }
        let path = temp_file("prop-version");
        let mut writer: RunWriter<u64> = RunWriter::create(&path).unwrap();
        writer.push(&42).unwrap();
        writer.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..6].copy_from_slice(&version.to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        match RunReader::<u64>::open(&path) {
            Err(StorageError::VersionMismatch { found, expected }) => {
                prop_assert_eq!(found, version);
                prop_assert_eq!(expected, FORMAT_VERSION);
            }
            other => prop_assert!(false, "expected VersionMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }
}
