//! The spill manager: a memory budget plus a self-cleaning temp directory
//! of sorted run files.
//!
//! One [`SpillManager`] serves one job execution.  It owns
//!
//! * the job's **memory budget** in bytes, divided evenly among the
//!   concurrent worker threads ([`SpillManager::task_budget`]) so the hot
//!   per-record budget check is a plain integer comparison with no shared
//!   state, and the spill schedule is deterministic for a fixed thread
//!   count;
//! * a **spill directory**, created lazily on the first spill and removed
//!   recursively when the manager drops — a job that never spills touches
//!   the file system not at all, and no temp files outlive the job either
//!   way;
//! * the job's spill **accounting** ([`SpillManager::spilled_bytes`],
//!   [`SpillManager::disk_runs`]), which the engine surfaces as the
//!   `spill_bytes` / `disk_runs` metrics.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::codec::Codec;
use crate::run::{CompletedRun, RunWriter, StorageError};

/// Process-wide counter making concurrent managers' directories unique.
static SPILL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Owns a job's memory budget and its directory of spilled runs.
#[derive(Debug)]
pub struct SpillManager {
    base: PathBuf,
    dir: Mutex<Option<PathBuf>>,
    task_budget: u64,
    next_run: AtomicU64,
    spilled_bytes: AtomicU64,
    disk_runs: AtomicU64,
}

impl SpillManager {
    /// Creates a manager for a job with `budget_bytes` of buffer memory
    /// shared by `workers` concurrent worker threads.  Runs spill into a
    /// fresh subdirectory of `base` (the system temp directory when
    /// `None`).
    pub fn new(budget_bytes: u64, workers: usize, base: Option<PathBuf>) -> Self {
        let workers = workers.max(1) as u64;
        SpillManager {
            base: base.unwrap_or_else(std::env::temp_dir),
            dir: Mutex::new(None),
            task_budget: (budget_bytes / workers).max(1),
            next_run: AtomicU64::new(0),
            spilled_bytes: AtomicU64::new(0),
            disk_runs: AtomicU64::new(0),
        }
    }

    /// The per-worker share of the budget, in bytes: a task buffer holding
    /// more than this many (estimated) bytes must spill.
    pub fn task_budget(&self) -> u64 {
        self.task_budget
    }

    /// Writes one sorted run to a fresh file in the spill directory.
    pub fn write_run<R: Codec>(&self, records: &[R]) -> Result<CompletedRun, StorageError> {
        let dir = self.ensure_dir()?;
        let id = self.next_run.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("run-{id:08}.smr"));
        let mut writer: RunWriter<R> = RunWriter::create(&path)?;
        for record in records {
            writer.push(record)?;
        }
        let run = writer.finish()?;
        self.spilled_bytes.fetch_add(run.bytes, Ordering::Relaxed);
        self.disk_runs.fetch_add(1, Ordering::Relaxed);
        Ok(run)
    }

    /// Encoded bytes spilled so far.
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes.load(Ordering::Relaxed)
    }

    /// Run files written so far.
    pub fn disk_runs(&self) -> u64 {
        self.disk_runs.load(Ordering::Relaxed)
    }

    /// The spill directory, if any run has been written yet.
    pub fn dir(&self) -> Option<PathBuf> {
        self.dir.lock().expect("spill dir lock").clone()
    }

    fn ensure_dir(&self) -> Result<PathBuf, StorageError> {
        let mut guard = self.dir.lock().expect("spill dir lock");
        if let Some(dir) = guard.as_ref() {
            return Ok(dir.clone());
        }
        let dir = self.base.join(format!(
            "smr-spill-{}-{}",
            std::process::id(),
            SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        *guard = Some(dir.clone());
        Ok(dir)
    }
}

impl Drop for SpillManager {
    fn drop(&mut self) {
        if let Ok(guard) = self.dir.lock() {
            if let Some(dir) = guard.as_ref() {
                // Best effort: a failed cleanup must not panic a drop.
                let _ = std::fs::remove_dir_all(dir);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::RunReader;

    #[test]
    fn budget_is_divided_among_workers() {
        let m = SpillManager::new(8192, 8, None);
        assert_eq!(m.task_budget(), 1024);
        // Degenerate budgets still yield a positive threshold.
        assert_eq!(SpillManager::new(0, 4, None).task_budget(), 1);
        assert_eq!(SpillManager::new(10, 0, None).task_budget(), 10);
    }

    #[test]
    fn runs_round_trip_and_the_directory_vanishes_on_drop() {
        let manager = SpillManager::new(1024, 1, None);
        assert!(manager.dir().is_none(), "no dir before the first spill");
        let records: Vec<(u64, u64)> = (0..50).map(|i| (i, i * 2)).collect();
        let run = manager.write_run(&records).unwrap();
        let dir = manager.dir().expect("dir created on first spill");
        assert!(dir.exists());
        assert_eq!(manager.disk_runs(), 1);
        assert!(manager.spilled_bytes() > 0);

        let reader: RunReader<(u64, u64)> = RunReader::open(&run.path).unwrap();
        assert_eq!(reader.read_to_end().unwrap(), records);

        drop(manager);
        assert!(!dir.exists(), "spill dir must be removed on drop");
    }

    #[test]
    fn concurrent_managers_use_distinct_directories() {
        let a = SpillManager::new(64, 1, None);
        let b = SpillManager::new(64, 1, None);
        a.write_run(&[1u64]).unwrap();
        b.write_run(&[2u64]).unwrap();
        assert_ne!(a.dir(), b.dir());
    }

    #[test]
    fn explicit_base_directory_is_honoured() {
        let base = std::env::temp_dir().join(format!("smr-spill-base-{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let manager = SpillManager::new(64, 1, Some(base.clone()));
        manager.write_run(&[9u8]).unwrap();
        let dir = manager.dir().unwrap();
        assert_eq!(dir.parent(), Some(base.as_path()));
        drop(manager);
        assert_eq!(
            std::fs::read_dir(&base).unwrap().count(),
            0,
            "base must be empty after drop"
        );
        std::fs::remove_dir_all(&base).unwrap();
    }
}
