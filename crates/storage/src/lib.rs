//! Out-of-core storage for the MapReduce engine.
//!
//! The paper's experiments run at |T|, |C|, |E| scales far beyond what an
//! in-memory shuffle can hold; this crate is the external-memory
//! discipline that makes those tiers reachable:
//!
//! * [`Codec`] — a compact, canonical binary record codec (little-endian,
//!   length-prefixed variable-size fields) with impls for the primitives
//!   and [`impl_codec_struct!`] / [`impl_codec_newtype!`] for user types.
//!   Every key/value type that crosses the engine's shuffle implements it.
//! * [`RunWriter`] / [`RunReader`] — sorted spill-run files: length-
//!   prefixed record frames behind a versioned header that records the
//!   format version, the record count (patched on finish, so half-written
//!   files are rejected) and the record type's name.
//! * [`SpillManager`] — owns a job's memory budget and a self-cleaning
//!   temp directory: map tasks whose combining buffer outgrows their
//!   budget share spill sorted runs through it, and the directory is
//!   removed when the manager drops.
//! * [`DatasetStore`] / [`DiskKvStore`] — file-backed named datasets with
//!   per-dataset type tags, backing the flow layer's `persist`/`load` and
//!   mirroring the in-memory `KvStore` persistence surface.
//! * [`ShardManifest`] — the length-prefixed, checksummed commit record a
//!   sharded worker process leaves beside its run files so the
//!   multi-process runtime (`smr_distrib`) can treat the run format as a
//!   wire format (see `docs/distrib.md`).
//!
//! The crate is deliberately dependency-free (std only) and sits below the
//! engine: `smr_mapreduce` builds its disk-spilling shuffle and file-backed
//! flow persistence on top of these pieces.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod kv;
pub mod manifest;
pub mod run;
pub mod spill;

pub use codec::{Codec, CodecError};
pub use kv::{DatasetStore, DiskKvStore};
pub use manifest::{ManifestRun, ShardManifest, MANIFEST_VERSION};
pub use run::{
    CompletedRun, RetainedRecords, RunReader, RunWriter, StorageError, FORMAT_VERSION,
    LEGACY_FORMAT_VERSION,
};
pub use spill::SpillManager;
