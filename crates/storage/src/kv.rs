//! File-backed named dataset stores.
//!
//! [`DatasetStore`] is the heterogeneous layer: every dataset is one run
//! file (see [`crate::run`]) whose header carries the record type's name,
//! so reading a dataset back at the wrong type is a typed
//! [`StorageError::TypeMismatch`] instead of garbage.  Dataset names map
//! to file names by percent-encoding, so names like `iteration-0/graph`
//! work unchanged.
//!
//! [`DiskKvStore`] is the homogeneous wrapper mirroring the in-memory
//! `KvStore` surface of the engine (write / append / read / exists /
//! remove / len / paths / clear), for callers that persist one record type
//! per store — the HDFS stand-in of iterative algorithms, now surviving on
//! disk.

use std::path::{Path, PathBuf};

use crate::codec::Codec;
use crate::run::{RunReader, RunWriter, StorageError};

/// File extension of stored datasets.
const EXT: &str = "smrkv";

/// Encodes a dataset name into a single safe file stem.
fn encode_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for byte in name.bytes() {
        match byte {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' => {
                out.push(byte as char);
            }
            other => {
                out.push('%');
                out.push_str(&format!("{other:02X}"));
            }
        }
    }
    out
}

/// Decodes a file stem back into the dataset name.
fn decode_name(stem: &str) -> Option<String> {
    let mut out = Vec::with_capacity(stem.len());
    let bytes = stem.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = stem.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// A directory of named, individually typed datasets.
#[derive(Debug, Clone)]
pub struct DatasetStore {
    root: PathBuf,
}

impl DatasetStore {
    /// Opens (creating if needed) the store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StorageError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DatasetStore { root })
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn file_for(&self, name: &str) -> PathBuf {
        self.root.join(format!("{}.{EXT}", encode_name(name)))
    }

    /// Writes (or replaces) the dataset at `name`.
    ///
    /// The replacement is written to a temporary file and renamed over the
    /// target, so a crash or I/O failure mid-write leaves the previous
    /// dataset intact instead of truncated.
    pub fn write<R: Codec>(&self, name: &str, records: &[R]) -> Result<(), StorageError> {
        static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let tmp = self.root.join(format!(
            ".{}.{}-{}.tmp",
            encode_name(name),
            std::process::id(),
            WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let result = (|| {
            let mut writer: RunWriter<R> = RunWriter::create(&tmp)?;
            for record in records {
                writer.push(record)?;
            }
            writer.finish()?;
            std::fs::rename(&tmp, self.file_for(name))?;
            Ok(())
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Appends records to the dataset at `name`, creating it if missing.
    /// The existing records must have been written with the same type.
    ///
    /// Frames are appended to the existing file in place (the record count
    /// is patched last), so the cost is proportional to the *new* records,
    /// not to the dataset.
    pub fn append<R: Codec>(&self, name: &str, records: &[R]) -> Result<(), StorageError> {
        if !self.exists(name) {
            return self.write(name, records);
        }
        // Validates the header and the stored record type before touching
        // the file.
        self.open_reader::<R>(name)?;
        let mut writer: RunWriter<R> = RunWriter::append_to(self.file_for(name))?;
        for record in records {
            writer.push(record)?;
        }
        writer.finish()?;
        Ok(())
    }

    /// Reads the dataset at `name`, verifying the stored type tag.
    pub fn read<R: Codec>(&self, name: &str) -> Result<Vec<R>, StorageError> {
        let reader = self.open_reader::<R>(name)?;
        reader.read_to_end()
    }

    /// Opens a streaming reader over the dataset at `name`, verifying the
    /// stored type tag.
    pub fn open_reader<R: Codec>(&self, name: &str) -> Result<RunReader<R>, StorageError> {
        let path = self.file_for(name);
        if !path.exists() {
            return Err(StorageError::Missing {
                name: name.to_string(),
            });
        }
        let reader: RunReader<R> = RunReader::open(&path)?;
        reader.check_type()?;
        Ok(reader)
    }

    /// Opens the raw file behind the dataset at `name` without reading
    /// anything.  Callers that re-read the same dataset many times can
    /// keep this descriptor open and hand clones of it to
    /// [`RunReader::from_file`], skipping the per-read path lookup.
    pub fn open_file(&self, name: &str) -> Result<std::fs::File, StorageError> {
        let path = self.file_for(name);
        if !path.exists() {
            return Err(StorageError::Missing {
                name: name.to_string(),
            });
        }
        Ok(std::fs::File::open(path)?)
    }

    /// Number of records stored at `name` (read from the header only).
    /// Zero when the dataset is missing.
    pub fn record_count(&self, name: &str) -> u64 {
        let path = self.file_for(name);
        if !path.exists() {
            return 0;
        }
        RunReader::<()>::open(&path)
            .map(|r| r.records())
            .unwrap_or(0)
    }

    /// On-disk size of the dataset at `name` in bytes (header included).
    /// Zero when the dataset is missing.
    pub fn file_size(&self, name: &str) -> u64 {
        std::fs::metadata(self.file_for(name))
            .map(|m| m.len())
            .unwrap_or(0)
    }

    /// Whether a dataset exists at `name`.
    pub fn exists(&self, name: &str) -> bool {
        self.file_for(name).exists()
    }

    /// Removes the dataset at `name`, returning whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        std::fs::remove_file(self.file_for(name)).is_ok()
    }

    /// All dataset names currently stored, sorted.
    pub fn paths(&self) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return Vec::new();
        };
        let mut names: Vec<String> = entries
            .filter_map(|entry| {
                let path = entry.ok()?.path();
                if path.extension().and_then(|e| e.to_str()) != Some(EXT) {
                    return None;
                }
                decode_name(path.file_stem()?.to_str()?)
            })
            .collect();
        names.sort();
        names
    }

    /// Total records across all datasets (headers only).
    pub fn total_records(&self) -> u64 {
        self.paths().iter().map(|n| self.record_count(n)).sum()
    }

    /// Removes every dataset.
    pub fn clear(&self) {
        for name in self.paths() {
            self.remove(&name);
        }
    }
}

/// A disk-backed store of one record type, mirroring the in-memory
/// `KvStore` persistence surface.
///
/// Missing datasets read as empty (like reading an empty directory of part
/// files); corrupt or wrongly typed datasets are surfaced through
/// [`DiskKvStore::try_read`] and panic in the infallible mirror methods,
/// since they indicate a bug or foreign data rather than a normal state.
#[derive(Debug, Clone)]
pub struct DiskKvStore<T> {
    store: DatasetStore,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Codec + Clone> DiskKvStore<T> {
    /// Opens (creating if needed) the store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StorageError> {
        Ok(DiskKvStore {
            store: DatasetStore::open(root)?,
            _marker: std::marker::PhantomData,
        })
    }

    /// Wraps an already opened [`DatasetStore`] as a typed view.  Several
    /// typed views (of different record types) can share one directory:
    /// each dataset file still carries its own type tag, so reading a
    /// dataset another view wrote at a different type stays a typed error.
    pub fn from_store(store: DatasetStore) -> Self {
        DiskKvStore {
            store,
            _marker: std::marker::PhantomData,
        }
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        self.store.root()
    }

    /// Writes (or replaces) the dataset at `path`.
    pub fn write(&self, path: &str, records: Vec<T>) {
        self.store
            .write(path, &records)
            .unwrap_or_else(|e| panic!("DiskKvStore write `{path}`: {e}"));
    }

    /// Appends records to the dataset at `path`, creating it if missing.
    pub fn append(&self, path: &str, records: Vec<T>) {
        self.store
            .append(path, &records)
            .unwrap_or_else(|e| panic!("DiskKvStore append `{path}`: {e}"));
    }

    /// Reads the dataset at `path`; empty when missing.
    pub fn read(&self, path: &str) -> Vec<T> {
        self.try_read(path)
            .unwrap_or_else(|e| panic!("DiskKvStore read `{path}`: {e}"))
    }

    /// Reads the dataset at `path` with typed errors; `Ok(vec![])` when
    /// missing.
    pub fn try_read(&self, path: &str) -> Result<Vec<T>, StorageError> {
        match self.store.read::<T>(path) {
            Ok(records) => Ok(records),
            Err(StorageError::Missing { .. }) => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    /// Whether a dataset exists at `path`.
    pub fn exists(&self, path: &str) -> bool {
        self.store.exists(path)
    }

    /// Removes the dataset at `path`, returning whether it existed.
    pub fn remove(&self, path: &str) -> bool {
        self.store.remove(path)
    }

    /// Number of records stored at `path`.
    pub fn len(&self, path: &str) -> usize {
        self.store.record_count(path) as usize
    }

    /// Whether the dataset at `path` is missing or empty.
    pub fn is_empty(&self, path: &str) -> bool {
        self.len(path) == 0
    }

    /// All dataset paths currently stored, sorted.
    pub fn paths(&self) -> Vec<String> {
        self.store.paths()
    }

    /// Total number of records across all datasets.
    pub fn total_records(&self) -> usize {
        self.store.total_records() as usize
    }

    /// Removes every dataset.
    pub fn clear(&self) {
        self.store.clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> DatasetStore {
        let root =
            std::env::temp_dir().join(format!("smr-dataset-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        DatasetStore::open(root).unwrap()
    }

    #[test]
    fn name_encoding_round_trips_awkward_names() {
        for name in [
            "plain",
            "iteration-0/graph",
            "with space",
            "per%cent",
            "unicode-é",
            "..",
        ] {
            let encoded = encode_name(name);
            assert!(
                encoded
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'%')),
                "{encoded}"
            );
            assert!(!encoded.contains('/'));
            assert_eq!(decode_name(&encoded).as_deref(), Some(name));
        }
    }

    #[test]
    fn write_read_round_trips_with_type_checking() {
        let store = temp_store("rw");
        let records: Vec<(String, u64)> = vec![("a".into(), 1), ("b".into(), 2)];
        store.write("iteration-0/graph", &records).unwrap();
        assert!(store.exists("iteration-0/graph"));
        assert_eq!(store.record_count("iteration-0/graph"), 2);
        assert_eq!(
            store.read::<(String, u64)>("iteration-0/graph").unwrap(),
            records
        );

        // Wrong type: typed error, not an empty vector.
        match store.read::<(u64, u64)>("iteration-0/graph") {
            Err(StorageError::TypeMismatch { stored, requested }) => {
                assert!(stored.contains("String"), "{stored}");
                assert!(requested.contains("u64"), "{requested}");
            }
            other => panic!("expected TypeMismatch, got {other:?}"),
        }
        // Missing path: typed error.
        assert!(matches!(
            store.read::<u64>("nope"),
            Err(StorageError::Missing { .. })
        ));
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn append_is_incremental_type_checked_and_leaves_no_temp_files() {
        let store = temp_store("append");
        store.write("log", &[("a".to_string(), 1u64)]).unwrap();
        store
            .append("log", &[("b".to_string(), 2u64), ("c".to_string(), 3)])
            .unwrap();
        assert_eq!(
            store.read::<(String, u64)>("log").unwrap(),
            vec![
                ("a".to_string(), 1),
                ("b".to_string(), 2),
                ("c".to_string(), 3)
            ]
        );
        assert_eq!(store.record_count("log"), 3);
        // Appending at the wrong type is a typed error, not corruption.
        assert!(matches!(
            store.append::<(u64, u64)>("log", &[(1, 1)]),
            Err(StorageError::TypeMismatch { .. })
        ));
        assert_eq!(store.record_count("log"), 3);
        // Atomic writes go through temp files; none may remain.
        store.write("log", &[("z".to_string(), 9u64)]).unwrap();
        let leftovers = std::fs::read_dir(store.root())
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .and_then(|x| x.to_str())
                    == Some("tmp")
            })
            .count();
        assert_eq!(leftovers, 0);
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn append_truncates_debris_from_a_crashed_append() {
        let store = temp_store("debris");
        store.write("state", &[1u64, 2]).unwrap();
        // Simulate a crash mid-append: partial frame bytes past the
        // committed count.
        let file = store.root().join(format!("{}.{EXT}", encode_name("state")));
        let mut bytes = std::fs::read(&file).unwrap();
        bytes.extend_from_slice(&[7, 0, 0]);
        std::fs::write(&file, bytes).unwrap();
        // The file still reads at its committed count…
        assert_eq!(store.read::<u64>("state").unwrap(), vec![1, 2]);
        // …and the next append clears the debris and lands cleanly.
        store.append("state", &[3u64]).unwrap();
        assert_eq!(store.read::<u64>("state").unwrap(), vec![1, 2, 3]);
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn paths_and_clear_cover_encoded_names() {
        let store = temp_store("paths");
        store.write("b/nested", &[1u8]).unwrap();
        store.write("a", &[2u8, 3]).unwrap();
        assert_eq!(store.paths(), vec!["a".to_string(), "b/nested".to_string()]);
        assert_eq!(store.total_records(), 3);
        assert!(store.remove("a"));
        assert!(!store.remove("a"));
        store.clear();
        assert!(store.paths().is_empty());
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn typed_views_share_one_dataset_store() {
        let store = temp_store("views");
        let numbers: DiskKvStore<u32> = DiskKvStore::from_store(store.clone());
        let words: DiskKvStore<String> = DiskKvStore::from_store(store.clone());
        numbers.write("n", vec![1, 2]);
        words.write("w", vec!["a".to_string()]);
        assert_eq!(numbers.read("n"), vec![1, 2]);
        assert_eq!(words.read("w"), vec!["a".to_string()]);
        // Both datasets live in the same directory…
        assert_eq!(store.paths(), vec!["n".to_string(), "w".to_string()]);
        // …and reading across views is a typed error, not garbage.
        assert!(matches!(
            numbers.try_read("w"),
            Err(StorageError::TypeMismatch { .. })
        ));
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn disk_kv_store_mirrors_the_kv_surface() {
        let root = std::env::temp_dir().join(format!("smr-diskkv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store: DiskKvStore<u32> = DiskKvStore::open(&root).unwrap();
        assert!(store.read("missing").is_empty());
        assert!(store.is_empty("missing"));
        store.write("x", vec![1, 2]);
        store.append("x", vec![3]);
        store.append("fresh", vec![9]);
        assert_eq!(store.read("x"), vec![1, 2, 3]);
        assert_eq!(store.len("x"), 3);
        assert_eq!(store.paths(), vec!["fresh".to_string(), "x".to_string()]);
        assert_eq!(store.total_records(), 4);
        store.write("x", vec![7]);
        assert_eq!(store.read("x"), vec![7], "write replaces");
        assert!(store.remove("fresh"));
        store.clear();
        assert_eq!(store.total_records(), 0);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
