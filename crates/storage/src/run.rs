//! Sorted run files: block-framed record batches behind a versioned
//! header.
//!
//! A *run file* holds a sequence of [`Codec`]-encoded records — in the
//! engine, one sorted run of `(key, value)` pairs spilled by a map task,
//! or one persisted flow dataset.  The current (version 2) on-disk layout
//! batches record frames into blocks:
//!
//! ```text
//! ┌──────────────────────────── header ────────────────────────────┐
//! │ magic "SMRF" │ version u16 │ record count u64 │ type tag string │
//! ├──────────────────────────── blocks ────────────────────────────┤
//! │ block_len u32 │ n_records u32 │ frames (≈64 KiB of them) │ ...  │
//! └────────────────────────────────────────────────────────────────┘
//! ```
//!
//! where each *frame* is `payload_len u32` followed by the [`Codec`]
//! encoding of one record, exactly as in the version-1 layout (which had
//! no block level: frames followed the header directly).  Blocks are the
//! format's hot-path lever: the writer accumulates frames in one reusable
//! buffer and hands the OS ~64 KiB at a time, and the reader slurps a
//! whole block with a single `read_exact` and then decodes straight out
//! of the contiguous buffer — no per-record syscalls, no per-record
//! allocations on either side.
//!
//! All integers are little-endian.  The record count is written as
//! [`COUNT_PENDING`] while the file is open and patched in place by
//! [`RunWriter::finish`], so a crash mid-write leaves a file that
//! [`RunReader`] rejects as truncated instead of silently yielding a
//! prefix.  The type tag records `std::any::type_name` of the record type;
//! readers may check it to reject datasets read back at the wrong type.
//!
//! [`RunReader`] reads both versions; files of any *other* version are
//! rejected with a clean [`StorageError::VersionMismatch`] (a version-1
//! reader rejects version-2 files the same way — the header layout is
//! shared, only the framing after it differs).

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};

use crate::codec::{Codec, CodecError};

/// File magic of every smr_storage file.
pub const MAGIC: [u8; 4] = *b"SMRF";

/// Current format version (block-framed).  Readers accept this and
/// [`LEGACY_FORMAT_VERSION`]; writers produce this unless appending to a
/// legacy file.
pub const FORMAT_VERSION: u16 = 2;

/// The original per-record-frame layout.  Still readable (and appendable)
/// so datasets written by older builds keep working.
pub const LEGACY_FORMAT_VERSION: u16 = 1;

/// Sentinel record count of a file whose writer has not finished.
pub const COUNT_PENDING: u64 = u64::MAX;

/// Byte offset of the record count inside the header (magic + version).
const COUNT_OFFSET: u64 = (MAGIC.len() + std::mem::size_of::<u16>()) as u64;

/// Frame bytes a version-2 writer accumulates before flushing a block.
const BLOCK_TARGET_BYTES: usize = 64 * 1024;

/// An error raised by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O error.
    Io(io::Error),
    /// The file does not start with the smr_storage magic.
    InvalidMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// The file was written by a different format version.
    VersionMismatch {
        /// Version found in the file.
        found: u16,
        /// Version this build reads and writes.
        expected: u16,
    },
    /// The file's type tag does not match the requested record type.
    TypeMismatch {
        /// Type tag stored in the file.
        stored: String,
        /// Type the caller asked to decode.
        requested: String,
    },
    /// The file ended before the declared record count was reached (or the
    /// writer never finished).
    Truncated {
        /// Records the header declared.
        expected: u64,
        /// Records actually decodable.
        found: u64,
    },
    /// A record payload failed to decode.
    Codec(CodecError),
    /// The requested dataset does not exist.
    Missing {
        /// The dataset name or path.
        name: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::InvalidMagic { found } => {
                write!(f, "not an smr_storage file (magic {found:?})")
            }
            StorageError::VersionMismatch { found, expected } => {
                write!(f, "format version {found} (this build reads {expected})")
            }
            StorageError::TypeMismatch { stored, requested } => {
                write!(f, "dataset holds `{stored}`, requested `{requested}`")
            }
            StorageError::Truncated { expected, found } => {
                write!(f, "truncated file: {found} of {expected} records")
            }
            StorageError::Codec(e) => write!(f, "corrupt record: {e}"),
            StorageError::Missing { name } => write!(f, "no dataset at `{name}`"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<CodecError> for StorageError {
    fn from(e: CodecError) -> Self {
        StorageError::Codec(e)
    }
}

/// Writes one run file: header first, then frames batched into blocks.
///
/// Records are encoded directly into the writer's reusable block buffer —
/// no per-record allocation — and the buffer is flushed as one block
/// whenever it passes the ~64 KiB target (and once more on
/// [`RunWriter::finish`] for the partial tail).
///
/// Dropping a writer without calling [`RunWriter::finish`] leaves the
/// record count at [`COUNT_PENDING`], which readers reject — a half-written
/// run can never be mistaken for a complete one.
#[derive(Debug)]
pub struct RunWriter<R> {
    writer: BufWriter<File>,
    path: PathBuf,
    version: u16,
    records: u64,
    bytes: u64,
    /// Frames accumulated for the current block (version 1: at most the
    /// one frame being built, flushed frame by frame without block
    /// headers).
    block: Vec<u8>,
    /// Records in the current block.
    block_records: u32,
    _marker: PhantomData<fn(&R)>,
}

impl<R: Codec> RunWriter<R> {
    /// Creates the file at `path` and writes the header, tagging the file
    /// with the record type's `type_name`.
    pub fn create(path: impl Into<PathBuf>) -> Result<Self, StorageError> {
        Self::create_tagged(path, std::any::type_name::<R>())
    }

    /// Creates the file with an explicit type tag.
    pub fn create_tagged(path: impl Into<PathBuf>, type_tag: &str) -> Result<Self, StorageError> {
        Self::create_versioned(path, type_tag, FORMAT_VERSION)
    }

    /// Test/bench support: creates a writer producing the **version-1**
    /// per-record-frame layout exactly as builds before the block-framed
    /// format wrote it.  The current reader accepts both versions; this
    /// exists so compatibility tests and the perf harness can produce
    /// legacy files on demand.
    #[doc(hidden)]
    pub fn create_legacy_v1(path: impl Into<PathBuf>) -> Result<Self, StorageError> {
        Self::create_versioned(path, std::any::type_name::<R>(), LEGACY_FORMAT_VERSION)
    }

    fn create_versioned(
        path: impl Into<PathBuf>,
        type_tag: &str,
        version: u16,
    ) -> Result<Self, StorageError> {
        let path = path.into();
        let file = File::create(&path)?;
        let mut writer = BufWriter::new(file);
        writer.write_all(&MAGIC)?;
        writer.write_all(&version.to_le_bytes())?;
        writer.write_all(&COUNT_PENDING.to_le_bytes())?;
        let mut tag = Vec::new();
        type_tag.to_string().encode(&mut tag);
        writer.write_all(&tag)?;
        Ok(RunWriter {
            writer,
            path,
            version,
            records: 0,
            bytes: 0,
            block: Vec::new(),
            block_records: 0,
            _marker: PhantomData,
        })
    }

    /// Opens an existing, finished run file to append more frames, without
    /// reading or rewriting the records already there.  The file keeps the
    /// format version it was created with, so appends to legacy files stay
    /// legacy-readable.
    ///
    /// The header is validated first (magic, version, completed count).
    /// The stored record count stays untouched until [`RunWriter::finish`]
    /// patches in the new total — so a crash mid-append leaves the file
    /// readable at its *old* count (any partial trailing block is beyond
    /// the count and ignored), and this method truncates such leftovers
    /// away before appending.
    pub fn append_to(path: impl Into<PathBuf>) -> Result<Self, StorageError> {
        let path = path.into();
        let reader = RunReader::<R>::open(&path)?;
        let existing = reader.records();
        let version = reader.version();
        drop(reader);
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)?;
        // Walk the committed frames (v1) or blocks (v2) to the end of the
        // `existing` records; anything after that is debris from a crashed
        // append.
        let mut pos = {
            file.seek(SeekFrom::Start((MAGIC.len() + 2 + 8) as u64))?;
            let mut tag_len = [0u8; 8];
            file.read_exact(&mut tag_len)?;
            (MAGIC.len() + 2 + 8 + 8) as u64 + u64::from_le_bytes(tag_len)
        };
        if version == LEGACY_FORMAT_VERSION {
            for _ in 0..existing {
                file.seek(SeekFrom::Start(pos))?;
                let mut len = [0u8; 4];
                file.read_exact(&mut len)?;
                pos += 4 + u64::from(u32::from_le_bytes(len));
            }
        } else {
            // `finish` always flushes the partial block, so a committed
            // count lands exactly on a block boundary.
            let mut seen = 0u64;
            while seen < existing {
                file.seek(SeekFrom::Start(pos))?;
                let mut header = [0u8; 8];
                file.read_exact(&mut header)?;
                let block_len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
                let n_records = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
                seen += u64::from(n_records);
                pos += 8 + u64::from(block_len);
            }
            if seen != existing {
                return Err(StorageError::Truncated {
                    expected: existing,
                    found: seen,
                });
            }
        }
        file.set_len(pos)?;
        file.seek(SeekFrom::Start(pos))?;
        Ok(RunWriter {
            writer: BufWriter::new(file),
            path,
            version,
            records: existing,
            bytes: 0,
            block: Vec::new(),
            block_records: 0,
            _marker: PhantomData,
        })
    }

    /// Appends one record frame, encoding straight into the block buffer.
    pub fn push(&mut self, record: &R) -> Result<(), StorageError> {
        let start = self.block.len();
        self.block.reserve(4 + record.encoded_len());
        self.block.extend_from_slice(&[0u8; 4]);
        record.encode(&mut self.block);
        let payload = self.block.len() - start - 4;
        let len = u32::try_from(payload)
            .ok()
            .filter(|len| *len <= u32::MAX - 8)
            .ok_or_else(|| {
                StorageError::Codec(CodecError::InvalidData(format!(
                    "record of {payload} bytes exceeds the 4 GiB frame limit"
                )))
            })?;
        self.block[start..start + 4].copy_from_slice(&len.to_le_bytes());
        self.records += 1;
        self.block_records += 1;
        self.bytes += 4 + u64::from(len);
        if self.version == LEGACY_FORMAT_VERSION || self.block.len() >= BLOCK_TARGET_BYTES {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Writes the accumulated block (with its block header on version 2)
    /// and resets the buffer.
    fn flush_block(&mut self) -> Result<(), StorageError> {
        if self.block_records == 0 {
            return Ok(());
        }
        if self.version != LEGACY_FORMAT_VERSION {
            let block_len = u32::try_from(self.block.len()).map_err(|_| {
                StorageError::Codec(CodecError::InvalidData(format!(
                    "block of {} bytes exceeds the 4 GiB limit",
                    self.block.len()
                )))
            })?;
            self.writer.write_all(&block_len.to_le_bytes())?;
            self.writer.write_all(&self.block_records.to_le_bytes())?;
        }
        self.writer.write_all(&self.block)?;
        self.block.clear();
        self.block_records = 0;
        Ok(())
    }

    /// Number of records pushed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Frame bytes written so far (file header and block headers excluded).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Flushes (including the partial tail block), patches the record
    /// count into the header and returns a handle describing the completed
    /// run.
    pub fn finish(mut self) -> Result<CompletedRun, StorageError> {
        self.flush_block()?;
        self.writer.flush()?;
        let file = self.writer.get_mut();
        file.seek(SeekFrom::Start(COUNT_OFFSET))?;
        file.write_all(&self.records.to_le_bytes())?;
        Ok(CompletedRun {
            path: self.path,
            records: self.records,
            bytes: self.bytes,
        })
    }
}

/// A finished run file: its path plus cheap size accounting.
#[derive(Debug, Clone)]
pub struct CompletedRun {
    /// Where the run lives.
    pub path: PathBuf,
    /// Records in the file (including pre-existing ones after an
    /// [`RunWriter::append_to`]).
    pub records: u64,
    /// Frame bytes written by *this* writer (headers and pre-existing
    /// frames excluded).
    pub bytes: u64,
}

/// Streams the records of a run file back, validating the header up front
/// and the record count at the end.
///
/// Version-2 files are read a block at a time: one `read_exact` fills the
/// reusable block buffer and records decode from the contiguous slice.
/// Version-1 files fall back to the original frame-by-frame path.
#[derive(Debug)]
pub struct RunReader<R> {
    reader: BufReader<File>,
    type_tag: String,
    version: u16,
    expected: u64,
    read: u64,
    /// Bytes of the file left past what has been consumed — bounds every
    /// frame and block before any allocation, so a corrupt length cannot
    /// force a multi-gigabyte `resize`.
    remaining_bytes: u64,
    /// Version 2: the current decoded-from block.  Version 1: the current
    /// record's payload.
    payload: Vec<u8>,
    /// Read position inside `payload` (version 2 only).
    cursor: usize,
    _marker: PhantomData<fn() -> R>,
}

impl<R: Codec> RunReader<R> {
    /// Opens `path`, validating magic, version and writer completion.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        Self::from_file(File::open(path.as_ref())?)
    }

    /// Reads a run from an already-open `file`, validating magic, version
    /// and writer completion.  The handle is rewound first, so a handle
    /// cloned from a previous reader (whose offset it shares) starts at
    /// the header again — this lets callers keep one descriptor open
    /// across repeated re-reads instead of paying a path lookup each time.
    pub fn from_file(mut file: File) -> Result<Self, StorageError> {
        file.seek(SeekFrom::Start(0))?;
        let file_len = file.metadata()?.len();
        let mut reader = BufReader::new(file);
        let mut magic = [0u8; 4];
        read_exact_or_truncated(&mut reader, &mut magic)?;
        if magic != MAGIC {
            return Err(StorageError::InvalidMagic { found: magic });
        }
        let mut version = [0u8; 2];
        read_exact_or_truncated(&mut reader, &mut version)?;
        let version = u16::from_le_bytes(version);
        if version != FORMAT_VERSION && version != LEGACY_FORMAT_VERSION {
            return Err(StorageError::VersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let mut count = [0u8; 8];
        read_exact_or_truncated(&mut reader, &mut count)?;
        let expected = u64::from_le_bytes(count);
        if expected == COUNT_PENDING {
            return Err(StorageError::Truncated {
                expected: COUNT_PENDING,
                found: 0,
            });
        }
        let mut len = [0u8; 8];
        read_exact_or_truncated(&mut reader, &mut len)?;
        let tag_len = usize::try_from(u64::from_le_bytes(len))
            .map_err(|_| StorageError::Codec(CodecError::InvalidData("tag length".into())))?;
        if tag_len > 64 * 1024 {
            return Err(StorageError::Codec(CodecError::InvalidData(format!(
                "type tag of {tag_len} bytes"
            ))));
        }
        let mut tag = vec![0u8; tag_len];
        read_exact_or_truncated(&mut reader, &mut tag)?;
        let type_tag = String::from_utf8(tag)
            .map_err(|e| StorageError::Codec(CodecError::InvalidData(format!("type tag: {e}"))))?;
        let header_len = (MAGIC.len() + 2 + 8 + 8 + tag_len) as u64;
        Ok(RunReader {
            reader,
            type_tag,
            version,
            expected,
            read: 0,
            remaining_bytes: file_len.saturating_sub(header_len),
            payload: Vec::new(),
            cursor: 0,
            _marker: PhantomData,
        })
    }

    /// The type tag the writer stored.
    pub fn type_tag(&self) -> &str {
        &self.type_tag
    }

    /// The format version the file was written with.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Errors unless the stored type tag equals the record type's
    /// `type_name`.
    pub fn check_type(&self) -> Result<(), StorageError> {
        let requested = std::any::type_name::<R>();
        if self.type_tag != requested {
            return Err(StorageError::TypeMismatch {
                stored: self.type_tag.clone(),
                requested: requested.to_string(),
            });
        }
        Ok(())
    }

    /// Records the header declares.
    pub fn records(&self) -> u64 {
        self.expected
    }

    /// Reads the next record; `Ok(None)` at a clean end of file.
    pub fn next_record(&mut self) -> Result<Option<R>, StorageError> {
        if self.read == self.expected {
            return Ok(None);
        }
        if self.version == LEGACY_FORMAT_VERSION {
            return self.next_record_v1();
        }
        if self.cursor == self.payload.len() {
            self.load_block()?;
        }
        if self.payload.len() - self.cursor < 4 {
            return Err(self.truncated());
        }
        let len = u32::from_le_bytes(
            self.payload[self.cursor..self.cursor + 4]
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        self.cursor += 4;
        if self.payload.len() - self.cursor < len {
            return Err(self.truncated());
        }
        let mut slice = &self.payload[self.cursor..self.cursor + len];
        let record = R::decode(&mut slice)?;
        if !slice.is_empty() {
            return Err(StorageError::Codec(CodecError::InvalidData(format!(
                "{} trailing bytes in frame",
                slice.len()
            ))));
        }
        self.cursor += len;
        self.read += 1;
        Ok(Some(record))
    }

    /// Pulls the next block into the reusable buffer with one `read_exact`.
    fn load_block(&mut self) -> Result<(), StorageError> {
        let mut header = [0u8; 8];
        self.read_frame_bytes(&mut header)?;
        let block_len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as u64;
        // A block cannot be empty (the writer never flushes one) nor
        // longer than what is left of the file: reject corrupt lengths
        // *before* allocating the block buffer.
        if block_len == 0 || block_len + 8 > self.remaining_bytes {
            return Err(self.truncated());
        }
        self.remaining_bytes -= block_len + 8;
        self.payload.resize(block_len as usize, 0);
        let mut payload = std::mem::take(&mut self.payload);
        let result = self.read_frame_bytes(&mut payload);
        self.payload = payload;
        result?;
        self.cursor = 0;
        Ok(())
    }

    /// The original version-1 path: one length read and one payload read
    /// per record.
    fn next_record_v1(&mut self) -> Result<Option<R>, StorageError> {
        let mut len = [0u8; 4];
        self.read_frame_bytes(&mut len)?;
        let len = u32::from_le_bytes(len) as usize;
        // A frame cannot be longer than what is left of the file: reject
        // corrupt lengths *before* allocating the payload buffer.
        if (len as u64) + 4 > self.remaining_bytes {
            return Err(self.truncated());
        }
        self.remaining_bytes -= len as u64 + 4;
        self.payload.resize(len, 0);
        let mut payload = std::mem::take(&mut self.payload);
        let result = self.read_frame_bytes(&mut payload);
        self.payload = payload;
        result?;
        let mut slice = &self.payload[..];
        let record = R::decode(&mut slice)?;
        if !slice.is_empty() {
            return Err(StorageError::Codec(CodecError::InvalidData(format!(
                "{} trailing bytes in frame",
                slice.len()
            ))));
        }
        self.read += 1;
        Ok(Some(record))
    }

    /// Wraps the reader in a retirement-aware view: records the `live`
    /// predicate rejects are skipped (and counted) instead of yielded.
    ///
    /// This is how iterative consumers drop retired records without
    /// rewriting the run: the file keeps every record the producing round
    /// emitted, and retirement is applied while streaming it back.
    pub fn retained<F: FnMut(&R) -> bool>(self, live: F) -> RetainedRecords<R, F> {
        RetainedRecords {
            reader: self,
            live,
            skipped: 0,
        }
    }

    /// Reads the remaining records into a vector.
    pub fn read_to_end(mut self) -> Result<Vec<R>, StorageError> {
        let remaining = usize::try_from(self.expected - self.read).unwrap_or(usize::MAX);
        let cap = read_reserve_cap(remaining, self.remaining_bytes, std::mem::size_of::<R>());
        let mut records = Vec::with_capacity(cap);
        while let Some(record) = self.next_record()? {
            records.push(record);
        }
        Ok(records)
    }

    fn truncated(&self) -> StorageError {
        StorageError::Truncated {
            expected: self.expected,
            found: self.read,
        }
    }

    fn read_frame_bytes(&mut self, buf: &mut [u8]) -> Result<(), StorageError> {
        let (expected, read) = (self.expected, self.read);
        self.reader.read_exact(buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                StorageError::Truncated {
                    expected,
                    found: read,
                }
            } else {
                StorageError::Io(e)
            }
        })
    }
}

/// How many records [`RunReader::read_to_end`] pre-reserves: bounded by
/// the declared remainder, by what the bytes left on disk could possibly
/// frame (≥ 4 bytes per record), and by a flat byte budget on the
/// *in-memory* size — so a header declaring millions of records, or a
/// wide record type, never over-reserves.  The vector still grows to the
/// true size on demand; only the up-front reservation is capped.
fn read_reserve_cap(remaining_records: usize, remaining_bytes: u64, elem_size: usize) -> usize {
    /// Up-front reservation budget, in in-memory bytes.
    const RESERVE_BYTE_BUDGET: usize = 16 << 20;
    let disk_bound = usize::try_from(remaining_bytes / 4).unwrap_or(usize::MAX);
    let budget_bound = (RESERVE_BYTE_BUDGET / elem_size.max(1)).max(1);
    remaining_records.min(disk_bound).min(budget_bound)
}

impl<R: Codec> Iterator for RunReader<R> {
    type Item = Result<R, StorageError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = usize::try_from(self.expected.saturating_sub(self.read)).unwrap_or(0);
        (remaining, Some(remaining))
    }
}

/// A streaming, retirement-aware view over a run file: records rejected by
/// the `live` predicate are decoded (the frame must still be consumed) but
/// never yielded.  Built by [`RunReader::retained`].
#[derive(Debug)]
pub struct RetainedRecords<R, F> {
    reader: RunReader<R>,
    live: F,
    skipped: u64,
}

impl<R: Codec, F: FnMut(&R) -> bool> RetainedRecords<R, F> {
    /// Records skipped as retired so far.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Reads the next live record; `Ok(None)` at a clean end of file.
    pub fn next_record(&mut self) -> Result<Option<R>, StorageError> {
        while let Some(record) = self.reader.next_record()? {
            if (self.live)(&record) {
                return Ok(Some(record));
            }
            self.skipped += 1;
        }
        Ok(None)
    }
}

impl<R: Codec, F: FnMut(&R) -> bool> Iterator for RetainedRecords<R, F> {
    type Item = Result<R, StorageError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Every remaining record may yet be retired: only the upper bound
        // of the underlying reader survives.
        (0, self.reader.size_hint().1)
    }
}

fn read_exact_or_truncated(reader: &mut impl Read, buf: &mut [u8]) -> Result<(), StorageError> {
    reader.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StorageError::Truncated {
                expected: 0,
                found: 0,
            }
        } else {
            StorageError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("smr-run-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_then_read_round_trips() {
        let path = temp_path("round-trip.run");
        let records: Vec<(u32, String)> = (0..100).map(|i| (i, format!("value-{i}"))).collect();
        let mut writer: RunWriter<(u32, String)> = RunWriter::create(&path).unwrap();
        for r in &records {
            writer.push(r).unwrap();
        }
        let run = writer.finish().unwrap();
        assert_eq!(run.records, 100);
        assert!(run.bytes > 0);

        let reader: RunReader<(u32, String)> = RunReader::open(&path).unwrap();
        reader.check_type().unwrap();
        assert_eq!(reader.records(), 100);
        assert_eq!(reader.version(), FORMAT_VERSION);
        assert_eq!(reader.read_to_end().unwrap(), records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn multi_block_runs_round_trip() {
        let path = temp_path("multi-block.run");
        // Each record is ~1 KiB, so 256 of them span several 64 KiB blocks.
        let records: Vec<(u64, String)> = (0..256).map(|i| (i, "x".repeat(1000))).collect();
        let mut writer: RunWriter<(u64, String)> = RunWriter::create(&path).unwrap();
        for r in &records {
            writer.push(r).unwrap();
        }
        writer.finish().unwrap();
        let reader: RunReader<(u64, String)> = RunReader::open(&path).unwrap();
        assert_eq!(reader.read_to_end().unwrap(), records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn legacy_v1_files_read_back_through_the_current_reader() {
        let path = temp_path("legacy-v1.run");
        let records: Vec<(u32, String)> = (0..50).map(|i| (i, format!("v{i}"))).collect();
        let mut writer: RunWriter<(u32, String)> = RunWriter::create_legacy_v1(&path).unwrap();
        for r in &records {
            writer.push(r).unwrap();
        }
        let run = writer.finish().unwrap();
        assert_eq!(run.records, 50);
        let reader: RunReader<(u32, String)> = RunReader::open(&path).unwrap();
        assert_eq!(reader.version(), LEGACY_FORMAT_VERSION);
        assert_eq!(reader.read_to_end().unwrap(), records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn appends_to_legacy_files_stay_in_the_legacy_format() {
        let path = temp_path("legacy-append.run");
        let mut writer: RunWriter<u64> = RunWriter::create_legacy_v1(&path).unwrap();
        writer.push(&1).unwrap();
        writer.finish().unwrap();
        let mut appender: RunWriter<u64> = RunWriter::append_to(&path).unwrap();
        appender.push(&2).unwrap();
        appender.finish().unwrap();
        let reader: RunReader<u64> = RunReader::open(&path).unwrap();
        assert_eq!(reader.version(), LEGACY_FORMAT_VERSION);
        assert_eq!(reader.read_to_end().unwrap(), vec![1, 2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_truncates_crash_debris_behind_the_committed_count() {
        let path = temp_path("append-debris.run");
        let mut writer: RunWriter<u64> = RunWriter::create(&path).unwrap();
        for i in 0..10u64 {
            writer.push(&i).unwrap();
        }
        writer.finish().unwrap();
        // Simulate a crashed append: whole extra blocks and a partial
        // trailing one, none of them reflected in the committed count.
        let clean_len = std::fs::metadata(&path).unwrap().len();
        {
            use std::io::Write as _;
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            file.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01]).unwrap();
        }
        let mut appender: RunWriter<u64> = RunWriter::append_to(&path).unwrap();
        appender.push(&99).unwrap();
        let run = appender.finish().unwrap();
        assert_eq!(run.records, 11);
        assert!(std::fs::metadata(&path).unwrap().len() > clean_len);
        let reader: RunReader<u64> = RunReader::open(&path).unwrap();
        let mut expected: Vec<u64> = (0..10).collect();
        expected.push(99);
        assert_eq!(reader.read_to_end().unwrap(), expected);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn retained_skips_retired_records_and_counts_them() {
        let path = temp_path("retained.run");
        let mut writer: RunWriter<(u32, String)> = RunWriter::create(&path).unwrap();
        for i in 0..20u32 {
            writer.push(&(i, format!("v{i}"))).unwrap();
        }
        writer.finish().unwrap();

        let reader: RunReader<(u32, String)> = RunReader::open(&path).unwrap();
        let mut retained = reader.retained(|(k, _)| k % 3 != 0);
        let live: Vec<(u32, String)> = retained.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(
            live.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            (0..20u32).filter(|k| k % 3 != 0).collect::<Vec<_>>(),
            "live records keep the file order"
        );
        assert_eq!(retained.skipped(), 7, "0, 3, …, 18 are retired");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn retained_with_an_all_dead_predicate_is_empty_but_clean() {
        let path = temp_path("retained-empty.run");
        let mut writer: RunWriter<u64> = RunWriter::create(&path).unwrap();
        for i in 0..5u64 {
            writer.push(&i).unwrap();
        }
        writer.finish().unwrap();

        let reader: RunReader<u64> = RunReader::open(&path).unwrap();
        let mut retained = reader.retained(|_| false);
        assert!(retained.next_record().unwrap().is_none());
        assert_eq!(retained.skipped(), 5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_run_round_trips() {
        let path = temp_path("empty.run");
        let writer: RunWriter<u64> = RunWriter::create(&path).unwrap();
        writer.finish().unwrap();
        let reader: RunReader<u64> = RunReader::open(&path).unwrap();
        assert!(reader.read_to_end().unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unfinished_writer_leaves_a_rejected_file() {
        let path = temp_path("unfinished.run");
        {
            let mut writer: RunWriter<u64> = RunWriter::create(&path).unwrap();
            writer.push(&7).unwrap();
            // Dropped without finish(): count stays COUNT_PENDING.
        }
        match RunReader::<u64>::open(&path) {
            Err(StorageError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let path = temp_path("version.run");
        let mut writer: RunWriter<u64> = RunWriter::create(&path).unwrap();
        writer.push(&1).unwrap();
        writer.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = 0xfe;
        bytes[5] = 0xca;
        std::fs::write(&path, bytes).unwrap();
        match RunReader::<u64>::open(&path) {
            Err(StorageError::VersionMismatch { found, expected }) => {
                assert_eq!(found, 0xcafe);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn current_files_carry_a_version_older_readers_reject() {
        // The version-1 reader's header check was `version != 1` →
        // VersionMismatch.  A block-framed file must therefore store a
        // version field those builds reject cleanly, rather than a layout
        // they would misparse as frames.
        let path = temp_path("forward-version.run");
        let mut writer: RunWriter<u64> = RunWriter::create(&path).unwrap();
        writer.push(&1).unwrap();
        writer.finish().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let stored = u16::from_le_bytes([bytes[4], bytes[5]]);
        assert_eq!(stored, FORMAT_VERSION);
        assert_ne!(stored, LEGACY_FORMAT_VERSION);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = temp_path("magic.run");
        std::fs::write(&path, b"NOPE....").unwrap();
        assert!(matches!(
            RunReader::<u64>::open(&path),
            Err(StorageError::InvalidMagic { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn type_check_rejects_the_wrong_record_type() {
        let path = temp_path("type.run");
        let mut writer: RunWriter<u64> = RunWriter::create(&path).unwrap();
        writer.push(&1).unwrap();
        writer.finish().unwrap();
        let reader: RunReader<(u32, u32)> = RunReader::open(&path).unwrap();
        assert!(matches!(
            reader.check_type(),
            Err(StorageError::TypeMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_block_length_is_rejected_before_allocating() {
        let path = temp_path("corrupt-len.run");
        let mut writer: RunWriter<String> = RunWriter::create(&path).unwrap();
        writer.push(&"payload".to_string()).unwrap();
        writer.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // The first block's length prefix sits right after the header.
        let block_len_at = 4 + 2 + 8 + 8 + std::any::type_name::<String>().len();
        bytes[block_len_at..block_len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        let mut reader: RunReader<String> = RunReader::open(&path).unwrap();
        // Must fail with a typed error (never attempt a ~4 GiB resize).
        assert!(matches!(
            reader.next_record(),
            Err(StorageError::Truncated { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_v1_frame_length_is_rejected_before_allocating() {
        let path = temp_path("corrupt-len-v1.run");
        let mut writer: RunWriter<String> = RunWriter::create_legacy_v1(&path).unwrap();
        writer.push(&"payload".to_string()).unwrap();
        writer.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let frame_len_at = 4 + 2 + 8 + 8 + std::any::type_name::<String>().len();
        bytes[frame_len_at..frame_len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        let mut reader: RunReader<String> = RunReader::open(&path).unwrap();
        assert!(matches!(
            reader.next_record(),
            Err(StorageError::Truncated { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let path = temp_path("truncated.run");
        let mut writer: RunWriter<String> = RunWriter::create(&path).unwrap();
        writer.push(&"first".to_string()).unwrap();
        writer.push(&"second".to_string()).unwrap();
        writer.finish().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut the file anywhere inside the block section: the reader must
        // error (never silently yield a prefix).
        let frames_start = 4 + 2 + 8 + 8 + std::any::type_name::<String>().len();
        for cut in frames_start..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let mut reader: RunReader<String> = RunReader::open(&path).unwrap();
            let mut failed = false;
            loop {
                match reader.next_record() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            assert!(failed, "cut at {cut} silently succeeded");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_to_end_reservation_is_byte_budgeted() {
        // The declared remainder no longer bounds the reservation alone:
        // wide records clamp to the in-memory byte budget, and a lying
        // header clamps to what the file's bytes could possibly frame.
        let cap = read_reserve_cap(usize::MAX, 40, 8);
        assert_eq!(cap, 10, "a 40-byte file frames at most 10 records");
        let wide = read_reserve_cap(1 << 30, u64::MAX, 1 << 16);
        assert_eq!(
            wide,
            (16 << 20) / (1 << 16),
            "wide records hit the byte budget"
        );
        assert_eq!(
            read_reserve_cap(3, u64::MAX, 8),
            3,
            "small reads reserve exactly"
        );
        assert!(
            read_reserve_cap(10, u64::MAX, usize::MAX) >= 1,
            "degenerate sizes still reserve"
        );
    }
}
