//! The shard manifest: how a worker process publishes its map output to
//! the coordinator.
//!
//! In the sharded multi-process runtime (`smr_distrib`, see
//! `docs/distrib.md`) a worker runs the map + combine + spill path over
//! its slice of a job's map tasks and leaves the per-partition sorted
//! runs behind as ordinary run files.  The [`ShardManifest`] is the
//! *commit record* for that work: one small file naming every run the
//! worker produced (`(partition, task, seq)` → file, so the coordinator
//! can merge them in exactly the order the in-process engine would),
//! carrying the worker's counter deltas, and identifying the job the
//! worker believes it executed so the coordinator can detect lockstep
//! divergence.
//!
//! The encoding is deliberately defensive — the coordinator reads
//! manifests written by processes that may have been killed mid-write:
//!
//! ```text
//! "SMRM" | version u16 | payload_len u64 | payload | fnv1a64(payload)
//! ```
//!
//! * a **length prefix** so a short file is rejected as truncated before
//!   any payload decoding,
//! * a trailing **FNV-1a checksum** over the payload so a torn or
//!   corrupted write is rejected rather than half-decoded,
//! * a **format version** so a manifest written by a different build is
//!   rejected as [`StorageError::VersionMismatch`] (the shard is then
//!   simply re-executed).
//!
//! Everything is little-endian, like the run-file format.

use std::path::Path;

use crate::codec::Codec;
use crate::impl_codec_struct;
use crate::run::StorageError;

/// Magic bytes identifying a shard manifest.
pub const MANIFEST_MAGIC: [u8; 4] = *b"SMRM";

/// Version of the manifest format this build reads and writes.
pub const MANIFEST_VERSION: u16 = 1;

/// Manifests cannot plausibly exceed this size; a larger length prefix is
/// treated as corruption instead of allocating it.
const MAX_PAYLOAD: u64 = 64 * 1024 * 1024;

/// One sorted run the worker produced: which reduce `partition` it belongs
/// to, which map `task` emitted it, and its spill sequence number (`seq`,
/// `u64::MAX` for the task's final in-memory run, matching the engine's
/// `(task, seq)` merge ordering).  `file` is the run file's name inside
/// the worker's attempt directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestRun {
    /// Reduce partition the run belongs to.
    pub partition: u64,
    /// Map task that emitted the run.
    pub task: u64,
    /// Spill sequence within the task; `u64::MAX` = final in-memory run.
    pub seq: u64,
    /// Run file name, relative to the manifest's directory.
    pub file: String,
    /// Records in the run (the run header agrees; duplicated here so the
    /// coordinator can size its merge without opening every file).
    pub records: u64,
    /// Encoded bytes of the run file.
    pub bytes: u64,
}

impl_codec_struct!(ManifestRun {
    partition,
    task,
    seq,
    file,
    records,
    bytes
});

/// The commit record one worker writes after finishing its map slice of
/// one sharded job.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardManifest {
    /// Name of the job the worker executed (lockstep cross-check).
    pub job_name: String,
    /// Sequence number of the job within the sharded session.
    pub job_seq: u64,
    /// The shard this worker owns.
    pub shard: u64,
    /// Total shards in the session.
    pub num_shards: u64,
    /// The worker's spawn attempt (1 = first launch).
    pub attempt: u64,
    /// Input records of the whole job (lockstep cross-check).
    pub input_records: u64,
    /// Map tasks the whole job was split into (lockstep cross-check; the
    /// shard executed only its contiguous slice of them).
    pub num_map_tasks: u64,
    /// Every run the shard produced.
    pub runs: Vec<ManifestRun>,
    /// Counter deltas accumulated during the shard's map phase (built-in
    /// and user counters), to be merged into the coordinator's counter
    /// set.
    pub counters: Vec<(String, u64)>,
    /// Wall-clock microseconds the shard's map phase took.
    pub map_micros: u64,
}

impl_codec_struct!(ShardManifest {
    job_name,
    job_seq,
    shard,
    num_shards,
    attempt,
    input_records,
    num_map_tasks,
    runs,
    counters,
    map_micros
});

/// 64-bit FNV-1a over `bytes` — a dependency-free integrity check, plenty
/// for detecting torn or half-written manifests (crash-consistency, not
/// an adversarial setting).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl ShardManifest {
    /// Serializes the manifest: magic, version, length-prefixed payload,
    /// trailing checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = self.encode_to_vec();
        let mut out = Vec::with_capacity(payload.len() + 22);
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out
    }

    /// Decodes a manifest, rejecting bad magic, foreign versions,
    /// truncation and checksum mismatches.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StorageError> {
        let header = 4 + 2 + 8;
        if bytes.len() < header {
            return Err(StorageError::Truncated {
                expected: header as u64,
                found: bytes.len() as u64,
            });
        }
        if bytes[0..4] != MANIFEST_MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(&bytes[0..4]);
            return Err(StorageError::InvalidMagic { found });
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != MANIFEST_VERSION {
            return Err(StorageError::VersionMismatch {
                found: version,
                expected: MANIFEST_VERSION,
            });
        }
        let mut len = [0u8; 8];
        len.copy_from_slice(&bytes[6..14]);
        let payload_len = u64::from_le_bytes(len);
        if payload_len > MAX_PAYLOAD {
            return Err(StorageError::Codec(crate::codec::CodecError::InvalidData(
                format!("manifest payload of {payload_len} bytes"),
            )));
        }
        let expected_total = header as u64 + payload_len + 8;
        if (bytes.len() as u64) < expected_total {
            return Err(StorageError::Truncated {
                expected: expected_total,
                found: bytes.len() as u64,
            });
        }
        let payload = &bytes[header..header + payload_len as usize];
        let mut sum = [0u8; 8];
        sum.copy_from_slice(&bytes[header + payload_len as usize..expected_total as usize]);
        if u64::from_le_bytes(sum) != fnv1a64(payload) {
            return Err(StorageError::Codec(crate::codec::CodecError::InvalidData(
                "manifest checksum mismatch".to_string(),
            )));
        }
        Ok(ShardManifest::decode_all(payload)?)
    }

    /// Writes the manifest to `path` atomically: the bytes go to a
    /// temporary sibling first and are renamed into place, so a reader
    /// polling for `path` either sees nothing or a complete file (the
    /// checksum still guards against a writer that skips this protocol —
    /// the fault-injection path does exactly that).
    pub fn write_to(&self, path: &Path) -> Result<(), StorageError> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and validates a manifest from `path`.
    pub fn read_from(path: &Path) -> Result<Self, StorageError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardManifest {
        ShardManifest {
            job_name: "probe".to_string(),
            job_seq: 3,
            shard: 1,
            num_shards: 4,
            attempt: 2,
            input_records: 1000,
            num_map_tasks: 8,
            runs: vec![
                ManifestRun {
                    partition: 0,
                    task: 2,
                    seq: 0,
                    file: "p00000-t000002-s0.run".to_string(),
                    records: 40,
                    bytes: 512,
                },
                ManifestRun {
                    partition: 1,
                    task: 3,
                    seq: u64::MAX,
                    file: "p00001-t000003-final.run".to_string(),
                    records: 7,
                    bytes: 99,
                },
            ],
            counters: vec![
                ("map_output_records".to_string(), 47),
                ("candidates_pruned".to_string(), 3),
            ],
            map_micros: 1234,
        }
    }

    #[test]
    fn round_trips_through_bytes_and_disk() {
        let m = sample();
        assert_eq!(ShardManifest::from_bytes(&m.to_bytes()).unwrap(), m);

        let dir = std::env::temp_dir().join(format!("smr-manifest-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("MANIFEST");
        m.write_to(&path).unwrap();
        assert_eq!(ShardManifest::read_from(&path).unwrap(), m);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_at_every_cut_is_rejected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = ShardManifest::from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn corruption_anywhere_is_rejected() {
        let bytes = sample().to_bytes();
        // Flip one bit at every byte offset: magic, version, length,
        // payload and checksum corruption must all surface as errors.
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                ShardManifest::from_bytes(&corrupt).is_err(),
                "bit flip at offset {i} must not decode"
            );
        }
    }

    #[test]
    fn foreign_version_is_rejected_as_version_mismatch() {
        let mut bytes = sample().to_bytes();
        bytes[4] = 0xEE;
        match ShardManifest::from_bytes(&bytes) {
            Err(StorageError::VersionMismatch { found, expected }) => {
                assert_eq!(found, 0x00EE);
                assert_eq!(expected, MANIFEST_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_beyond_the_checksum_is_tolerated() {
        // The length prefix bounds the payload; extra bytes after the
        // checksum (e.g. from a recycled buffer) must not break decoding.
        let mut bytes = sample().to_bytes();
        bytes.extend_from_slice(b"junk");
        assert_eq!(ShardManifest::from_bytes(&bytes).unwrap(), sample());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
