//! The compact binary record codec.
//!
//! Every type that crosses the engine's shuffle — and therefore may be
//! spilled to disk when a job runs under a memory budget — implements
//! [`Codec`]: a deterministic little-endian binary encoding with
//! length-prefixed variable-size fields.  The encoding is self-contained
//! (no schema is needed to decode beyond the Rust type itself) and
//! *canonical*: encoding a value always produces the same bytes, which the
//! byte-identity guarantees of the spill path rely on.
//!
//! Implementations are provided for the primitive types, `String`,
//! `Vec<T>`, `Option<T>`, and tuples up to arity four.  User-defined
//! structs get an implementation via [`crate::impl_codec_struct!`] /
//! [`crate::impl_codec_newtype!`]; enums are implemented by hand with a
//! leading tag byte (see `NodeId` in `smr_graph` for the idiom).
//!
//! Floating-point values are encoded by bit pattern, so round-tripping is
//! exact for every value including NaNs and signed zeros.

use std::fmt;

/// An error produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was fully decoded.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// The bytes are not a valid encoding of the requested type.
    InvalidData(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} bytes, {remaining} remaining"
            ),
            CodecError::InvalidData(message) => write!(f, "invalid data: {message}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Reads exactly `n` bytes from the front of `input`, advancing it.
fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], CodecError> {
    if input.len() < n {
        return Err(CodecError::UnexpectedEof {
            needed: n,
            remaining: input.len(),
        });
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

/// A type with a canonical binary encoding.
///
/// `decode` is the exact inverse of `encode`: decoding the encoded bytes
/// yields a value equal to the original and consumes exactly the bytes
/// `encode` produced.
pub trait Codec: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes a value from the front of `input`, advancing it past the
    /// consumed bytes.
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError>;

    /// Convenience: encodes into a fresh vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Convenience: decodes a value that must consume the whole input.
    fn decode_all(mut input: &[u8]) -> Result<Self, CodecError> {
        let value = Self::decode(&mut input)?;
        if !input.is_empty() {
            return Err(CodecError::InvalidData(format!(
                "{} trailing bytes after value",
                input.len()
            )));
        }
        Ok(value)
    }
}

macro_rules! impl_codec_int {
    ($($ty:ty),+) => {$(
        impl Codec for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
                let bytes = take(input, std::mem::size_of::<$ty>())?;
                Ok(<$ty>::from_le_bytes(bytes.try_into().expect("sized slice")))
            }
        }
    )+};
}

impl_codec_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl Codec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let v = u64::decode(input)?;
        usize::try_from(v).map_err(|_| CodecError::InvalidData(format!("usize out of range: {v}")))
    }
}

impl Codec for isize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as i64).encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let v = i64::decode(input)?;
        isize::try_from(v).map_err(|_| CodecError::InvalidData(format!("isize out of range: {v}")))
    }
}

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(input)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::InvalidData(format!(
                "invalid bool byte {other}"
            ))),
        }
    }
}

impl Codec for f32 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(f32::from_bits(u32::decode(input)?))
    }
}

impl Codec for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(f64::from_bits(u64::decode(input)?))
    }
}

impl Codec for char {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u32).encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let v = u32::decode(input)?;
        char::from_u32(v).ok_or_else(|| CodecError::InvalidData(format!("invalid char {v:#x}")))
    }
}

impl Codec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(())
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = usize::decode(input)?;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CodecError::InvalidData(format!("invalid utf-8 string: {e}")))
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = usize::decode(input)?;
        // Guard against a corrupt length forcing a huge allocation: never
        // pre-reserve more elements than the remaining bytes could encode
        // (every element costs at least one byte unless T is zero-sized).
        let cap = len.min(input.len().max(1));
        let mut items = Vec::with_capacity(cap);
        for _ in 0..len {
            items.push(T::decode(input)?);
        }
        Ok(items)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(value) => {
                out.push(1);
                value.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            other => Err(CodecError::InvalidData(format!(
                "invalid Option tag {other}"
            ))),
        }
    }
}

macro_rules! impl_codec_tuple {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Codec),+> Codec for ($($name,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.encode(out);)+
            }
            fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
                Ok(($($name::decode(input)?,)+))
            }
        }
    )+};
}

impl_codec_tuple!((A), (A, B), (A, B, C), (A, B, C, D));

/// Implements [`Codec`] for a struct by encoding its named fields in the
/// order given.
///
/// ```
/// use smr_storage::{impl_codec_struct, Codec};
///
/// #[derive(Debug, Clone, PartialEq)]
/// struct Edge { from: u32, to: u32, weight: f64 }
/// impl_codec_struct!(Edge { from, to, weight });
///
/// let e = Edge { from: 1, to: 2, weight: 0.5 };
/// assert_eq!(Edge::decode_all(&e.encode_to_vec()).unwrap(), e);
/// ```
#[macro_export]
macro_rules! impl_codec_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Codec for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                $($crate::Codec::encode(&self.$field, out);)+
            }
            fn decode(input: &mut &[u8]) -> Result<Self, $crate::CodecError> {
                Ok($ty { $($field: $crate::Codec::decode(input)?,)+ })
            }
        }
    };
}

/// Implements [`Codec`] for a single-field tuple struct (newtype).
///
/// ```
/// use smr_storage::{impl_codec_newtype, Codec};
///
/// #[derive(Debug, Clone, PartialEq)]
/// struct TermId(u32);
/// impl_codec_newtype!(TermId(u32));
///
/// assert_eq!(TermId::decode_all(&TermId(7).encode_to_vec()).unwrap(), TermId(7));
/// ```
#[macro_export]
macro_rules! impl_codec_newtype {
    ($ty:ident($inner:ty)) => {
        impl $crate::Codec for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                $crate::Codec::encode(&self.0, out);
            }
            fn decode(input: &mut &[u8]) -> Result<Self, $crate::CodecError> {
                Ok($ty(<$inner as $crate::Codec>::decode(input)?))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.encode_to_vec();
        assert_eq!(T::decode_all(&bytes).unwrap(), value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u64::MAX);
        round_trip(-17i64);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(f64::NEG_INFINITY);
        round_trip(-0.0f64);
        round_trip('é');
        round_trip(());
    }

    #[test]
    fn nan_round_trips_by_bit_pattern() {
        let bytes = f64::NAN.encode_to_vec();
        let back = f64::decode_all(&bytes).unwrap();
        assert_eq!(back.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn compound_types_round_trip() {
        round_trip("héllo wörld".to_string());
        round_trip(String::new());
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<String>::new());
        round_trip(Some("x".to_string()));
        round_trip(None::<u64>);
        round_trip((42u32, "value".to_string()));
        round_trip((1u8, 2u16, 3u32, 4u64));
        round_trip(vec![(1usize, 0.5f64), (2, 1.5)]);
    }

    #[test]
    fn truncated_input_is_an_eof_error() {
        let bytes = "hello".to_string().encode_to_vec();
        for cut in 0..bytes.len() {
            let err = String::decode_all(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::UnexpectedEof { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected_by_decode_all() {
        let mut bytes = 7u32.encode_to_vec();
        bytes.push(0);
        assert!(matches!(
            u32::decode_all(&bytes),
            Err(CodecError::InvalidData(_))
        ));
    }

    #[test]
    fn invalid_tags_are_rejected() {
        assert!(bool::decode_all(&[2]).is_err());
        assert!(Option::<u8>::decode_all(&[9]).is_err());
        let not_utf8 = {
            let mut b = 2usize.encode_to_vec();
            b.extend_from_slice(&[0xff, 0xfe]);
            b
        };
        assert!(String::decode_all(&not_utf8).is_err());
    }

    #[test]
    fn corrupt_vec_length_does_not_allocate_the_moon() {
        // A length claiming 2^60 elements with a 2-byte payload must fail
        // with EOF, not abort on an allocation.
        let mut bytes = (1u64 << 60).encode_to_vec();
        bytes.extend_from_slice(&[1, 2]);
        assert!(Vec::<u64>::decode_all(&bytes).is_err());
    }

    #[derive(Debug, Clone, PartialEq)]
    struct Demo {
        id: u32,
        label: String,
        weights: Vec<f64>,
    }
    impl_codec_struct!(Demo { id, label, weights });

    #[derive(Debug, Clone, PartialEq)]
    struct Wrapper(u64);
    impl_codec_newtype!(Wrapper(u64));

    #[test]
    fn macros_generate_working_impls() {
        round_trip(Demo {
            id: 9,
            label: "demo".into(),
            weights: vec![0.25, -1.0],
        });
        round_trip(Wrapper(u64::MAX));
    }
}
