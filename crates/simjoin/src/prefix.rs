//! Prefix filtering for dot-product similarity.
//!
//! The idea (Chaudhuri et al., adapted by Baraglia et al. to MapReduce):
//! order the entries of every vector by a fixed global term order and index
//! only a *prefix* of each vector.  The prefix is chosen so that the
//! remaining suffix alone cannot produce a dot product of σ or more with
//! *any* vector of the other side; therefore every pair with similarity at
//! least σ shares at least one term inside the indexed prefix and cannot be
//! missed by an index probe.
//!
//! For dot products the bound of a suffix `S` of vector `y` against the
//! item side is `Σ_{i ∈ S} y_i · maxw(i)` where `maxw(i)` is the largest
//! weight of term `i` in any item vector.

use smr_text::{SparseVector, TermId};

/// Per-term maximum weights across a collection of vectors, indexed densely
/// by term id (`0.0` for terms that never occur).
pub fn term_max_weights(vectors: &[SparseVector], vocab_size: usize) -> Vec<f64> {
    let mut max_w = vec![0.0_f64; vocab_size];
    for v in vectors {
        for &(term, weight) in v.entries() {
            let idx = term.index();
            if idx >= max_w.len() {
                // Defensive: callers normally pass the full vocabulary size.
                max_w.resize(idx + 1, 0.0);
            }
            if weight.abs() > max_w[idx] {
                max_w[idx] = weight.abs();
            }
        }
    }
    max_w
}

/// Number of leading entries of `ordered_terms` (the vector's terms in the
/// global order) that must be indexed so that the suffix bound drops below
/// `sigma`.
///
/// Returns a value in `0..=ordered_terms.len()`: `0` means the whole vector
/// can be skipped (it cannot reach σ with anything), `len` means every
/// entry must be indexed.
pub fn prefix_length(
    vector: &SparseVector,
    ordered_terms: &[TermId],
    max_weights: &[f64],
    sigma: f64,
) -> usize {
    debug_assert!(sigma > 0.0, "threshold must be positive");
    // Suffix bounds computed from the back: suffix_bound[k] is the largest
    // possible contribution of entries k.. against any opposite vector.
    let mut suffix_bound = 0.0;
    let mut prefix = ordered_terms.len();
    for (k, term) in ordered_terms.iter().enumerate().rev() {
        let w = vector.weight(*term);
        let maxw = max_weights.get(term.index()).copied().unwrap_or(0.0);
        let candidate_bound = suffix_bound + w * maxw;
        if candidate_bound >= sigma {
            // Entries k.. could reach the threshold on their own, so entry k
            // must be part of the prefix; everything after k may be pruned.
            prefix = k + 1;
            break;
        }
        suffix_bound = candidate_bound;
        prefix = k;
    }
    prefix
}

/// Upper bound on the contribution of the *unindexed* suffix of a vector
/// to its dot product with **any** vector of the opposite side:
/// `Σ_{k ≥ prefix_len} |w_k| · maxw(term_k)`.
///
/// This is the quantity [`prefix_length`] drives below σ; materialized per
/// vector it becomes the *remainder bound* of partial-product
/// verification: the similarity of a pair is at most the sum of its
/// partial products over shared indexed terms plus this bound, so a pair
/// whose accumulated partial score plus remainder stays below σ can be
/// discarded without ever touching the vectors.
pub fn suffix_remainder_bound(
    vector: &SparseVector,
    ordered_terms: &[TermId],
    prefix_len: usize,
    max_weights: &[f64],
) -> f64 {
    ordered_terms[prefix_len.min(ordered_terms.len())..]
        .iter()
        .map(|term| {
            let maxw = max_weights.get(term.index()).copied().unwrap_or(0.0);
            vector.weight(*term).abs() * maxw
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(entries: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(entries.iter().map(|&(t, w)| (TermId(t), w)))
    }

    #[test]
    fn max_weights_track_the_largest_entry_per_term() {
        let vectors = vec![vec_of(&[(0, 0.5), (2, 0.1)]), vec_of(&[(0, 0.3), (1, 0.9)])];
        let maxw = term_max_weights(&vectors, 3);
        assert_eq!(maxw, vec![0.5, 0.9, 0.1]);
    }

    #[test]
    fn max_weights_grow_the_table_for_unknown_terms() {
        let vectors = vec![vec_of(&[(5, 0.7)])];
        let maxw = term_max_weights(&vectors, 2);
        assert_eq!(maxw.len(), 6);
        assert_eq!(maxw[5], 0.7);
    }

    #[test]
    fn prefix_is_zero_when_nothing_can_reach_the_threshold() {
        let v = vec_of(&[(0, 0.1), (1, 0.1)]);
        let order = vec![TermId(0), TermId(1)];
        let maxw = vec![0.2, 0.2];
        // Best possible dot product is 0.1*0.2 + 0.1*0.2 = 0.04 < 0.5.
        assert_eq!(prefix_length(&v, &order, &maxw, 0.5), 0);
    }

    #[test]
    fn prefix_covers_everything_when_the_last_term_alone_suffices() {
        let v = vec_of(&[(0, 1.0), (1, 1.0)]);
        let order = vec![TermId(0), TermId(1)];
        let maxw = vec![1.0, 1.0];
        // Even the final entry alone can contribute 1.0 ≥ 0.5, so the whole
        // vector must be indexed.
        assert_eq!(prefix_length(&v, &order, &maxw, 0.5), 2);
    }

    #[test]
    fn prefix_stops_where_the_suffix_bound_falls_below_sigma() {
        // Ordered terms: t0 (heavy), t1, t2 (light tail).
        let v = vec_of(&[(0, 1.0), (1, 0.3), (2, 0.1)]);
        let order = vec![TermId(0), TermId(1), TermId(2)];
        let maxw = vec![1.0, 1.0, 1.0];
        // Suffix {t2}: bound 0.1 < 0.5  -> prunable.
        // Suffix {t1,t2}: bound 0.4 < 0.5 -> prunable.
        // Suffix {t0,t1,t2}: bound 1.4 ≥ 0.5 -> t0 must be indexed.
        assert_eq!(prefix_length(&v, &order, &maxw, 0.5), 1);
    }

    #[test]
    fn suffix_remainder_bound_sums_the_pruned_tail() {
        let v = vec_of(&[(0, 1.0), (1, 0.3), (2, 0.1)]);
        let order = vec![TermId(0), TermId(1), TermId(2)];
        let maxw = vec![1.0, 0.5, 1.0];
        // Suffix {t1, t2}: 0.3·0.5 + 0.1·1.0.
        let bound = suffix_remainder_bound(&v, &order, 1, &maxw);
        assert!((bound - 0.25).abs() < 1e-12);
        // Whole vector indexed ⇒ nothing remains.
        assert_eq!(suffix_remainder_bound(&v, &order, 3, &maxw), 0.0);
        // Out-of-range prefix lengths clamp instead of panicking.
        assert_eq!(suffix_remainder_bound(&v, &order, 9, &maxw), 0.0);
    }

    #[test]
    fn remainder_bound_dominates_every_true_suffix_contribution() {
        // For every pair: dot(x, y) ≤ (prefix part of y) + remainder(y).
        let items = vec![
            vec_of(&[(0, 0.9), (1, 0.2)]),
            vec_of(&[(1, 0.8), (2, 0.4)]),
            vec_of(&[(2, 0.6), (3, 0.6)]),
        ];
        let consumers = vec![
            vec_of(&[(0, 0.7), (2, 0.5)]),
            vec_of(&[(1, 0.5), (3, 0.5)]),
            vec_of(&[(0, 0.1), (3, 0.9)]),
        ];
        let maxw = term_max_weights(&items, 4);
        let order: Vec<TermId> = (0..4).map(TermId).collect();
        for sigma in [0.1, 0.3, 0.5] {
            for y in &consumers {
                let ordered: Vec<TermId> = order
                    .iter()
                    .copied()
                    .filter(|t| y.weight(*t) != 0.0)
                    .collect();
                let plen = prefix_length(y, &ordered, &maxw, sigma);
                let bound = suffix_remainder_bound(y, &ordered, plen, &maxw);
                assert!(bound < sigma, "the pruned suffix can never reach sigma");
                for x in &items {
                    let prefix_part: f64 = ordered[..plen]
                        .iter()
                        .map(|t| x.weight(*t) * y.weight(*t))
                        .sum();
                    assert!(
                        prefix_part + bound >= x.dot(y) - 1e-12,
                        "partial products + remainder must bound the dot product"
                    );
                }
            }
        }
    }

    #[test]
    fn prefix_guarantee_holds_for_exhaustive_small_cases() {
        // Brute-force check of the filtering guarantee: for every pair of
        // small vectors, if dot(x, y) >= sigma then x shares a term with
        // the prefix of y (prefix computed against the item-side maxima).
        let items = vec![
            vec_of(&[(0, 0.9), (1, 0.2)]),
            vec_of(&[(1, 0.8), (2, 0.4)]),
            vec_of(&[(2, 0.6), (3, 0.6)]),
        ];
        let consumers = vec![
            vec_of(&[(0, 0.7), (2, 0.5)]),
            vec_of(&[(1, 0.5), (3, 0.5)]),
            vec_of(&[(0, 0.1), (3, 0.9)]),
        ];
        let maxw = term_max_weights(&items, 4);
        let order: Vec<TermId> = (0..4).map(TermId).collect();
        for sigma in [0.1, 0.3, 0.5] {
            for y in &consumers {
                let ordered: Vec<TermId> = order
                    .iter()
                    .copied()
                    .filter(|t| y.weight(*t) != 0.0)
                    .collect();
                let plen = prefix_length(y, &ordered, &maxw, sigma);
                let prefix: Vec<TermId> = ordered[..plen].to_vec();
                for x in &items {
                    if x.dot(y) >= sigma {
                        assert!(
                            prefix.iter().any(|t| x.weight(*t) != 0.0),
                            "pair above threshold shares no prefix term (sigma={sigma})"
                        );
                    }
                }
            }
        }
    }
}
