//! A standing serving index: point queries and micro-updates against the
//! persisted similarity-join index.
//!
//! The batch join builds its pruned inverted index, probes it once with
//! every item, and throws it away.  [`ServingIndex`] keeps the same
//! structure alive — the term-range [`PartitionedIndex`] plus the chunked
//! consumer [`DiskVectorStore`] — and answers two requests the batch path
//! cannot:
//!
//! * [`ServingIndex::match_one`] — "a new item just arrived: who are its
//!   candidate consumers right now?"  One query runs exactly the batch
//!   probe per partition (partial products over shared indexed terms, the
//!   suffix-remainder prune at `σ − slack`), then verifies the survivors
//!   with exact dot products from the vector chunks.  No corpus scan: the
//!   query only opens the partitions its terms fall into.
//! * [`ServingIndex::append_batch`] — "these consumers just joined the
//!   corpus."  Each new vector's prefix postings are **appended** to the
//!   partition files their terms route to (cost proportional to the new
//!   postings, not the index), and only the touched cache entries are
//!   invalidated; untouched partitions keep serving from cache.
//!
//! **Exactness.**  A query probes the same postings the batch probe mapper
//! would see and prunes with the same bound at the same slack, and both
//! paths accept a pair only after an exact dot product reaches σ.  So for
//! any query vector whose per-term weights stay within the query-side
//! maxima the index was built with, `match_one` returns *exactly* the
//! batch join's candidate set for that query (proptest-locked in
//! `tests/serving_equivalence.rs`).  Queries with heavier terms than the
//! declared maxima may miss pairs — the prefix bound they were indexed
//! under no longer covers such a query — which is why builders take the
//! maxima explicitly.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use smr_storage::DatasetStore;
use smr_text::SparseVector;

use crate::accum::ScoreAccumulator;
use crate::index::Posting;
use crate::join::{probe_partition, rarest_first_rank, PRUNE_SLACK};
use crate::prefix::{prefix_length, suffix_remainder_bound, term_max_weights};
use crate::store::{DiskVectorStore, PartitionedIndex};

/// One serving-time candidate: a consumer whose exact similarity with the
/// query reached σ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredMatch {
    /// Dense index of the consumer in the serving corpus.
    pub consumer: usize,
    /// Exact dot product with the query (always ≥ σ).
    pub score: f64,
}

/// A standing, disk-backed similarity index over a consumer corpus,
/// answering point queries and absorbing micro-batches of new consumers.
#[derive(Debug)]
pub struct ServingIndex {
    index: PartitionedIndex,
    consumers: DiskVectorStore,
    sigma: f64,
    /// Global prefix-filter term order (rarest first), as built.
    term_order_rank: Vec<u32>,
    /// Per-term query-side maxima the prefix bounds were computed against.
    max_weights: Vec<f64>,
    /// Queries seen so far that carried some term heavier than its
    /// build-time maximum — queries the exactness contract no longer
    /// covers (see [`ServingIndex::maxima_exceeded`]).
    maxima_exceeded: AtomicU64,
    len: usize,
}

impl ServingIndex {
    /// Builds a serving index over `consumers` in `store` under `prefix`,
    /// with every knob explicit:
    ///
    /// * `query_max_weights` — per-term upper bounds on the weight any
    ///   future query may carry; the prefix of each consumer is pruned
    ///   against these, so they are the exactness contract of the index.
    /// * `term_order_rank` — the global term order for prefix filtering
    ///   (see [`rarest_first_rank`][crate::mapreduce_similarity_join]'s
    ///   rarest-first order in the batch join).
    /// * `sigma` — the similarity threshold served.
    ///
    /// The postings written are identical to what the batch join's job 1
    /// indexes for the same inputs.
    ///
    /// # Panics
    /// Panics if `sigma` is not strictly positive.
    pub fn build(
        store: &DatasetStore,
        prefix: &str,
        consumers: &[SparseVector],
        query_max_weights: Vec<f64>,
        term_order_rank: Vec<u32>,
        sigma: f64,
    ) -> Self {
        assert!(sigma > 0.0, "threshold must be positive");
        let vocab_size = query_max_weights.len().max(term_order_rank.len());
        let mut postings: Vec<(u32, Posting)> = Vec::new();
        for (doc, vector) in consumers.iter().enumerate() {
            emit_prefix_postings(
                doc,
                vector,
                &term_order_rank,
                &query_max_weights,
                sigma,
                &mut postings,
            );
        }
        let index =
            PartitionedIndex::write(store, &format!("{prefix}/index"), postings, vocab_size);
        let vectors = DiskVectorStore::write(store, &format!("{prefix}/consumers"), consumers);
        ServingIndex {
            index,
            consumers: vectors,
            sigma,
            term_order_rank,
            max_weights: query_max_weights,
            maxima_exceeded: AtomicU64::new(0),
            len: consumers.len(),
        }
    }

    /// Builds a serving index sized for a known query corpus: the
    /// query-side maxima and the rarest-first term order are derived from
    /// `items` and `consumers` exactly as the batch join derives them, so
    /// `match_one` with any of the `items` reproduces the batch join's
    /// candidates for that item.
    pub fn for_corpora(
        store: &DatasetStore,
        prefix: &str,
        items: &[SparseVector],
        consumers: &[SparseVector],
        sigma: f64,
    ) -> Self {
        let vocab_size = items
            .iter()
            .chain(consumers.iter())
            .flat_map(|v| v.entries().iter().map(|(t, _)| t.index() + 1))
            .max()
            .unwrap_or(0);
        let max_weights = term_max_weights(items, vocab_size);
        let rank = rarest_first_rank(items, consumers, vocab_size);
        Self::build(store, prefix, consumers, max_weights, rank, sigma)
    }

    /// The similarity threshold this index serves.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Number of consumers currently indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no consumers.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of `(term, doc)` postings currently indexed.
    pub fn num_postings(&self) -> usize {
        self.index.num_entries()
    }

    /// Number of term-range partitions behind the index.
    pub fn num_partitions(&self) -> usize {
        self.index.num_partitions()
    }

    /// Disk reads performed so far (index partitions + vector chunks) —
    /// cache hits and coalesced concurrent misses excluded.
    pub fn disk_reads(&self) -> u64 {
        self.index.disk_reads() + self.consumers.disk_reads()
    }

    /// How many queries so far carried some term **strictly heavier** than
    /// the per-term maximum the index was built with.  Such queries fall
    /// outside the exactness contract — the consumers' prefixes were cut
    /// against the declared maxima, so a heavier query may miss pairs.  A
    /// non-zero count is the signal that the workload has drifted past the
    /// build assumptions and the index should be rebuilt with fresh maxima
    /// (surfaced as `needs_rebuild` on the serving pipeline).
    pub fn maxima_exceeded(&self) -> u64 {
        self.maxima_exceeded.load(Ordering::Relaxed)
    }

    /// Whether `query` carries some term heavier than its build-time
    /// maximum (a missing vocabulary entry counts as maximum 0): the
    /// per-query predicate behind [`ServingIndex::maxima_exceeded`].
    pub fn query_exceeds_maxima(&self, query: &SparseVector) -> bool {
        query.entries().iter().any(|&(term, weight)| {
            weight > self.max_weights.get(term.index()).copied().unwrap_or(0.0)
        })
    }

    /// Answers one point query: the top-`k` consumers whose exact dot
    /// product with `query` reaches σ, heaviest first (ties broken toward
    /// the lower consumer index, the batch join's candidate order).
    ///
    /// The query opens only the index partitions its terms fall into,
    /// accumulates partial products per candidate, prunes candidates whose
    /// score plus suffix-remainder bound cannot reach σ, and fetches
    /// vectors for exact verification of the survivors only.
    pub fn match_one(&self, query: &SparseVector, k: usize) -> Vec<ScoredMatch> {
        if k == 0 {
            return Vec::new();
        }
        let mut matches = self.candidates(query);
        matches.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("similarities are finite")
                .then(a.consumer.cmp(&b.consumer))
        });
        matches.truncate(k);
        matches
    }

    /// Every consumer whose exact dot product with `query` reaches σ, in
    /// consumer order — the batch join's candidate set for this query,
    /// unranked and untruncated.
    pub fn candidates(&self, query: &SparseVector) -> Vec<ScoredMatch> {
        let entries = query.entries();
        if entries.is_empty() {
            return Vec::new();
        }
        if self.query_exceeds_maxima(query) {
            self.maxima_exceeded.fetch_add(1, Ordering::Relaxed);
        }
        // Probe each partition some query term routes to, in term order —
        // the same run-grouping the batch probe mapper uses, so partial
        // products accumulate in the same floating-point order.
        let mut scores = ScoreAccumulator::new();
        let mut start = 0;
        while start < entries.len() {
            let p = self.index.partition_of(entries[start].0);
            let mut end = start + 1;
            while end < entries.len() && self.index.partition_of(entries[end].0) == p {
                end += 1;
            }
            let partition = self.index.partition(p);
            if !partition.is_empty() {
                probe_partition(&partition, &entries[start..end], &mut scores);
            }
            start = end;
        }
        let candidates = scores.drain_sorted();
        let mut matches = Vec::new();
        for (doc, partial) in candidates {
            if partial.score + partial.remainder < self.sigma - PRUNE_SLACK {
                continue;
            }
            let score = self.consumers.with_vector(doc, |y| query.dot(y));
            if score >= self.sigma {
                matches.push(ScoredMatch {
                    consumer: doc,
                    score,
                });
            }
        }
        matches
    }

    /// Absorbs a micro-batch of new consumers, returning the dense indices
    /// they were assigned.  Each vector's prefix postings are appended to
    /// the partitions its terms route to and the vectors join the chunked
    /// store; only the touched partition/chunk cache entries are
    /// invalidated, so queries keep hitting warm cache everywhere else.
    pub fn append_batch(&mut self, batch: &[SparseVector]) -> Range<usize> {
        let assigned = self.len..self.len + batch.len();
        if batch.is_empty() {
            return assigned;
        }
        let mut postings: Vec<(u32, Posting)> = Vec::new();
        for (offset, vector) in batch.iter().enumerate() {
            emit_prefix_postings(
                self.len + offset,
                vector,
                &self.term_order_rank,
                &self.max_weights,
                self.sigma,
                &mut postings,
            );
        }
        self.index.append(postings);
        self.consumers.append(batch);
        self.len += batch.len();
        assigned
    }
}

/// Computes one consumer's prefix postings exactly as the batch join's
/// index mapper does: terms in global order, prefix cut where the suffix
/// bound drops below σ, every posting carrying the suffix-remainder bound.
fn emit_prefix_postings(
    doc: usize,
    vector: &SparseVector,
    term_order_rank: &[u32],
    max_weights: &[f64],
    sigma: f64,
    out: &mut Vec<(u32, Posting)>,
) {
    let ordered = vector.terms_in_order(term_order_rank);
    let plen = prefix_length(vector, &ordered, max_weights, sigma);
    let bound = suffix_remainder_bound(vector, &ordered, plen, max_weights);
    for term in &ordered[..plen] {
        out.push((
            term.0,
            Posting {
                doc,
                weight: vector.weight(*term),
                bound,
            },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_text::TermId;

    fn temp_store(tag: &str) -> DatasetStore {
        let root = std::env::temp_dir().join(format!("smr-serving-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        DatasetStore::open(root).unwrap()
    }

    fn vec_of(entries: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(entries.iter().map(|&(t, w)| (TermId(t), w)))
    }

    fn small_corpora() -> (Vec<SparseVector>, Vec<SparseVector>) {
        let items = vec![
            vec_of(&[(0, 0.9), (1, 0.2)]),
            vec_of(&[(1, 0.8), (2, 0.4)]),
            vec_of(&[(2, 0.6), (3, 0.6)]),
        ];
        let consumers = vec![
            vec_of(&[(0, 0.7), (2, 0.5)]),
            vec_of(&[(1, 0.5), (3, 0.5)]),
            vec_of(&[(0, 0.1), (3, 0.9)]),
        ];
        (items, consumers)
    }

    #[test]
    fn point_queries_return_exactly_the_thresholded_pairs() {
        let store = temp_store("point");
        let (items, consumers) = small_corpora();
        let sigma = 0.3;
        let serving = ServingIndex::for_corpora(&store, "serve", &items, &consumers, sigma);
        for item in &items {
            let got = serving.candidates(item);
            for m in &got {
                let exact = item.dot(&consumers[m.consumer]);
                assert!((m.score - exact).abs() < 1e-12);
                assert!(m.score >= sigma);
            }
            let expected: Vec<usize> = consumers
                .iter()
                .enumerate()
                .filter(|(_, c)| item.dot(c) >= sigma)
                .map(|(i, _)| i)
                .collect();
            let got_ids: Vec<usize> = got.iter().map(|m| m.consumer).collect();
            assert_eq!(got_ids, expected);
        }
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn top_k_ranks_by_score_then_consumer() {
        let store = temp_store("topk");
        let consumers = vec![
            vec_of(&[(0, 0.5)]),
            vec_of(&[(0, 0.9)]),
            vec_of(&[(0, 0.9)]),
            vec_of(&[(0, 0.4)]),
        ];
        let query = vec_of(&[(0, 1.0)]);
        let serving = ServingIndex::for_corpora(
            &store,
            "serve",
            std::slice::from_ref(&query),
            &consumers,
            0.45,
        );
        let top = serving.match_one(&query, 2);
        assert_eq!(top.len(), 2);
        // Equal scores 0.9/0.9: the lower consumer index wins.
        assert_eq!(top[0].consumer, 1);
        assert_eq!(top[1].consumer, 2);
        assert_eq!(serving.match_one(&query, 0), Vec::new());
        let all = serving.match_one(&query, usize::MAX);
        assert_eq!(all.len(), 3, "0.4 stays below sigma");
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn append_batch_extends_the_candidate_set_incrementally() {
        let store = temp_store("append");
        let (items, consumers) = small_corpora();
        let sigma = 0.3;
        let mut serving = ServingIndex::for_corpora(&store, "serve", &items, &consumers, sigma);
        let query = &items[0];
        let before = serving.candidates(query).len();

        // A new consumer that strongly matches item 0 arrives.
        let newcomer = vec_of(&[(0, 0.95), (1, 0.3)]);
        let assigned = serving.append_batch(std::slice::from_ref(&newcomer));
        assert_eq!(assigned, 3..4);
        assert_eq!(serving.len(), 4);

        let after = serving.candidates(query);
        assert_eq!(after.len(), before + 1);
        let found = after.iter().find(|m| m.consumer == 3).expect("newcomer");
        assert!((found.score - query.dot(&newcomer)).abs() < 1e-12);

        // Batch-equivalence after the append: rebuilding from scratch over
        // the grown corpus yields the same candidates for every item.
        let mut grown = consumers.clone();
        grown.push(newcomer);
        let rebuilt = ServingIndex::for_corpora(&store, "rebuilt", &items, &grown, sigma);
        for item in &items {
            assert_eq!(serving.candidates(item), rebuilt.candidates(item));
        }
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn queries_beyond_the_declared_maxima_are_counted() {
        let store = temp_store("maxima");
        let (items, consumers) = small_corpora();
        let serving = ServingIndex::for_corpora(&store, "serve", &items, &consumers, 0.3);
        assert_eq!(serving.maxima_exceeded(), 0);

        // Every build-corpus item is covered by construction: the maxima
        // are derived from exactly these vectors.
        for item in &items {
            assert!(!serving.query_exceeds_maxima(item));
            let _ = serving.candidates(item);
        }
        assert_eq!(serving.maxima_exceeded(), 0);

        // Term 0's maximum is 0.9 (item 0); equal weight is still covered,
        // anything strictly heavier is not.
        let at_limit = vec_of(&[(0, 0.9)]);
        let _ = serving.candidates(&at_limit);
        assert_eq!(serving.maxima_exceeded(), 0);

        let heavier = vec_of(&[(0, 0.95)]);
        assert!(serving.query_exceeds_maxima(&heavier));
        let _ = serving.candidates(&heavier);
        assert_eq!(serving.maxima_exceeded(), 1);

        // A term the build corpus never saw has maximum 0.
        let unseen_term = vec_of(&[(9, 0.01)]);
        let _ = serving.match_one(&unseen_term, 3);
        assert_eq!(serving.maxima_exceeded(), 2);

        // Covered queries keep not counting afterwards.
        let _ = serving.candidates(&items[1]);
        assert_eq!(serving.maxima_exceeded(), 2);
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn empty_batches_and_empty_queries_are_no_ops() {
        let store = temp_store("edge");
        let (items, consumers) = small_corpora();
        let mut serving = ServingIndex::for_corpora(&store, "serve", &items, &consumers, 0.3);
        assert_eq!(serving.append_batch(&[]), 3..3);
        assert_eq!(serving.len(), 3);
        assert!(serving.match_one(&SparseVector::default(), 5).is_empty());
        assert!(!serving.is_empty());
        assert!(serving.num_postings() > 0);
        assert!(serving.num_partitions() >= 1);
        std::fs::remove_dir_all(store.root()).unwrap();
    }
}
