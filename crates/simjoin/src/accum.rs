//! Open-addressed partial-score accumulation for the probe hot loop.
//!
//! Every probe — batch [`crate::join`], serving point queries, sampled
//! sketch generators — folds `(doc, weight · weight)` products into a
//! per-query score table and then drains it sorted by doc.  The std
//! `HashMap` paid SipHash plus an occupied-entry branch chain per posting;
//! this table keys directly on the dense doc index with a Fibonacci
//! multiplicative hash and linear probing over three parallel arrays, so
//! the accumulate step is a handful of arithmetic ops and (usually) one
//! cache line.
//!
//! Determinism: the table only changes *where* a doc's running sum lives,
//! never the order products are added to it (that is the caller's term
//! order), and [`ScoreAccumulator::drain_sorted`] emits candidates sorted
//! by doc exactly as the previous `collect`-then-`sort_unstable_by_key`
//! did — so switching accumulators is byte-identical on the wire.

use crate::join::PartialScore;

/// Sentinel marking an empty slot; dense doc indices never reach it.
const EMPTY: usize = usize::MAX;

/// The Fibonacci multiplier `2^64 / φ`, spreading consecutive doc indices
/// across the table.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// An open-addressed `doc -> PartialScore` accumulation table.
///
/// Semantics match the `HashMap<usize, PartialScore>` it replaced:
/// [`ScoreAccumulator::accumulate`] adds a product to the doc's running
/// score, and the remainder bound is captured from the doc's **first**
/// posting (every posting of a doc carries the same bound, so first-wins
/// and max-wins agree; first-wins is what `or_insert` did).
#[derive(Debug)]
pub struct ScoreAccumulator {
    /// Slot keys (doc indices), `EMPTY` when vacant.
    keys: Vec<usize>,
    /// Running `Σ product` per slot, parallel to `keys`.
    scores: Vec<f64>,
    /// The doc's suffix remainder bound, parallel to `keys`.
    remainders: Vec<f64>,
    /// Number of occupied slots.
    len: usize,
}

impl Default for ScoreAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl ScoreAccumulator {
    /// An empty accumulator with a small initial table.
    pub fn new() -> Self {
        Self::with_capacity(8)
    }

    /// An empty accumulator sized to hold `docs` distinct docs without
    /// growing.
    pub fn with_capacity(docs: usize) -> Self {
        let slots = (docs.max(4) * 2).next_power_of_two();
        ScoreAccumulator {
            keys: vec![EMPTY; slots],
            scores: vec![0.0; slots],
            remainders: vec![0.0; slots],
            len: 0,
        }
    }

    /// Number of distinct docs accumulated so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The slot where `doc` lives or would be inserted: Fibonacci hash of
    /// the doc index, then linear probing.  The table always keeps vacant
    /// slots (load factor ≤ 1/2), so the probe terminates.
    fn slot_of(keys: &[usize], doc: usize) -> usize {
        let mask = keys.len() - 1;
        let shift = 64 - keys.len().trailing_zeros();
        let mut slot = ((doc as u64).wrapping_mul(FIB) >> shift) as usize;
        loop {
            let key = keys[slot];
            if key == doc || key == EMPTY {
                return slot;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Doubles the table and re-places every occupied slot.
    fn grow(&mut self) {
        let slots = self.keys.len() * 2;
        let mut keys = vec![EMPTY; slots];
        let mut scores = vec![0.0; slots];
        let mut remainders = vec![0.0; slots];
        for from in 0..self.keys.len() {
            let doc = self.keys[from];
            if doc == EMPTY {
                continue;
            }
            let to = Self::slot_of(&keys, doc);
            keys[to] = doc;
            scores[to] = self.scores[from];
            remainders[to] = self.remainders[from];
        }
        self.keys = keys;
        self.scores = scores;
        self.remainders = remainders;
    }

    /// Adds `product` to `doc`'s running score; on the doc's first
    /// appearance, records `bound` as its remainder.
    #[inline]
    pub fn accumulate(&mut self, doc: usize, product: f64, bound: f64) {
        debug_assert_ne!(doc, EMPTY, "doc index collides with the vacancy sentinel");
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let slot = Self::slot_of(&self.keys, doc);
        if self.keys[slot] == EMPTY {
            self.keys[slot] = doc;
            // Stale values from before a drain may linger in the value
            // columns; a slot's state is defined at insertion.
            self.scores[slot] = 0.0;
            self.remainders[slot] = bound;
            self.len += 1;
        }
        self.scores[slot] += product;
    }

    /// Empties the table into `(doc, PartialScore)` candidates sorted by
    /// doc, leaving the accumulator ready for reuse at its current
    /// capacity.
    pub fn drain_sorted(&mut self) -> Vec<(usize, PartialScore)> {
        let mut out = Vec::with_capacity(self.len);
        for slot in 0..self.keys.len() {
            let doc = self.keys[slot];
            if doc == EMPTY {
                continue;
            }
            out.push((
                doc,
                PartialScore {
                    score: self.scores[slot],
                    remainder: self.remainders[slot],
                },
            ));
            self.keys[slot] = EMPTY;
        }
        self.len = 0;
        out.sort_unstable_by_key(|(doc, _)| *doc);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn accumulates_like_the_hashmap_it_replaced() {
        let postings = [
            (3usize, 0.5, 0.9),
            (1, 0.25, 0.7),
            (3, 0.125, 0.9),
            (8, 1.0, 0.2),
            (1, 0.0625, 0.7),
        ];
        let mut table = ScoreAccumulator::new();
        let mut model: HashMap<usize, PartialScore> = HashMap::new();
        for (doc, product, bound) in postings {
            table.accumulate(doc, product, bound);
            let entry = model.entry(doc).or_insert(PartialScore {
                score: 0.0,
                remainder: bound,
            });
            entry.score += product;
        }
        let mut expected: Vec<(usize, PartialScore)> = model.into_iter().collect();
        expected.sort_unstable_by_key(|(doc, _)| *doc);
        assert_eq!(table.drain_sorted(), expected);
    }

    #[test]
    fn first_bound_wins_for_a_doc() {
        let mut table = ScoreAccumulator::new();
        table.accumulate(5, 1.0, 0.25);
        table.accumulate(5, 1.0, 0.75);
        let drained = table.drain_sorted();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].1.remainder, 0.25);
        assert_eq!(drained[0].1.score, 2.0);
    }

    #[test]
    fn growth_preserves_every_running_sum() {
        let mut table = ScoreAccumulator::with_capacity(2);
        for doc in 0..1000usize {
            table.accumulate(doc % 257, 1.0, doc as f64);
        }
        let drained = table.drain_sorted();
        assert_eq!(drained.len(), 257);
        let total: f64 = drained.iter().map(|(_, p)| p.score).sum();
        assert_eq!(total, 1000.0);
        // Sorted by doc and each doc's bound is from its first posting.
        for (i, (doc, partial)) in drained.iter().enumerate() {
            assert_eq!(*doc, i);
            assert_eq!(partial.remainder, *doc as f64);
        }
    }

    #[test]
    fn drain_resets_for_reuse() {
        let mut table = ScoreAccumulator::new();
        table.accumulate(1, 1.0, 0.0);
        assert_eq!(table.len(), 1);
        table.drain_sorted();
        assert!(table.is_empty());
        table.accumulate(2, 3.0, 0.5);
        assert_eq!(
            table.drain_sorted(),
            vec![(
                2,
                PartialScore {
                    score: 3.0,
                    remainder: 0.5
                }
            )]
        );
    }

    #[test]
    fn reusing_a_slot_after_drain_starts_from_zero() {
        // The same doc lands in the same slot across queries; its stale
        // score and bound from the previous query must not leak.
        let mut table = ScoreAccumulator::new();
        table.accumulate(5, 10.0, 0.9);
        table.drain_sorted();
        table.accumulate(5, 1.0, 0.1);
        assert_eq!(
            table.drain_sorted(),
            vec![(
                5,
                PartialScore {
                    score: 1.0,
                    remainder: 0.1
                }
            )]
        );
    }

    #[test]
    fn adversarial_doc_indices_still_probe_to_distinct_slots() {
        // Doc indices a power-of-two stride apart defeat masked identity
        // hashing; the Fibonacci multiply must still spread them.
        let mut table = ScoreAccumulator::new();
        for i in 0..64usize {
            table.accumulate(i << 32, 1.0, 0.0);
        }
        assert_eq!(table.len(), 64);
        assert_eq!(table.drain_sorted().len(), 64);
    }
}
