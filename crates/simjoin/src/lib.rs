//! Similarity join: computing the candidate edges of the b-matching.
//!
//! Section 5.1 of the paper: materializing all `|T| · |C|` item–consumer
//! pairs is infeasible, so the framework only keeps pairs whose similarity
//! `w(t, c) = v(t) · v(c)` is at least a threshold σ.  Finding those pairs
//! is the *similarity join* problem, solved in MapReduce by adapting the
//! prefix-filtering self-join of Baraglia, De Francisci Morales and
//! Lucchese to the bipartite (item × consumer) case.
//!
//! * [`prefix`] — the prefix-filtering bounds: which entries of a consumer
//!   vector must be indexed so that no pair above the threshold can be
//!   missed, and what the pruned suffix could still contribute (the
//!   *remainder bound* of partial-product verification),
//! * [`index`] — the pruned inverted index over consumer vectors,
//! * [`store`] — the join's disk-backed side data: the index in term-range
//!   partitions and the corpora in vector chunks, both opened on demand,
//! * [`baseline`] — an exact all-pairs join used as ground truth,
//! * [`join`] — the two-MapReduce-job join (index construction, then
//!   partial-product probing with suffix-bound pruning + exact
//!   verification) producing a [`smr_graph::BipartiteGraph`]; see
//!   `docs/simjoin.md` for the filter math and the dataflow,
//! * [`serving`] — the index kept alive after the batch build: point
//!   queries ([`ServingIndex::match_one`]) and micro-batch appends against
//!   the same on-disk partitions; see `docs/serving.md`.
//!
//! # Example
//!
//! ```
//! use smr_simjoin::prelude::*;
//! use smr_text::prelude::*;
//!
//! let items = Corpus::build(
//!     vec![
//!         Document::new("q0", "sourdough bread baking"),
//!         Document::new("q1", "vintage car engines"),
//!     ],
//!     &TokenizerConfig::default(),
//! );
//! let consumers = Corpus::build(
//!     vec![
//!         Document::new("u0", "I bake bread every weekend, mostly sourdough"),
//!         Document::new("u1", "restoring old cars and engines"),
//!     ],
//!     &TokenizerConfig::default(),
//! );
//! let config = SimJoinConfig::default().with_threshold(0.05);
//! let result = mapreduce_similarity_join(&items, &consumers, &config);
//! // Each item ends up connected to the consumer with matching interests.
//! assert_eq!(result.graph.num_edges(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accum;
pub mod baseline;
pub mod index;
pub mod join;
pub mod prefix;
pub mod serving;
pub mod store;

pub use accum::ScoreAccumulator;
pub use baseline::baseline_similarity_join;
pub use index::{InvertedIndex, Posting};
pub use join::{
    align_vector_spaces, corpus_labels, mapreduce_similarity_join, mapreduce_similarity_join_flow,
    mapreduce_similarity_join_vectors, mapreduce_similarity_join_vectors_flow, rarest_first_rank,
    stage_shuffles, IndexMapper, IndexReducer, PartialScore, PartialScoreCombiner, SimJoinConfig,
    SimJoinResult, StageShuffle, VerifyReducer, EXACT_GENERATOR, PRUNE_SLACK,
};
pub use prefix::{prefix_length, suffix_remainder_bound, term_max_weights};
pub use serving::{ScoredMatch, ServingIndex};
pub use store::{DiskVectorStore, IndexPartition, PartitionedIndex, PostingsRef};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::baseline::baseline_similarity_join;
    pub use crate::index::{InvertedIndex, Posting};
    pub use crate::join::{
        mapreduce_similarity_join, mapreduce_similarity_join_flow,
        mapreduce_similarity_join_vectors, mapreduce_similarity_join_vectors_flow, PartialScore,
        SimJoinConfig, SimJoinResult,
    };
    pub use crate::prefix::{prefix_length, suffix_remainder_bound, term_max_weights};
    pub use crate::serving::{ScoredMatch, ServingIndex};
    pub use crate::store::{DiskVectorStore, IndexPartition, PartitionedIndex};
}
