//! The pruned inverted index over consumer vectors — the single-machine
//! **reference implementation** of the filter.
//!
//! The MapReduce join itself no longer holds an index like this in
//! memory: job 1's output goes straight to disk as term-range partitions
//! ([`crate::store::PartitionedIndex`]) that probe mappers open on
//! demand.  [`InvertedIndex`] stays as the in-memory reference the
//! equivalence tests and the filter documentation are written against;
//! both implementations index exactly the prefix entries and carry the
//! same per-posting suffix remainder bound.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use smr_storage::impl_codec_struct;
use smr_text::{SparseVector, TermId};

use crate::prefix::{prefix_length, suffix_remainder_bound};

/// One posting: a consumer (by dense index), the weight of the indexed
/// term in its vector, and the consumer's suffix remainder bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Posting {
    /// Dense index of the consumer document.
    pub doc: usize,
    /// Weight of the term in that document.
    pub weight: f64,
    /// Upper bound on what the document's *unindexed* suffix can add to a
    /// dot product with any item
    /// ([`suffix_remainder_bound`]), carried with
    /// every posting so partial-product verification can threshold
    /// `accumulated score + bound` without fetching the vectors.
    pub bound: f64,
}

impl_codec_struct!(Posting { doc, weight, bound });

/// A term → postings inverted index containing only prefix entries.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    postings: HashMap<TermId, Vec<Posting>>,
    indexed_entries: usize,
    total_entries: usize,
}

impl InvertedIndex {
    /// Builds the pruned index for the consumer vectors.
    ///
    /// `term_order_rank[t]` is the global rank of term `t` (rarest terms
    /// first); `max_weights[t]` is the maximum weight of `t` on the item
    /// side.  Only the prefix of each consumer vector is indexed: the
    /// suffix cannot produce a similarity of σ with any item.
    pub fn build(
        consumers: &[SparseVector],
        term_order_rank: &[u32],
        max_weights: &[f64],
        sigma: f64,
    ) -> Self {
        let mut index = InvertedIndex::default();
        for (doc, vector) in consumers.iter().enumerate() {
            let ordered = vector.terms_in_order(term_order_rank);
            let plen = prefix_length(vector, &ordered, max_weights, sigma);
            let bound = suffix_remainder_bound(vector, &ordered, plen, max_weights);
            index.total_entries += vector.len();
            for term in &ordered[..plen] {
                index.indexed_entries += 1;
                index.postings.entry(*term).or_default().push(Posting {
                    doc,
                    weight: vector.weight(*term),
                    bound,
                });
            }
        }
        index
    }

    /// Builds an index from already-computed postings (used by the
    /// MapReduce join, whose first job produces exactly these lists).
    pub fn from_postings(postings: impl IntoIterator<Item = (TermId, Vec<Posting>)>) -> Self {
        let mut map: HashMap<TermId, Vec<Posting>> = HashMap::new();
        let mut indexed = 0;
        for (term, list) in postings {
            indexed += list.len();
            map.entry(term).or_default().extend(list);
        }
        InvertedIndex {
            postings: map,
            indexed_entries: indexed,
            total_entries: indexed,
        }
    }

    /// Postings of a term (empty if the term is not indexed).
    pub fn postings(&self, term: TermId) -> &[Posting] {
        self.postings
            .get(&term)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of distinct indexed terms.
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// Number of indexed (term, doc) entries.
    pub fn num_entries(&self) -> usize {
        self.indexed_entries
    }

    /// Fraction of vector entries that were pruned away by prefix
    /// filtering (0.0 when nothing was pruned or the input was empty).
    pub fn pruning_ratio(&self) -> f64 {
        if self.total_entries == 0 {
            0.0
        } else {
            1.0 - self.indexed_entries as f64 / self.total_entries as f64
        }
    }

    /// The distinct candidate documents found by probing the index with
    /// every term of `query`.
    ///
    /// Reference single-machine probe: the MapReduce join no longer calls
    /// this — its probe mapper emits one record per (term, posting) hit
    /// and leaves the deduplication to the engine's combiner — but the
    /// equivalence of the two probe paths is what the join's tests check
    /// against.
    pub fn candidates(&self, query: &SparseVector) -> Vec<usize> {
        let mut docs: Vec<usize> = query
            .entries()
            .iter()
            .flat_map(|&(term, _)| self.postings(term).iter().map(|p| p.doc))
            .collect();
        docs.sort_unstable();
        docs.dedup();
        docs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::term_max_weights;

    fn vec_of(entries: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(entries.iter().map(|&(t, w)| (TermId(t), w)))
    }

    #[test]
    fn build_indexes_only_prefixes() {
        let consumers = vec![
            vec_of(&[(0, 0.9), (1, 0.05)]),
            vec_of(&[(1, 0.8), (2, 0.05)]),
        ];
        let items = vec![vec_of(&[(0, 1.0), (1, 1.0), (2, 1.0)])];
        let maxw = term_max_weights(&items, 3);
        // Identity order: term 0 first.
        let rank = vec![0, 1, 2];
        let index = InvertedIndex::build(&consumers, &rank, &maxw, 0.5);
        // The 0.05-weight tails cannot reach 0.5 and are pruned.
        assert!(index.num_entries() < 4);
        assert!(index.pruning_ratio() > 0.0);
        assert!(!index.postings(TermId(0)).is_empty());
    }

    #[test]
    fn candidates_are_deduplicated() {
        let consumers = vec![vec_of(&[(0, 1.0), (1, 1.0)])];
        let items = vec![vec_of(&[(0, 1.0), (1, 1.0)])];
        let maxw = term_max_weights(&items, 2);
        let index = InvertedIndex::build(&consumers, &[0, 1], &maxw, 0.1);
        let candidates = index.candidates(&items[0]);
        assert_eq!(candidates, vec![0]);
    }

    #[test]
    fn from_postings_round_trips() {
        let index = InvertedIndex::from_postings(vec![
            (
                TermId(3),
                vec![Posting {
                    doc: 0,
                    weight: 0.5,
                    bound: 0.0,
                }],
            ),
            (
                TermId(7),
                vec![Posting {
                    doc: 1,
                    weight: 0.25,
                    bound: 0.0,
                }],
            ),
        ]);
        assert_eq!(index.num_terms(), 2);
        assert_eq!(index.num_entries(), 2);
        assert_eq!(index.postings(TermId(3)).len(), 1);
        assert!(index.postings(TermId(9)).is_empty());
    }

    #[test]
    fn empty_index_behaves() {
        let index = InvertedIndex::default();
        assert_eq!(index.num_terms(), 0);
        assert_eq!(index.pruning_ratio(), 0.0);
        assert!(index.candidates(&vec_of(&[(0, 1.0)])).is_empty());
    }
}
