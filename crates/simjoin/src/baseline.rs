//! Exact all-pairs similarity join, used as ground truth in tests and as
//! the no-pruning baseline in the ablation benchmarks.

use smr_graph::{BipartiteGraph, GraphBuilder};
use smr_text::Corpus;

/// Computes every item–consumer pair with dot-product similarity `>= sigma`
/// by brute force and returns the candidate-edge graph.
///
/// The two corpora are re-vectorized over a shared vocabulary first (they
/// are usually built independently, so their term ids do not line up);
/// items become the left side of the graph (labelled with their document
/// ids), consumers the right side, and the edge weight is the similarity.
pub fn baseline_similarity_join(items: &Corpus, consumers: &Corpus, sigma: f64) -> BipartiteGraph {
    assert!(sigma > 0.0, "threshold must be positive");
    // Build a joint vector space so item and consumer term ids align.
    let mut all_docs = Vec::with_capacity(items.len() + consumers.len());
    for i in 0..items.len() {
        all_docs.push(items.document(i).clone());
    }
    for i in 0..consumers.len() {
        all_docs.push(consumers.document(i).clone());
    }
    let joint = Corpus::build(all_docs, &smr_text::TokenizerConfig::default());

    let mut builder = GraphBuilder::new();
    let item_ids: Vec<_> = (0..items.len())
        .map(|i| builder.add_item(items.document(i).id.clone()))
        .collect();
    let consumer_ids: Vec<_> = (0..consumers.len())
        .map(|i| builder.add_consumer(consumers.document(i).id.clone()))
        .collect();
    for (ti, &t) in item_ids.iter().enumerate() {
        let item_vec = joint.vector(ti);
        if item_vec.is_empty() {
            continue;
        }
        for (ci, &c) in consumer_ids.iter().enumerate() {
            let sim = item_vec.dot(joint.vector(items.len() + ci));
            if sim >= sigma {
                builder.add_edge(t, c, sim);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_text::{Document, TokenizerConfig};

    fn corpora() -> (Corpus, Corpus) {
        let items = Corpus::build(
            vec![
                Document::new("photo-beach", "beach sunset ocean waves"),
                Document::new("photo-city", "city skyline night lights"),
            ],
            &TokenizerConfig::tags_only(),
        );
        let consumers = Corpus::build(
            vec![
                Document::new("user-sea", "ocean beach surfing waves"),
                Document::new("user-urban", "city architecture lights"),
                Document::new("user-food", "pasta pizza cooking"),
            ],
            &TokenizerConfig::tags_only(),
        );
        (items, consumers)
    }

    #[test]
    fn finds_only_pairs_above_the_threshold() {
        let (items, consumers) = corpora();
        let g = baseline_similarity_join(&items, &consumers, 0.2);
        assert_eq!(g.num_items(), 2);
        assert_eq!(g.num_consumers(), 3);
        // beach photo matches sea user, city photo matches urban user; the
        // food user matches nothing.
        assert_eq!(g.num_edges(), 2);
        assert!(g.edges().iter().all(|e| e.weight >= 0.2));
    }

    #[test]
    fn a_higher_threshold_keeps_fewer_edges() {
        let (items, consumers) = corpora();
        let low = baseline_similarity_join(&items, &consumers, 0.05);
        let high = baseline_similarity_join(&items, &consumers, 0.6);
        assert!(high.num_edges() <= low.num_edges());
    }

    #[test]
    fn graph_labels_carry_document_ids() {
        let (items, consumers) = corpora();
        let g = baseline_similarity_join(&items, &consumers, 0.2);
        assert_eq!(g.item_label(smr_graph::ItemId(0)), "photo-beach");
        assert_eq!(g.consumer_label(smr_graph::ConsumerId(2)), "user-food");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_is_rejected() {
        let (items, consumers) = corpora();
        baseline_similarity_join(&items, &consumers, 0.0);
    }
}
