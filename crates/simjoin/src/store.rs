//! Disk-backed side data of the streaming join.
//!
//! The two artifacts the join used to hold wholesale in memory now live in
//! a [`DatasetStore`] (normally a flow's side store) and are opened on
//! demand:
//!
//! * [`PartitionedIndex`] — job 1's pruned inverted index, persisted in
//!   **term-range partitions**.  A probe mapper only opens the partitions
//!   its query terms fall into, so a mapper's working set is a handful of
//!   partitions instead of the whole index.
//! * [`DiskVectorStore`] — a corpus as fixed-size **vector chunks**.  The
//!   verify reducer fetches the two vectors of a surviving candidate from
//!   here instead of holding `Arc` clones of both corpora.
//!
//! Both keep a small bounded LRU cache of decoded partitions/chunks.
//! Concurrent misses on the same block coalesce into a single disk read
//! (a per-block in-flight guard; late arrivals wait for the read instead
//! of repeating it), and a hit refreshes the block's eviction rank, so
//! hot blocks survive scans of cold ones.  Caching only affects speed:
//! every lookup returns exactly what was written, whatever was evicted in
//! between.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use smr_storage::{DatasetStore, DiskKvStore};
use smr_text::{SparseVector, TermId};

use crate::index::Posting;

/// Target number of postings per index partition.
const TARGET_ENTRIES_PER_PARTITION: usize = 4 * 1024;

/// Vectors per corpus chunk.
const VECTOR_CHUNK: usize = 256;

/// Decoded partitions / chunks kept in memory per handle.
const MAX_CACHED: usize = 16;

/// The blocks and bookkeeping behind a [`SharedCache`], guarded by its
/// mutex.
#[derive(Debug)]
struct CacheState<T> {
    blocks: HashMap<usize, Arc<T>>,
    /// Eviction order: front is evicted first; a hit moves its key to the
    /// back, so the front is always the least recently used block.
    order: VecDeque<usize>,
    /// Keys some thread is currently reading from disk.
    loading: HashSet<usize>,
}

impl<T> Default for CacheState<T> {
    fn default() -> Self {
        CacheState {
            blocks: HashMap::new(),
            order: VecDeque::new(),
            loading: HashSet::new(),
        }
    }
}

impl<T> CacheState<T> {
    /// Returns the cached block and refreshes its eviction rank.
    fn touch(&mut self, key: usize) -> Option<Arc<T>> {
        let block = self.blocks.get(&key).cloned()?;
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
        }
        self.order.push_back(key);
        Some(block)
    }

    fn insert(&mut self, key: usize, block: Arc<T>) {
        if self.blocks.insert(key, block).is_none() {
            self.order.push_back(key);
            while self.order.len() > MAX_CACHED {
                if let Some(evicted) = self.order.pop_front() {
                    self.blocks.remove(&evicted);
                }
            }
        }
    }

    fn invalidate(&mut self, key: usize) {
        if self.blocks.remove(&key).is_some() {
            if let Some(pos) = self.order.iter().position(|&k| k == key) {
                self.order.remove(pos);
            }
        }
    }
}

/// A bounded LRU cache of decoded side-data blocks with per-block read
/// coalescing: when several threads miss on the same key at once, exactly
/// one performs the disk read and the rest wait for its result.
#[derive(Debug, Default)]
struct SharedCache<T> {
    state: Mutex<CacheState<T>>,
    loaded: Condvar,
    disk_reads: AtomicU64,
}

/// Clears a key's in-flight flag when the loading thread finishes — or
/// panics — so waiters are never stranded on a flag nobody will clear.
struct LoadingGuard<'a, T> {
    cache: &'a SharedCache<T>,
    key: usize,
}

impl<T> Drop for LoadingGuard<'_, T> {
    fn drop(&mut self) {
        let mut state = self.cache.state.lock().expect("block cache poisoned");
        state.loading.remove(&self.key);
        drop(state);
        self.cache.loaded.notify_all();
    }
}

impl<T> SharedCache<T> {
    /// Returns the block for `key`, running `load` on a miss.  At most one
    /// thread loads a given key at a time; concurrent misses block until
    /// the in-flight read lands and then reuse it.
    fn get_or_load(&self, key: usize, load: impl FnOnce() -> T) -> Arc<T> {
        let mut state = self.state.lock().expect("block cache poisoned");
        loop {
            if let Some(block) = state.touch(key) {
                return block;
            }
            if state.loading.insert(key) {
                break;
            }
            state = self.loaded.wait(state).expect("block cache poisoned");
        }
        drop(state);
        let _inflight = LoadingGuard { cache: self, key };
        self.disk_reads.fetch_add(1, Ordering::Relaxed);
        let block = Arc::new(load());
        self.state
            .lock()
            .expect("block cache poisoned")
            .insert(key, Arc::clone(&block));
        block
    }

    /// Drops the cached block for `key`, if any; the next lookup re-reads
    /// the disk.
    fn invalidate(&self, key: usize) {
        self.state
            .lock()
            .expect("block cache poisoned")
            .invalidate(key);
    }

    /// Number of disk reads performed through this cache so far.
    fn disk_reads(&self) -> u64 {
        self.disk_reads.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Partitioned inverted index
// ---------------------------------------------------------------------------

/// One term's postings, borrowed from a partition's column arrays.
///
/// The columns are parallel slices of equal length: posting `i` is
/// `(docs[i], weights[i], bounds[i])`.  Scan loops index the columns they
/// actually touch — the accumulate-and-prune hot loop reads `docs` and
/// `weights` every iteration but `bounds` only on a candidate's first
/// appearance, which the one-array-of-structs layout forced through the
/// cache anyway.
#[derive(Debug, Clone, Copy)]
pub struct PostingsRef<'a> {
    /// Dense consumer indices, in the index's deterministic doc order.
    pub docs: &'a [usize],
    /// Term weights, parallel to `docs`.
    pub weights: &'a [f64],
    /// Suffix-remainder bounds, parallel to `docs`.
    pub bounds: &'a [f64],
}

impl<'a> PostingsRef<'a> {
    /// A postings list with nothing in it.
    pub const EMPTY: PostingsRef<'static> = PostingsRef {
        docs: &[],
        weights: &[],
        bounds: &[],
    };

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the list holds no postings.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The `i`-th posting, materialized.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn get(&self, i: usize) -> Posting {
        Posting {
            doc: self.docs[i],
            weight: self.weights[i],
            bound: self.bounds[i],
        }
    }

    /// Iterates the postings, materializing each.
    pub fn iter(&self) -> impl Iterator<Item = Posting> + 'a {
        let (docs, weights, bounds) = (self.docs, self.weights, self.bounds);
        (0..docs.len()).map(move |i| Posting {
            doc: docs[i],
            weight: weights[i],
            bound: bounds[i],
        })
    }
}

/// One decoded term-range partition in struct-of-arrays layout: the
/// distinct term ids (ascending) with offsets into three parallel posting
/// columns (doc, weight, bound).  A term's postings are one contiguous
/// range of each column, so the probe's accumulate loop walks flat `f64`
/// and `usize` arrays instead of hopping across per-term `Vec<Posting>`
/// allocations — branch-light and friendly to both the prefetcher and
/// auto-vectorization.
#[derive(Debug, Default)]
pub struct IndexPartition {
    /// Distinct indexed term ids, ascending.
    terms: Vec<u32>,
    /// `starts[i]..starts[i + 1]` is term `i`'s range in the columns;
    /// `terms.len() + 1` entries.
    starts: Vec<u32>,
    docs: Vec<usize>,
    weights: Vec<f64>,
    bounds: Vec<f64>,
}

impl IndexPartition {
    /// Builds a partition from raw `(term, posting)` records.
    ///
    /// Batch writes store each partition term-sorted, but appended
    /// micro-batches land at the end of the run file, so a partition may
    /// interleave term ranges.  The stable sort restores term order while
    /// preserving file order within a term (batch doc order, then appends
    /// in arrival order).  Public so benchmarks and alternative probe
    /// implementations can build partitions without a disk round trip.
    pub fn from_records(mut records: Vec<(u32, Posting)>) -> Self {
        records.sort_by_key(|(term, _)| *term);
        let mut partition = IndexPartition {
            terms: Vec::new(),
            starts: Vec::new(),
            docs: Vec::with_capacity(records.len()),
            weights: Vec::with_capacity(records.len()),
            bounds: Vec::with_capacity(records.len()),
        };
        for (term, posting) in records {
            if partition.terms.last() != Some(&term) {
                partition.terms.push(term);
                partition.starts.push(partition.docs.len() as u32);
            }
            partition.docs.push(posting.doc);
            partition.weights.push(posting.weight);
            partition.bounds.push(posting.bound);
        }
        partition.starts.push(partition.docs.len() as u32);
        partition
    }

    /// The postings of `term` (empty when the term is not indexed).
    pub fn postings(&self, term: u32) -> PostingsRef<'_> {
        self.terms
            .binary_search(&term)
            .map(|i| self.postings_at(i))
            .unwrap_or(PostingsRef::EMPTY)
    }

    /// The postings of the `i`-th distinct term (see
    /// [`IndexPartition::term_ids`]).
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn postings_at(&self, i: usize) -> PostingsRef<'_> {
        let start = self.starts[i] as usize;
        let end = self.starts[i + 1] as usize;
        PostingsRef {
            docs: &self.docs[start..end],
            weights: &self.weights[start..end],
            bounds: &self.bounds[start..end],
        }
    }

    /// The distinct indexed term ids, ascending — index-aligned with
    /// [`IndexPartition::postings_at`].
    pub fn term_ids(&self) -> &[u32] {
        &self.terms
    }

    /// Number of distinct indexed terms in this partition.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Number of postings across all terms of this partition.
    pub fn num_postings(&self) -> usize {
        self.docs.len()
    }

    /// Whether the partition indexes nothing.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// The pruned inverted index, persisted as term-range partitions in a
/// [`DatasetStore`] and opened partition-by-partition on demand.
#[derive(Debug)]
pub struct PartitionedIndex {
    store: DiskKvStore<(u32, Posting)>,
    prefix: String,
    /// Contiguous term ids per partition.
    span: u32,
    num_partitions: usize,
    num_entries: usize,
    cache: SharedCache<IndexPartition>,
}

impl PartitionedIndex {
    /// Partitions `postings` by contiguous term-id ranges and writes each
    /// non-empty partition as one dataset (`{prefix}/part-{p}`), returning
    /// the read handle.
    ///
    /// The records are moved, grouped and written — never re-sorted across
    /// terms: within a term the engine's deterministic merge order (doc
    /// ascending) is preserved as-is.
    pub fn write(
        store: &DatasetStore,
        prefix: &str,
        postings: Vec<(u32, Posting)>,
        vocab_size: usize,
    ) -> Self {
        let num_entries = postings.len();
        let num_partitions = num_entries.div_ceil(TARGET_ENTRIES_PER_PARTITION).max(1);
        let span = (vocab_size.div_ceil(num_partitions).max(1)) as u32;
        // Re-derive the partition count from the span so every term id in
        // 0..vocab_size maps to a partition index below `num_partitions`.
        let num_partitions = vocab_size.div_ceil(span as usize).max(1);

        let mut buckets: Vec<Vec<(u32, Posting)>> =
            (0..num_partitions).map(|_| Vec::new()).collect();
        for record in postings {
            let p = ((record.0 / span) as usize).min(num_partitions - 1);
            buckets[p].push(record);
        }
        let typed: DiskKvStore<(u32, Posting)> = DiskKvStore::from_store(store.clone());
        for (p, mut bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            // The reduce output interleaves terms of different engine
            // partitions; a stable sort by term restores term order while
            // keeping each term's postings in their deterministic doc
            // order.
            bucket.sort_by_key(|(term, _)| *term);
            typed.write(&format!("{prefix}/part-{p}"), bucket);
        }
        PartitionedIndex {
            store: typed,
            prefix: prefix.to_string(),
            span,
            num_partitions,
            num_entries,
            cache: SharedCache::default(),
        }
    }

    /// The partition a term id falls into.
    pub fn partition_of(&self, term: TermId) -> usize {
        ((term.0 / self.span) as usize).min(self.num_partitions - 1)
    }

    /// Opens (or returns the cached copy of) partition `p`.  Partitions
    /// with no indexed term read as empty.  Concurrent misses on the same
    /// partition share one disk read.
    pub fn partition(&self, p: usize) -> Arc<IndexPartition> {
        self.cache.get_or_load(p, || {
            IndexPartition::from_records(self.store.read(&format!("{}/part-{p}", self.prefix)))
        })
    }

    /// Appends postings to the partitions their terms fall into, creating
    /// missing partition files and invalidating only the touched cache
    /// entries.  Terms beyond the build-time vocabulary clamp into the
    /// last partition, exactly as [`PartitionedIndex::partition_of`] routes
    /// their lookups.
    pub fn append(&mut self, postings: Vec<(u32, Posting)>) {
        if postings.is_empty() {
            return;
        }
        self.num_entries += postings.len();
        let mut buckets: HashMap<usize, Vec<(u32, Posting)>> = HashMap::new();
        for record in postings {
            let p = ((record.0 / self.span) as usize).min(self.num_partitions - 1);
            buckets.entry(p).or_default().push(record);
        }
        for (p, mut bucket) in buckets {
            bucket.sort_by_key(|(term, _)| *term);
            self.store
                .append(&format!("{}/part-{p}", self.prefix), bucket);
            self.cache.invalidate(p);
        }
    }

    /// Number of term-range partitions (including empty ones).
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Number of indexed `(term, doc)` entries across all partitions.
    pub fn num_entries(&self) -> usize {
        self.num_entries
    }

    /// Number of partition reads that actually went to disk (cache misses,
    /// after coalescing concurrent misses into one read).
    pub fn disk_reads(&self) -> u64 {
        self.cache.disk_reads()
    }
}

// ---------------------------------------------------------------------------
// Chunked vector store
// ---------------------------------------------------------------------------

/// A corpus persisted as fixed-size chunks of [`SparseVector`]s, with
/// random access by dense index through a bounded chunk cache.
#[derive(Debug)]
pub struct DiskVectorStore {
    store: DiskKvStore<SparseVector>,
    prefix: String,
    len: usize,
    cache: SharedCache<Vec<SparseVector>>,
}

impl DiskVectorStore {
    /// Writes `vectors` in chunks under `{prefix}/chunk-{c}` and returns
    /// the read handle.
    pub fn write(store: &DatasetStore, prefix: &str, vectors: &[SparseVector]) -> Self {
        let typed: DiskKvStore<SparseVector> = DiskKvStore::from_store(store.clone());
        for (c, chunk) in vectors.chunks(VECTOR_CHUNK).enumerate() {
            typed.write(&format!("{prefix}/chunk-{c}"), chunk.to_vec());
        }
        DiskVectorStore {
            store: typed,
            prefix: prefix.to_string(),
            len: vectors.len(),
            cache: SharedCache::default(),
        }
    }

    /// Appends `vectors` at the end of the store.  The last chunk is
    /// rewritten when partial (and its cache entry invalidated); full new
    /// chunks are written as fresh datasets.
    pub fn append(&mut self, vectors: &[SparseVector]) {
        if vectors.is_empty() {
            return;
        }
        let first = self.len / VECTOR_CHUNK;
        let mut pending = if self.len.is_multiple_of(VECTOR_CHUNK) {
            Vec::new()
        } else {
            self.store.read(&format!("{}/chunk-{first}", self.prefix))
        };
        pending.extend_from_slice(vectors);
        for (offset, chunk) in pending.chunks(VECTOR_CHUNK).enumerate() {
            let c = first + offset;
            self.store
                .write(&format!("{}/chunk-{c}", self.prefix), chunk.to_vec());
            self.cache.invalidate(c);
        }
        self.len += vectors.len();
    }

    /// Number of vectors in the store.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of chunk reads that actually went to disk (cache misses,
    /// after coalescing concurrent misses into one read).
    pub fn disk_reads(&self) -> u64 {
        self.cache.disk_reads()
    }

    fn chunk(&self, c: usize) -> Arc<Vec<SparseVector>> {
        self.cache
            .get_or_load(c, || self.store.read(&format!("{}/chunk-{c}", self.prefix)))
    }

    /// Calls `f` with the vector at dense index `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn with_vector<R>(&self, i: usize, f: impl FnOnce(&SparseVector) -> R) -> R {
        assert!(i < self.len, "vector index {i} out of range ({})", self.len);
        let chunk = self.chunk(i / VECTOR_CHUNK);
        f(&chunk[i % VECTOR_CHUNK])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> DatasetStore {
        let root =
            std::env::temp_dir().join(format!("smr-simjoin-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        DatasetStore::open(root).unwrap()
    }

    fn posting(doc: usize, weight: f64) -> Posting {
        Posting {
            doc,
            weight,
            bound: 0.0,
        }
    }

    #[test]
    fn partitioned_index_round_trips_and_ranges_terms() {
        let store = temp_store("index");
        // 3 terms spread over a vocabulary of 10; tiny target sizes are
        // irrelevant here (everything fits one partition anyway).
        let postings = vec![
            (7, posting(1, 0.5)),
            (0, posting(0, 0.9)),
            (0, posting(2, 0.4)),
            (9, posting(0, 0.1)),
        ];
        let index = PartitionedIndex::write(&store, "idx", postings, 10);
        assert_eq!(index.num_entries(), 4);
        assert!(index.num_partitions() >= 1);
        let p0 = index.partition(index.partition_of(TermId(0)));
        assert_eq!(p0.postings(0).len(), 2);
        // Doc order within a term is preserved, not re-sorted.
        assert_eq!(p0.postings(0).get(0).doc, 0);
        assert_eq!(p0.postings(0).get(1).doc, 2);
        let p9 = index.partition(index.partition_of(TermId(9)));
        assert_eq!(p9.postings(9).len(), 1);
        assert!(p9.postings(3).is_empty());
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn partitioned_index_splits_large_inputs_into_several_partitions() {
        let store = temp_store("split");
        let vocab = 50_000usize;
        let postings: Vec<(u32, Posting)> = (0..3 * TARGET_ENTRIES_PER_PARTITION)
            .map(|i| ((i % vocab) as u32, posting(i, 0.5)))
            .collect();
        let index = PartitionedIndex::write(&store, "idx", postings.clone(), vocab);
        assert!(index.num_partitions() > 1, "{}", index.num_partitions());
        // Every posting is found in its term's partition.
        for (term, p) in postings.iter().step_by(997) {
            let partition = index.partition(index.partition_of(TermId(*term)));
            assert!(partition.postings(*term).iter().any(|q| q.doc == p.doc));
        }
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn empty_index_and_out_of_range_partitions_read_as_empty() {
        let store = temp_store("empty");
        let index = PartitionedIndex::write(&store, "idx", Vec::new(), 0);
        assert_eq!(index.num_partitions(), 1);
        assert!(index.partition(0).is_empty());
        assert_eq!(index.partition_of(TermId(1234)), 0, "clamped to the last");
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn appended_postings_land_in_their_partition_and_refresh_the_cache() {
        let store = temp_store("append-index");
        let postings = vec![(0, posting(0, 0.9)), (7, posting(1, 0.5))];
        let mut index = PartitionedIndex::write(&store, "idx", postings, 10);
        // Warm the cache so the append has a stale entry to invalidate.
        let p = index.partition_of(TermId(0));
        assert_eq!(index.partition(p).postings(0).len(), 1);
        index.append(vec![
            (0, posting(5, 0.3)),
            (3, posting(4, 0.2)),
            // Beyond the build-time vocabulary: clamps to the last
            // partition, matching `partition_of` on the lookup side.
            (1234, posting(6, 0.1)),
        ]);
        assert_eq!(index.num_entries(), 5);
        let part = index.partition(p);
        assert_eq!(part.postings(0).len(), 2, "append visible after warm read");
        assert_eq!(part.postings(0).get(1).doc, 5, "appends keep arrival order");
        assert_eq!(part.postings(3).len(), 1);
        let last = index.partition(index.partition_of(TermId(1234)));
        assert_eq!(last.postings(1234).len(), 1);
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn vector_store_round_trips_across_chunk_boundaries() {
        let store = temp_store("vectors");
        let vectors: Vec<SparseVector> = (0..VECTOR_CHUNK + 3)
            .map(|i| SparseVector::from_entries([(TermId(i as u32), 1.0 + i as f64)]))
            .collect();
        let disk = DiskVectorStore::write(&store, "items", &vectors);
        assert_eq!(disk.len(), vectors.len());
        assert!(!disk.is_empty());
        for i in [0, 1, VECTOR_CHUNK - 1, VECTOR_CHUNK, VECTOR_CHUNK + 2] {
            disk.with_vector(i, |v| assert_eq!(v, &vectors[i], "vector {i}"));
        }
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn vector_store_append_rewrites_the_partial_chunk_and_extends() {
        let store = temp_store("append-vectors");
        let make = |i: usize| SparseVector::from_entries([(TermId(0), i as f64)]);
        let initial: Vec<SparseVector> = (0..VECTOR_CHUNK + 3).map(make).collect();
        let mut disk = DiskVectorStore::write(&store, "v", &initial);
        // Warm the partial chunk so the append must invalidate it.
        disk.with_vector(VECTOR_CHUNK + 2, |v| {
            assert_eq!(v.weight(TermId(0)), (VECTOR_CHUNK + 2) as f64)
        });
        let extra: Vec<SparseVector> = (initial.len()..2 * VECTOR_CHUNK + 5).map(make).collect();
        disk.append(&extra);
        assert_eq!(disk.len(), 2 * VECTOR_CHUNK + 5);
        for i in [
            0,
            VECTOR_CHUNK + 2,
            VECTOR_CHUNK + 3,
            2 * VECTOR_CHUNK,
            disk.len() - 1,
        ] {
            disk.with_vector(i, |v| {
                assert_eq!(v.weight(TermId(0)), i as f64, "vector {i}")
            });
        }
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn caches_stay_bounded_while_reads_stay_correct() {
        let store = temp_store("bounded");
        let vectors: Vec<SparseVector> = (0..(MAX_CACHED + 4) * VECTOR_CHUNK)
            .map(|i| SparseVector::from_entries([(TermId(0), i as f64)]))
            .collect();
        let disk = DiskVectorStore::write(&store, "v", &vectors);
        // Touch every chunk (more than the cache holds), then re-read.
        for i in (0..vectors.len()).step_by(VECTOR_CHUNK) {
            disk.with_vector(i, |v| assert_eq!(v.weight(TermId(0)), i as f64));
        }
        assert!(disk.cache.state.lock().unwrap().blocks.len() <= MAX_CACHED);
        disk.with_vector(0, |v| assert_eq!(v.weight(TermId(0)), 0.0));
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn eviction_is_reuse_aware_not_insertion_order() {
        let store = temp_store("lru");
        let vectors: Vec<SparseVector> = (0..(MAX_CACHED + 2) * VECTOR_CHUNK)
            .map(|i| SparseVector::from_entries([(TermId(0), i as f64)]))
            .collect();
        let disk = DiskVectorStore::write(&store, "v", &vectors);
        // Fill the cache with chunks 0..MAX_CACHED.
        for c in 0..MAX_CACHED {
            disk.with_vector(c * VECTOR_CHUNK, |_| ());
        }
        assert_eq!(disk.disk_reads(), MAX_CACHED as u64);
        // Re-touch chunk 0: under FIFO it would still be evicted next;
        // under LRU the eviction victim becomes chunk 1.
        disk.with_vector(0, |_| ());
        disk.with_vector(MAX_CACHED * VECTOR_CHUNK, |_| ());
        assert_eq!(disk.disk_reads(), MAX_CACHED as u64 + 1);
        // Chunk 0 survived the eviction...
        disk.with_vector(0, |_| ());
        assert_eq!(disk.disk_reads(), MAX_CACHED as u64 + 1);
        // ...chunk 1 did not.
        disk.with_vector(VECTOR_CHUNK, |_| ());
        assert_eq!(disk.disk_reads(), MAX_CACHED as u64 + 2);
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn concurrent_misses_share_one_disk_read_per_partition() {
        let store = temp_store("stampede");
        // Terms cover the whole vocabulary so every partition is non-empty.
        let vocab = 3 * TARGET_ENTRIES_PER_PARTITION;
        let postings: Vec<(u32, Posting)> =
            (0..vocab).map(|i| (i as u32, posting(i, 0.5))).collect();
        let index = PartitionedIndex::write(&store, "idx", postings, vocab);
        let partitions = index.num_partitions();
        assert!(partitions > 1 && partitions <= MAX_CACHED);

        let threads = 8;
        let barrier = std::sync::Barrier::new(threads);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    // All threads rush every partition at once: without the
                    // in-flight guard each miss would decode its own copy.
                    barrier.wait();
                    for p in 0..partitions {
                        assert!(!index.partition(p).is_empty());
                    }
                });
            }
        });
        assert_eq!(
            index.disk_reads(),
            partitions as u64,
            "each partition must be read from disk exactly once"
        );
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vector_store_rejects_out_of_range_indices() {
        let store = temp_store("range");
        let disk = DiskVectorStore::write(&store, "v", &[]);
        disk.with_vector(0, |_| ());
    }
}
