//! Disk-backed side data of the streaming join.
//!
//! The two artifacts the join used to hold wholesale in memory now live in
//! a [`DatasetStore`] (normally a flow's side store) and are opened on
//! demand:
//!
//! * [`PartitionedIndex`] — job 1's pruned inverted index, persisted in
//!   **term-range partitions**.  A probe mapper only opens the partitions
//!   its query terms fall into, so a mapper's working set is a handful of
//!   partitions instead of the whole index.
//! * [`DiskVectorStore`] — a corpus as fixed-size **vector chunks**.  The
//!   verify reducer fetches the two vectors of a surviving candidate from
//!   here instead of holding `Arc` clones of both corpora.
//!
//! Both keep a small bounded FIFO cache of decoded partitions/chunks
//! behind a mutex, so repeated lookups stay cheap while memory stays
//! bounded at any corpus size.  Caching only affects speed: every lookup
//! returns exactly what was written, whatever was evicted in between.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use smr_storage::{DatasetStore, DiskKvStore};
use smr_text::{SparseVector, TermId};

use crate::index::Posting;

/// Target number of postings per index partition.
const TARGET_ENTRIES_PER_PARTITION: usize = 4 * 1024;

/// Vectors per corpus chunk.
const VECTOR_CHUNK: usize = 256;

/// Decoded partitions / chunks kept in memory per handle.
const MAX_CACHED: usize = 16;

/// A bounded FIFO cache of decoded side-data blocks.
#[derive(Debug, Default)]
struct BlockCache<T> {
    blocks: HashMap<usize, Arc<T>>,
    order: VecDeque<usize>,
}

impl<T> BlockCache<T> {
    fn get(&self, key: usize) -> Option<Arc<T>> {
        self.blocks.get(&key).cloned()
    }

    fn insert(&mut self, key: usize, block: Arc<T>) {
        if self.blocks.insert(key, block).is_none() {
            self.order.push_back(key);
            while self.order.len() > MAX_CACHED {
                if let Some(evicted) = self.order.pop_front() {
                    self.blocks.remove(&evicted);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Partitioned inverted index
// ---------------------------------------------------------------------------

/// One decoded term-range partition: postings lists sorted by term id.
#[derive(Debug, Default)]
pub struct IndexPartition {
    terms: Vec<(u32, Vec<Posting>)>,
}

impl IndexPartition {
    fn from_records(records: Vec<(u32, Posting)>) -> Self {
        let mut terms: Vec<(u32, Vec<Posting>)> = Vec::new();
        for (term, posting) in records {
            match terms.last_mut() {
                Some((last, list)) if *last == term => list.push(posting),
                _ => terms.push((term, vec![posting])),
            }
        }
        IndexPartition { terms }
    }

    /// The postings of `term` (empty when the term is not indexed).
    pub fn postings(&self, term: u32) -> &[Posting] {
        self.terms
            .binary_search_by_key(&term, |(t, _)| *t)
            .map(|i| self.terms[i].1.as_slice())
            .unwrap_or(&[])
    }

    /// The postings lists of this partition, sorted by term id.
    pub fn terms(&self) -> &[(u32, Vec<Posting>)] {
        &self.terms
    }

    /// Number of distinct indexed terms in this partition.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Whether the partition indexes nothing.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// The pruned inverted index, persisted as term-range partitions in a
/// [`DatasetStore`] and opened partition-by-partition on demand.
#[derive(Debug)]
pub struct PartitionedIndex {
    store: DiskKvStore<(u32, Posting)>,
    prefix: String,
    /// Contiguous term ids per partition.
    span: u32,
    num_partitions: usize,
    num_entries: usize,
    cache: Mutex<BlockCache<IndexPartition>>,
}

impl PartitionedIndex {
    /// Partitions `postings` by contiguous term-id ranges and writes each
    /// non-empty partition as one dataset (`{prefix}/part-{p}`), returning
    /// the read handle.
    ///
    /// The records are moved, grouped and written — never re-sorted across
    /// terms: within a term the engine's deterministic merge order (doc
    /// ascending) is preserved as-is.
    pub fn write(
        store: &DatasetStore,
        prefix: &str,
        postings: Vec<(u32, Posting)>,
        vocab_size: usize,
    ) -> Self {
        let num_entries = postings.len();
        let num_partitions = num_entries.div_ceil(TARGET_ENTRIES_PER_PARTITION).max(1);
        let span = (vocab_size.div_ceil(num_partitions).max(1)) as u32;
        // Re-derive the partition count from the span so every term id in
        // 0..vocab_size maps to a partition index below `num_partitions`.
        let num_partitions = vocab_size.div_ceil(span as usize).max(1);

        let mut buckets: Vec<Vec<(u32, Posting)>> =
            (0..num_partitions).map(|_| Vec::new()).collect();
        for record in postings {
            let p = ((record.0 / span) as usize).min(num_partitions - 1);
            buckets[p].push(record);
        }
        let typed: DiskKvStore<(u32, Posting)> = DiskKvStore::from_store(store.clone());
        for (p, mut bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            // The reduce output interleaves terms of different engine
            // partitions; a stable sort by term restores term order while
            // keeping each term's postings in their deterministic doc
            // order.
            bucket.sort_by_key(|(term, _)| *term);
            typed.write(&format!("{prefix}/part-{p}"), bucket);
        }
        PartitionedIndex {
            store: typed,
            prefix: prefix.to_string(),
            span,
            num_partitions,
            num_entries,
            cache: Mutex::new(BlockCache::default()),
        }
    }

    /// The partition a term id falls into.
    pub fn partition_of(&self, term: TermId) -> usize {
        ((term.0 / self.span) as usize).min(self.num_partitions - 1)
    }

    /// Opens (or returns the cached copy of) partition `p`.  Partitions
    /// with no indexed term read as empty.
    pub fn partition(&self, p: usize) -> Arc<IndexPartition> {
        if let Some(partition) = self.cache.lock().expect("index cache poisoned").get(p) {
            return partition;
        }
        let records = self.store.read(&format!("{}/part-{p}", self.prefix));
        let partition = Arc::new(IndexPartition::from_records(records));
        self.cache
            .lock()
            .expect("index cache poisoned")
            .insert(p, Arc::clone(&partition));
        partition
    }

    /// Number of term-range partitions (including empty ones).
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Number of indexed `(term, doc)` entries across all partitions.
    pub fn num_entries(&self) -> usize {
        self.num_entries
    }
}

// ---------------------------------------------------------------------------
// Chunked vector store
// ---------------------------------------------------------------------------

/// A corpus persisted as fixed-size chunks of [`SparseVector`]s, with
/// random access by dense index through a bounded chunk cache.
#[derive(Debug)]
pub struct DiskVectorStore {
    store: DiskKvStore<SparseVector>,
    prefix: String,
    len: usize,
    cache: Mutex<BlockCache<Vec<SparseVector>>>,
}

impl DiskVectorStore {
    /// Writes `vectors` in chunks under `{prefix}/chunk-{c}` and returns
    /// the read handle.
    pub fn write(store: &DatasetStore, prefix: &str, vectors: &[SparseVector]) -> Self {
        let typed: DiskKvStore<SparseVector> = DiskKvStore::from_store(store.clone());
        for (c, chunk) in vectors.chunks(VECTOR_CHUNK).enumerate() {
            typed.write(&format!("{prefix}/chunk-{c}"), chunk.to_vec());
        }
        DiskVectorStore {
            store: typed,
            prefix: prefix.to_string(),
            len: vectors.len(),
            cache: Mutex::new(BlockCache::default()),
        }
    }

    /// Number of vectors in the store.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn chunk(&self, c: usize) -> Arc<Vec<SparseVector>> {
        if let Some(chunk) = self.cache.lock().expect("vector cache poisoned").get(c) {
            return chunk;
        }
        let chunk = Arc::new(self.store.read(&format!("{}/chunk-{c}", self.prefix)));
        self.cache
            .lock()
            .expect("vector cache poisoned")
            .insert(c, Arc::clone(&chunk));
        chunk
    }

    /// Calls `f` with the vector at dense index `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn with_vector<R>(&self, i: usize, f: impl FnOnce(&SparseVector) -> R) -> R {
        assert!(i < self.len, "vector index {i} out of range ({})", self.len);
        let chunk = self.chunk(i / VECTOR_CHUNK);
        f(&chunk[i % VECTOR_CHUNK])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> DatasetStore {
        let root =
            std::env::temp_dir().join(format!("smr-simjoin-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        DatasetStore::open(root).unwrap()
    }

    fn posting(doc: usize, weight: f64) -> Posting {
        Posting {
            doc,
            weight,
            bound: 0.0,
        }
    }

    #[test]
    fn partitioned_index_round_trips_and_ranges_terms() {
        let store = temp_store("index");
        // 3 terms spread over a vocabulary of 10; tiny target sizes are
        // irrelevant here (everything fits one partition anyway).
        let postings = vec![
            (7, posting(1, 0.5)),
            (0, posting(0, 0.9)),
            (0, posting(2, 0.4)),
            (9, posting(0, 0.1)),
        ];
        let index = PartitionedIndex::write(&store, "idx", postings, 10);
        assert_eq!(index.num_entries(), 4);
        assert!(index.num_partitions() >= 1);
        let p0 = index.partition(index.partition_of(TermId(0)));
        assert_eq!(p0.postings(0).len(), 2);
        // Doc order within a term is preserved, not re-sorted.
        assert_eq!(p0.postings(0)[0].doc, 0);
        assert_eq!(p0.postings(0)[1].doc, 2);
        let p9 = index.partition(index.partition_of(TermId(9)));
        assert_eq!(p9.postings(9).len(), 1);
        assert!(p9.postings(3).is_empty());
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn partitioned_index_splits_large_inputs_into_several_partitions() {
        let store = temp_store("split");
        let vocab = 50_000usize;
        let postings: Vec<(u32, Posting)> = (0..3 * TARGET_ENTRIES_PER_PARTITION)
            .map(|i| ((i % vocab) as u32, posting(i, 0.5)))
            .collect();
        let index = PartitionedIndex::write(&store, "idx", postings.clone(), vocab);
        assert!(index.num_partitions() > 1, "{}", index.num_partitions());
        // Every posting is found in its term's partition.
        for (term, p) in postings.iter().step_by(997) {
            let partition = index.partition(index.partition_of(TermId(*term)));
            assert!(partition.postings(*term).iter().any(|q| q.doc == p.doc));
        }
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn empty_index_and_out_of_range_partitions_read_as_empty() {
        let store = temp_store("empty");
        let index = PartitionedIndex::write(&store, "idx", Vec::new(), 0);
        assert_eq!(index.num_partitions(), 1);
        assert!(index.partition(0).is_empty());
        assert_eq!(index.partition_of(TermId(1234)), 0, "clamped to the last");
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn vector_store_round_trips_across_chunk_boundaries() {
        let store = temp_store("vectors");
        let vectors: Vec<SparseVector> = (0..VECTOR_CHUNK + 3)
            .map(|i| SparseVector::from_entries([(TermId(i as u32), 1.0 + i as f64)]))
            .collect();
        let disk = DiskVectorStore::write(&store, "items", &vectors);
        assert_eq!(disk.len(), vectors.len());
        assert!(!disk.is_empty());
        for i in [0, 1, VECTOR_CHUNK - 1, VECTOR_CHUNK, VECTOR_CHUNK + 2] {
            disk.with_vector(i, |v| assert_eq!(v, &vectors[i], "vector {i}"));
        }
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn caches_stay_bounded_while_reads_stay_correct() {
        let store = temp_store("bounded");
        let vectors: Vec<SparseVector> = (0..(MAX_CACHED + 4) * VECTOR_CHUNK)
            .map(|i| SparseVector::from_entries([(TermId(0), i as f64)]))
            .collect();
        let disk = DiskVectorStore::write(&store, "v", &vectors);
        // Touch every chunk (more than the cache holds), then re-read.
        for i in (0..vectors.len()).step_by(VECTOR_CHUNK) {
            disk.with_vector(i, |v| assert_eq!(v.weight(TermId(0)), i as f64));
        }
        assert!(disk.cache.lock().unwrap().blocks.len() <= MAX_CACHED);
        disk.with_vector(0, |v| assert_eq!(v.weight(TermId(0)), 0.0));
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vector_store_rejects_out_of_range_indices() {
        let store = temp_store("range");
        let disk = DiskVectorStore::write(&store, "v", &[]);
        disk.with_vector(0, |_| ());
    }
}
