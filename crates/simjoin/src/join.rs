//! The two-round MapReduce similarity join (adaptation of Baraglia et al.
//! to the bipartite item × consumer case), streaming end to end.
//!
//! * **Job 1 — indexing**: every consumer vector is mapped to
//!   `(term, posting)` pairs for the terms of its prefix only; each
//!   posting carries the consumer's *suffix remainder bound* (what the
//!   pruned tail of its vector could still contribute to any dot product).
//!   The reducer streams the grouped postings through unchanged — the
//!   engine's deterministic merge already delivers them in doc order — and
//!   the index is persisted in **term-range partitions** through the
//!   flow's side [`smr_storage::DatasetStore`].
//! * **Job 2 — probing and verification with partial products**: every
//!   item probes only the index partitions its terms fall into (opened on
//!   demand, never the whole index), accumulating
//!   `w_item · w_consumer` **partial products** per candidate.  A
//!   candidate whose accumulated score plus remainder bound cannot reach σ
//!   is pruned *before the shuffle* — it never becomes a record.  The
//!   summing `PartialScoreCombiner` keeps the per-pair accumulation
//!   correct at any engine granularity, and the verify reducer thresholds
//!   the accumulated score once more, fetching the two vectors of a
//!   surviving pair from the flow's chunked [`DiskVectorStore`] — it holds
//!   no `Arc` of either corpus — for the exact dot product.
//!
//! The two jobs run as one lazy [`Dataset`](smr_mapreduce::flow::Dataset)
//! chain over a shared [`FlowContext`]; the probe job reports the join's
//! domain counters ([`counter`]) — `candidates_pruned`, `verify_exact`,
//! `index_partitions` — in its [`JobMetrics::user_counters`].
//!
//! The output is the candidate-edge [`BipartiteGraph`] handed to the
//! matching algorithms, byte-identical to an exact all-pairs join
//! thresholded at σ.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use smr_graph::{BipartiteGraph, GraphBuilder};
use smr_mapreduce::flow::FlowContext;
use smr_mapreduce::{Combiner, Counters, Emitter, JobConfig, JobMetrics, Mapper, Reducer};
use smr_storage::impl_codec_struct;
use smr_text::{Corpus, SparseVector, TermId};

use crate::accum::ScoreAccumulator;
use crate::index::Posting;
use crate::prefix::{prefix_length, suffix_remainder_bound, term_max_weights};
use crate::store::{DiskVectorStore, IndexPartition, PartitionedIndex, PostingsRef};

/// Names of the join's domain counters, reported in the probe job's
/// [`JobMetrics::user_counters`].
pub mod counter {
    /// Candidate pairs discarded because accumulated partial products plus
    /// the remainder bound cannot reach σ — no vector fetch, no dot
    /// product (and, for the map-side majority, no shuffle record).
    pub const CANDIDATES_PRUNED: &str = "candidates_pruned";
    /// The subset of [`CANDIDATES_PRUNED`] discarded at the *reducer*:
    /// pairs whose accumulated evidence only revealed them unreachable
    /// after the shuffle.  Zero in the current dataflow (the mapper prunes
    /// on complete per-item scores), but kept separate so the candidate
    /// accounting cannot double-count a reduce-input group as a map-side
    /// prune if a future dataflow splits a pair's partials.
    pub const VERIFY_PRUNED: &str = "verify_pruned";
    /// Surviving candidates verified with an exact dot product against
    /// vectors fetched from the disk store.
    pub const VERIFY_EXACT: &str = "verify_exact";
    /// Term-range partitions job 1's index was persisted into.
    pub const INDEX_PARTITIONS: &str = "index_partitions";
}

/// Absolute slack subtracted from σ before a candidate is pruned on its
/// partial score.  Partial products are accumulated in a different
/// floating-point order than the exact verification dot product, so the
/// two can differ in the last bits; the slack keeps the prune strictly
/// conservative (a pair at exactly σ always survives to exact
/// verification) while remaining far below any meaningful similarity
/// difference of unit-normalized vectors.  Public so every candidate
/// generator prunes with the same conservativeness.
pub const PRUNE_SLACK: f64 = 1e-9;

/// Generator tag of the exact prefix-filter join in [`SimJoinResult`]
/// (recall = 1.0 by construction — it is the reference every sketch
/// generator is measured against).
pub const EXACT_GENERATOR: &str = "exact";

/// Configuration of the MapReduce similarity join.
#[derive(Debug, Clone)]
pub struct SimJoinConfig {
    /// Similarity threshold σ: only pairs with dot product ≥ σ become
    /// candidate edges.
    pub sigma: f64,
    /// MapReduce job configuration used by both jobs.
    pub job: JobConfig,
}

impl Default for SimJoinConfig {
    fn default() -> Self {
        SimJoinConfig {
            sigma: 0.1,
            job: JobConfig::named("simjoin"),
        }
    }
}

impl SimJoinConfig {
    /// Sets the similarity threshold.
    ///
    /// # Panics
    /// Panics if `sigma` is not strictly positive.
    pub fn with_threshold(mut self, sigma: f64) -> Self {
        assert!(sigma > 0.0, "threshold must be positive");
        self.sigma = sigma;
        self
    }

    /// Sets the MapReduce job configuration.
    pub fn with_job(mut self, job: JobConfig) -> Self {
        self.job = job;
        self
    }
}

/// Shuffle volume of one MapReduce stage of a candidate generator — the
/// same two fields for every stage of every generator, so a frontier table
/// can read generators' communication costs uniformly instead of fishing
/// in probe-path-specific counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageShuffle {
    /// The stage's job name (from the generator's `Dataset` chain).
    pub job_name: String,
    /// Records that crossed this stage's shuffle.
    pub records: u64,
    /// Bytes that crossed this stage's shuffle.
    pub bytes: u64,
}

/// The per-stage shuffle counters of a job sequence, in execution order.
pub fn stage_shuffles(job_metrics: &[JobMetrics]) -> Vec<StageShuffle> {
    job_metrics
        .iter()
        .map(|m| StageShuffle {
            job_name: m.job_name.clone(),
            records: m.shuffle_records,
            bytes: m.shuffle_bytes,
        })
        .collect()
}

/// Result of the MapReduce similarity join.
#[derive(Debug, Clone)]
pub struct SimJoinResult {
    /// Short tag of the candidate generator that produced this result
    /// (`"exact"` for the prefix-filter join; sketch generators tag their
    /// own — see the `smr_sketch` crate).
    pub generator: String,
    /// The candidate-edge graph (items × consumers, weights = similarity).
    pub graph: BipartiteGraph,
    /// Number of candidate pairs generated by probing, before any pruning
    /// or verification (what a dedup-only probe would have shuffled).
    pub candidate_pairs: usize,
    /// Candidates discarded on `partial score + remainder bound < σ`
    /// without a shuffle record or a vector fetch.
    pub candidates_pruned: usize,
    /// Candidates that reached exact verification (a vector fetch and a
    /// dot product each).
    pub verify_exact: usize,
    /// Term-range partitions the inverted index was persisted into (zero
    /// for generators that do not build an inverted index).
    pub index_partitions: usize,
    /// Number of (term, document) entries indexed by job 1 (after prefix
    /// pruning); for sketch generators, the size of whatever standing
    /// structure job 1 built (e.g. MinHash band postings).
    pub indexed_entries: usize,
    /// Per-stage shuffle volume, uniform across generators (derived from
    /// [`SimJoinResult::job_metrics`]).
    pub stage_shuffles: Vec<StageShuffle>,
    /// Total records shuffled across the generator's jobs.
    pub shuffled_records: u64,
    /// Total bytes shuffled across the generator's jobs.
    pub shuffled_bytes: u64,
    /// Metrics of the generator's MapReduce jobs.
    pub job_metrics: Vec<JobMetrics>,
}

impl SimJoinResult {
    /// Assembles a result from a generator's outputs, deriving the uniform
    /// per-stage and total shuffle counters from `job_metrics` — the one
    /// construction path shared by the exact join and every sketch
    /// generator, so the counters mean the same thing in every row of a
    /// frontier table.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        generator: impl Into<String>,
        graph: BipartiteGraph,
        candidate_pairs: usize,
        candidates_pruned: usize,
        verify_exact: usize,
        index_partitions: usize,
        indexed_entries: usize,
        job_metrics: Vec<JobMetrics>,
    ) -> Self {
        let stage_shuffles = stage_shuffles(&job_metrics);
        let shuffled_records = stage_shuffles.iter().map(|s| s.records).sum();
        let shuffled_bytes = stage_shuffles.iter().map(|s| s.bytes).sum();
        SimJoinResult {
            generator: generator.into(),
            graph,
            candidate_pairs,
            candidates_pruned,
            verify_exact,
            index_partitions,
            indexed_entries,
            stage_shuffles,
            shuffled_records,
            shuffled_bytes,
            job_metrics,
        }
    }
}

// ---------------------------------------------------------------------------
// Job 1: indexing
// ---------------------------------------------------------------------------

/// Job 1's mapper: emits each consumer's prefix postings (terms in the
/// global rarest-first order, prefix cut where the suffix bound drops
/// below σ, every posting carrying the suffix-remainder bound).  Public so
/// alternative candidate generators (the `smr_sketch` crate) can reuse the
/// exact index stage and differ only in how they probe it.
pub struct IndexMapper {
    consumers: Arc<[SparseVector]>,
    term_order_rank: Arc<Vec<u32>>,
    max_weights: Arc<Vec<f64>>,
    sigma: f64,
}

impl IndexMapper {
    /// Creates the index mapper over a shared consumer corpus.
    ///
    /// `term_order_rank` is the global prefix-filter term order (see
    /// [`rarest_first_rank`]); `max_weights` the per-term maxima of the
    /// *query* side the prefixes are pruned against.
    pub fn new(
        consumers: Arc<[SparseVector]>,
        term_order_rank: Arc<Vec<u32>>,
        max_weights: Arc<Vec<f64>>,
        sigma: f64,
    ) -> Self {
        IndexMapper {
            consumers,
            term_order_rank,
            max_weights,
            sigma,
        }
    }
}

impl Mapper for IndexMapper {
    type InKey = usize; // consumer dense index
    type InValue = usize; // ditto (the corpus itself rides in the mapper)
    type OutKey = u32; // term id
    type OutValue = Posting;

    fn map(&self, doc: &usize, _: &usize, out: &mut Emitter<u32, Posting>) {
        let vector = &self.consumers[*doc];
        let ordered = vector.terms_in_order(&self.term_order_rank);
        let plen = prefix_length(vector, &ordered, &self.max_weights, self.sigma);
        let bound = suffix_remainder_bound(vector, &ordered, plen, &self.max_weights);
        for term in &ordered[..plen] {
            out.emit(
                term.0,
                Posting {
                    doc: *doc,
                    weight: vector.weight(*term),
                    bound,
                },
            );
        }
    }
}

/// Streams each term's postings through unchanged.  The engine's merge is
/// deterministic — map tasks cover contiguous input ranges and runs merge
/// in task order — so the grouped postings already arrive in ascending doc
/// order; re-sorting (or cloning into per-term lists) would be pure waste.
#[derive(Debug, Default)]
pub struct IndexReducer;

impl Reducer for IndexReducer {
    type Key = u32;
    type InValue = Posting;
    type OutKey = u32;
    type OutValue = Posting;

    fn reduce(&self, term: &u32, postings: &[Posting], out: &mut Emitter<u32, Posting>) {
        debug_assert!(
            postings.windows(2).all(|w| w[0].doc <= w[1].doc),
            "the engine's merge must deliver postings in doc order"
        );
        for posting in postings {
            out.emit(*term, *posting);
        }
    }
}

// ---------------------------------------------------------------------------
// Job 2: probing + partial-product verification
// ---------------------------------------------------------------------------

/// The accumulated evidence for one candidate pair: the sum of partial
/// products over shared indexed terms, and the upper bound on what the
/// consumer's unindexed suffix could still add.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartialScore {
    /// `Σ w_item(t) · w_consumer(t)` over the shared indexed terms seen so
    /// far.
    pub score: f64,
    /// Upper bound on the unindexed remainder of the dot product (the
    /// consumer's suffix bound; every partial of a pair carries the same
    /// value).
    pub remainder: f64,
}

impl_codec_struct!(PartialScore { score, remainder });

struct ProbeMapper {
    items: Arc<[SparseVector]>,
    index: Arc<PartitionedIndex>,
    sigma: f64,
    counters: Counters,
}

/// Accumulates a query's partial products against one index partition —
/// the shared core of the batch probe mapper, the serving-time
/// [`crate::serving::ServingIndex`] point query, and the perf harness's
/// probe lane.  Both the query slice and the partition's term ranges are
/// sorted by term id; iterate whichever side is shorter and look the term
/// up on the other — and skip terms with empty postings before ever
/// entering the posting loop.  The inner loop walks the partition's
/// struct-of-arrays posting columns directly (see
/// [`crate::store::PostingsRef`]), folding into the open-addressed
/// [`ScoreAccumulator`].
#[doc(hidden)]
pub fn probe_partition(
    partition: &IndexPartition,
    query: &[(TermId, f64)],
    scores: &mut ScoreAccumulator,
) {
    fn accumulate(weight: f64, postings: PostingsRef<'_>, scores: &mut ScoreAccumulator) {
        for i in 0..postings.docs.len() {
            scores.accumulate(
                postings.docs[i],
                weight * postings.weights[i],
                postings.bounds[i],
            );
        }
    }
    if partition.num_terms() < query.len() {
        for (i, term) in partition.term_ids().iter().enumerate() {
            if let Ok(q) = query.binary_search_by_key(&TermId(*term), |&(t, _)| t) {
                accumulate(query[q].1, partition.postings_at(i), scores);
            }
        }
    } else {
        for &(term, weight) in query {
            let postings = partition.postings(term.0);
            if postings.is_empty() {
                continue;
            }
            accumulate(weight, postings, scores);
        }
    }
}

impl Mapper for ProbeMapper {
    type InKey = usize; // item dense index
    type InValue = usize; // ditto
    type OutKey = (usize, usize); // (item, consumer) candidate pair
    type OutValue = PartialScore;

    fn map(&self, item: &usize, _: &usize, out: &mut Emitter<(usize, usize), PartialScore>) {
        let entries = self.items[*item].entries();
        if entries.is_empty() {
            return;
        }
        // All of an item's probes happen in this one call, so the partial
        // products accumulate locally (in ascending term order — the
        // floating-point sum is scheduling-independent) and the
        // suffix-bound prune can run on *complete* scores before anything
        // is emitted: a pruned candidate never crosses the shuffle.
        let mut scores = ScoreAccumulator::new();
        let mut start = 0;
        while start < entries.len() {
            let p = self.index.partition_of(entries[start].0);
            let mut end = start + 1;
            while end < entries.len() && self.index.partition_of(entries[end].0) == p {
                end += 1;
            }
            let partition = self.index.partition(p);
            if !partition.is_empty() {
                probe_partition(&partition, &entries[start..end], &mut scores);
            }
            start = end;
        }
        let candidates = scores.drain_sorted();
        let mut pruned = 0u64;
        for (doc, partial) in candidates {
            if partial.score + partial.remainder >= self.sigma - PRUNE_SLACK {
                out.emit((*item, doc), partial);
            } else {
                pruned += 1;
            }
        }
        if pruned > 0 {
            self.counters.add(counter::CANDIDATES_PRUNED, pruned);
        }
    }
}

/// Map-side combiner of job 2: partial products of the same pair **sum**
/// (and the remainder bounds — identical by construction — take their
/// max), so however the engine slices a pair's records across buffers,
/// spills and runs, exactly one accumulated record per candidate reaches
/// the reducer, carrying the full prefix score.
#[derive(Debug, Default)]
pub struct PartialScoreCombiner;

impl Combiner for PartialScoreCombiner {
    type Key = (usize, usize);
    type Value = PartialScore;

    fn combine(&self, _pair: &(usize, usize), partials: &[PartialScore]) -> Vec<PartialScore> {
        let mut total = PartialScore {
            score: 0.0,
            remainder: 0.0,
        };
        for partial in partials {
            total.score += partial.score;
            total.remainder = total.remainder.max(partial.remainder);
        }
        vec![total]
    }
}

/// Verifies surviving candidates exactly.  The reducer holds **no**
/// in-memory copy of either corpus: the accumulated score is thresholded
/// first (a pair that cannot reach σ is dropped without any fetch), and
/// only survivors cost a chunked read from the [`DiskVectorStore`]s plus
/// one exact dot product.  Public so sketch generators can close their
/// chains with the same exact-verification stage (emitted candidates
/// carry true, bit-identical scores whatever generated them).
pub struct VerifyReducer {
    items: DiskVectorStore,
    consumers: DiskVectorStore,
    sigma: f64,
    counters: Counters,
}

impl VerifyReducer {
    /// Creates a verify reducer fetching survivor vectors from the two
    /// chunked disk stores, reporting [`counter::VERIFY_EXACT`] /
    /// [`counter::CANDIDATES_PRUNED`] into `counters`.
    pub fn new(
        items: DiskVectorStore,
        consumers: DiskVectorStore,
        sigma: f64,
        counters: Counters,
    ) -> Self {
        VerifyReducer {
            items,
            consumers,
            sigma,
            counters,
        }
    }
}

impl Reducer for VerifyReducer {
    type Key = (usize, usize);
    type InValue = PartialScore;
    type OutKey = (usize, usize);
    type OutValue = f64;

    fn reduce(
        &self,
        pair: &(usize, usize),
        partials: &[PartialScore],
        out: &mut Emitter<(usize, usize), f64>,
    ) {
        let mut score = 0.0;
        let mut remainder = 0.0f64;
        for partial in partials {
            score += partial.score;
            remainder = remainder.max(partial.remainder);
        }
        if score + remainder < self.sigma - PRUNE_SLACK {
            // Map-side pruning already catches this in the current
            // dataflow; the guard keeps the reducer correct on its own
            // terms (it sees only accumulated evidence, never vectors).
            // VERIFY_PRUNED marks it as a post-shuffle prune so the
            // candidate accounting can tell it apart from map-side ones.
            self.counters.add(counter::CANDIDATES_PRUNED, 1);
            self.counters.add(counter::VERIFY_PRUNED, 1);
            return;
        }
        let (item, consumer) = *pair;
        self.counters.add(counter::VERIFY_EXACT, 1);
        let similarity = self
            .items
            .with_vector(item, |x| self.consumers.with_vector(consumer, |y| x.dot(y)));
        if similarity >= self.sigma {
            out.emit(*pair, similarity);
        }
    }
}

/// Runs the two-job MapReduce similarity join between item and consumer
/// corpora that share a vocabulary-independent term space.
///
/// The two corpora are first re-vectorized over a shared vocabulary (they
/// are usually built independently, so their term ids would not otherwise
/// line up); pre-aligned vectors can be joined directly with
/// [`mapreduce_similarity_join_vectors`].
pub fn mapreduce_similarity_join(
    items: &Corpus,
    consumers: &Corpus,
    config: &SimJoinConfig,
) -> SimJoinResult {
    let flow = FlowContext::new(config.job.clone());
    mapreduce_similarity_join_flow(items, consumers, config.sigma, &flow)
}

/// Runs the two-job join through a caller-provided [`FlowContext`]: both
/// jobs execute as one lazy `Dataset` chain under the flow's `JobConfig`
/// and report into the flow's [`smr_mapreduce::FlowReport`] alongside any
/// other jobs of the surrounding pipeline.
pub fn mapreduce_similarity_join_flow(
    items: &Corpus,
    consumers: &Corpus,
    sigma: f64,
    flow: &FlowContext,
) -> SimJoinResult {
    let (item_vectors, consumer_vectors) = align_vector_spaces(items, consumers);
    mapreduce_similarity_join_vectors_flow(
        &item_vectors,
        &consumer_vectors,
        &item_labels(items),
        &consumer_labels(consumers),
        sigma,
        flow,
    )
}

/// Runs the join directly on pre-vectorized inputs (both sides must share
/// the same term space).
pub fn mapreduce_similarity_join_vectors(
    item_vectors: &[SparseVector],
    consumer_vectors: &[SparseVector],
    item_names: &[String],
    consumer_names: &[String],
    config: &SimJoinConfig,
) -> SimJoinResult {
    let flow = FlowContext::new(config.job.clone());
    mapreduce_similarity_join_vectors_flow(
        item_vectors,
        consumer_vectors,
        item_names,
        consumer_names,
        config.sigma,
        &flow,
    )
}

/// The core of the join: a two-stage [`Dataset`](smr_mapreduce::flow::Dataset)
/// chain over `flow`, streaming its side data through the flow's side
/// store.
///
/// Each corpus enters the chain exactly once, behind a shared
/// `Arc<[SparseVector]>` riding in the job's mapper (the job *inputs* are
/// just dense indices), and is additionally persisted as chunked vector
/// datasets for the verify stage.  Stage 1 (`…-index`) builds the pruned
/// inverted index; the chain's `then` combinator persists it in term-range
/// partitions and constructs stage 2 (`…-probe`) around the partition
/// handle: on-demand probing, partial-product accumulation with map-side
/// suffix-bound pruning, summing combiner, and exact verification against
/// the disk-backed vectors.  Records flow between the stages by move;
/// nothing executes until the terminal `collect`.
pub fn mapreduce_similarity_join_vectors_flow(
    item_vectors: &[SparseVector],
    consumer_vectors: &[SparseVector],
    item_names: &[String],
    consumer_names: &[String],
    sigma: f64,
    flow: &FlowContext,
) -> SimJoinResult {
    assert_eq!(item_vectors.len(), item_names.len());
    assert_eq!(consumer_vectors.len(), consumer_names.len());
    assert!(sigma > 0.0, "threshold must be positive");

    let vocab_size = item_vectors
        .iter()
        .chain(consumer_vectors.iter())
        .flat_map(|v| v.entries().iter().map(|(t, _)| t.index() + 1))
        .max()
        .unwrap_or(0);
    let max_weights = Arc::new(term_max_weights(item_vectors, vocab_size));
    let term_order_rank = Arc::new(rarest_first_rank(
        item_vectors,
        consumer_vectors,
        vocab_size,
    ));

    // One shared copy of each corpus; the per-job clones of the old
    // dataflow are gone (job inputs are index lists).
    let items: Arc<[SparseVector]> = item_vectors.into();
    let consumers: Arc<[SparseVector]> = consumer_vectors.into();

    let jobs_start = flow.num_jobs();
    let side = flow.side_store();
    // Unique per join within this flow, so chained joins never collide.
    let side_prefix = format!("simjoin-{jobs_start}");
    let item_store = DiskVectorStore::write(&side, &format!("{side_prefix}/items"), &items);
    let consumer_store =
        DiskVectorStore::write(&side, &format!("{side_prefix}/consumers"), &consumers);

    let counters = Counters::new();
    // `then` runs inside the lazy plan, so the index size is smuggled out
    // through a shared cell instead of a return value.
    let indexed_entries = Arc::new(AtomicUsize::new(0));
    let indexed_entries_probe = Arc::clone(&indexed_entries);

    let index_input: Vec<(usize, usize)> = (0..consumers.len()).map(|i| (i, i)).collect();
    let probe_input: Vec<(usize, usize)> = (0..items.len()).map(|i| (i, i)).collect();
    let probe_items = Arc::clone(&items);
    let probe_counters = counters.clone();
    let side_index = side.clone();
    let index_prefix = format!("{side_prefix}/index");

    let verified = flow
        .dataset(index_input)
        .map_with(IndexMapper {
            consumers: Arc::clone(&consumers),
            term_order_rank,
            max_weights,
            sigma,
        })
        .named("index")
        .reduce_with(IndexReducer)
        .then(move |postings, flow| {
            // Job 1's output becomes job 2's side data: the index goes to
            // the flow's side store in term-range partitions that probe
            // mappers open on demand (the distributed-cache role, without
            // shipping the whole index to every mapper).
            indexed_entries_probe.store(postings.len(), Ordering::Relaxed);
            let index = Arc::new(PartitionedIndex::write(
                &side_index,
                &index_prefix,
                postings,
                vocab_size,
            ));
            probe_counters.add(counter::INDEX_PARTITIONS, index.num_partitions() as u64);
            flow.dataset(probe_input)
                .map_with(ProbeMapper {
                    items: probe_items,
                    index,
                    sigma,
                    counters: probe_counters.clone(),
                })
                .named("probe")
                .combined_with(PartialScoreCombiner)
                .with_counters(probe_counters.clone())
                .reduce_with(VerifyReducer {
                    items: item_store,
                    consumers: consumer_store,
                    sigma,
                    counters: probe_counters,
                })
        })
        .collect();

    // This join's side data (index partitions, vector chunks) is dead once
    // the chain has run; reclaim it now instead of at flow drop.
    let dataset_prefix = format!("{side_prefix}/");
    for path in side.paths() {
        if path.starts_with(&dataset_prefix) {
            side.remove(&path);
        }
    }

    let job_metrics = flow.jobs_from(jobs_start);
    let candidates_pruned = counters.get(counter::CANDIDATES_PRUNED) as usize;
    let verify_exact = counters.get(counter::VERIFY_EXACT) as usize;
    let index_partitions = counters.get(counter::INDEX_PARTITIONS) as usize;
    // Generated candidates = reduce-input groups + *map-side* prunes.  A
    // reducer-side prune (VERIFY_PRUNED, a subset of CANDIDATES_PRUNED)
    // is already one of the groups, so it must not be added again.
    let map_side_pruned = candidates_pruned - counters.get(counter::VERIFY_PRUNED) as usize;
    let candidate_pairs = job_metrics
        .last()
        .map(|m| m.reduce_input_groups as usize)
        .unwrap_or(0)
        + map_side_pruned;

    // Assemble the candidate-edge graph.
    let mut builder = GraphBuilder::new();
    for name in item_names {
        builder.add_item(name.clone());
    }
    for name in consumer_names {
        builder.add_consumer(name.clone());
    }
    for ((item, consumer), similarity) in verified {
        builder.add_edge(
            smr_graph::ItemId(item as u32),
            smr_graph::ConsumerId(consumer as u32),
            similarity,
        );
    }

    SimJoinResult::assemble(
        EXACT_GENERATOR,
        builder.build(),
        candidate_pairs,
        candidates_pruned,
        verify_exact,
        index_partitions,
        indexed_entries.load(Ordering::Relaxed),
        job_metrics,
    )
}

/// Global term order for prefix filtering: rarest terms first, measured by
/// how many vectors (on either side) contain the term.  Returns, for each
/// term id, its rank in that order.
///
/// Public so alternative candidate generators can build the *same* index
/// job 1 builds — identical prefixes, identical postings — and differ only
/// downstream.
pub fn rarest_first_rank(
    items: &[SparseVector],
    consumers: &[SparseVector],
    vocab_size: usize,
) -> Vec<u32> {
    let mut freq = vec![0u32; vocab_size];
    for v in items.iter().chain(consumers.iter()) {
        for &(t, _) in v.entries() {
            freq[t.index()] += 1;
        }
    }
    let mut terms: Vec<usize> = (0..vocab_size).collect();
    terms.sort_by_key(|&t| (freq[t], t));
    let mut rank = vec![0u32; vocab_size];
    for (r, t) in terms.into_iter().enumerate() {
        rank[t] = r as u32;
    }
    rank
}

/// Re-vectorizes the two corpora over a shared vocabulary so that their dot
/// products are meaningful, returning the aligned vectors.  This is the
/// alignment every candidate generator must apply before joining corpora
/// (the sketch generators reuse it so their vectors — and therefore their
/// exact-verified scores — are bit-identical to the exact join's).
pub fn align_vector_spaces(
    items: &Corpus,
    consumers: &Corpus,
) -> (Vec<SparseVector>, Vec<SparseVector>) {
    use smr_text::{Document, TokenizerConfig};
    let mut all_docs: Vec<Document> = Vec::with_capacity(items.len() + consumers.len());
    for i in 0..items.len() {
        all_docs.push(items.document(i).clone());
    }
    for i in 0..consumers.len() {
        all_docs.push(consumers.document(i).clone());
    }
    let joint = Corpus::build(all_docs, &TokenizerConfig::default());
    let item_vectors = (0..items.len()).map(|i| joint.vector(i).clone()).collect();
    let consumer_vectors = (items.len()..items.len() + consumers.len())
        .map(|i| joint.vector(i).clone())
        .collect();
    (item_vectors, consumer_vectors)
}

/// The document ids of a corpus, in dense index order — the node labels a
/// candidate generator hands to the graph builder.
pub fn corpus_labels(corpus: &Corpus) -> Vec<String> {
    (0..corpus.len())
        .map(|i| corpus.document(i).id.clone())
        .collect()
}

fn item_labels(corpus: &Corpus) -> Vec<String> {
    corpus_labels(corpus)
}

fn consumer_labels(corpus: &Corpus) -> Vec<String> {
    corpus_labels(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::baseline_similarity_join;
    use smr_text::{Document, TokenizerConfig};

    fn tag_corpus(docs: &[(&str, &str)]) -> Corpus {
        Corpus::build_weighted(
            docs.iter()
                .map(|(id, text)| Document::new(*id, *text))
                .collect(),
            &TokenizerConfig::tags_only(),
            smr_text::Weighting::Binary,
            true,
        )
    }

    fn synthetic_vectors(n: usize, vocab: usize, seed: u64) -> Vec<SparseVector> {
        // Small deterministic pseudo-random sparse vectors.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        (0..n)
            .map(|_| {
                let mut entries: Vec<(TermId, f64)> = Vec::new();
                for t in 0..vocab {
                    if next() < 0.3 {
                        entries.push((TermId(t as u32), next() * 0.9 + 0.1));
                    }
                }
                SparseVector::from_entries(entries).normalized()
            })
            .collect()
    }

    fn config(sigma: f64) -> SimJoinConfig {
        SimJoinConfig::default()
            .with_threshold(sigma)
            .with_job(JobConfig::named("simjoin-test").with_threads(2))
    }

    #[test]
    fn mapreduce_join_matches_the_baseline_on_text() {
        let items = tag_corpus(&[
            ("p0", "beach sunset ocean"),
            ("p1", "city skyline night"),
            ("p2", "mountain hiking forest"),
        ]);
        let consumers = tag_corpus(&[
            ("u0", "ocean beach surf"),
            ("u1", "night city lights"),
            ("u2", "forest hiking trail"),
            ("u3", "cooking pasta pizza"),
        ]);
        for sigma in [0.05, 0.2, 0.5] {
            let mr = mapreduce_similarity_join(&items, &consumers, &config(sigma));
            let base = baseline_similarity_join(&items, &consumers, sigma);
            assert_eq!(
                mr.graph.num_edges(),
                base.num_edges(),
                "edge count differs for sigma={sigma}"
            );
        }
    }

    #[test]
    fn mapreduce_join_matches_brute_force_on_random_vectors() {
        let items = synthetic_vectors(12, 20, 1);
        let consumers = synthetic_vectors(18, 20, 2);
        let item_names: Vec<String> = (0..items.len()).map(|i| format!("t{i}")).collect();
        let consumer_names: Vec<String> = (0..consumers.len()).map(|i| format!("c{i}")).collect();
        for sigma in [0.1, 0.3, 0.6] {
            let result = mapreduce_similarity_join_vectors(
                &items,
                &consumers,
                &item_names,
                &consumer_names,
                &config(sigma),
            );
            // Brute-force ground truth.
            let mut expected = 0usize;
            for x in &items {
                for y in &consumers {
                    if x.dot(y) >= sigma {
                        expected += 1;
                    }
                }
            }
            assert_eq!(
                result.graph.num_edges(),
                expected,
                "edge count differs for sigma={sigma}"
            );
            assert!(result.graph.edges().iter().all(|e| e.weight >= sigma));
            assert_eq!(result.job_metrics.len(), 2);
            // Candidate accounting is closed: generated = pruned + shuffled.
            let probe = &result.job_metrics[1];
            assert_eq!(
                result.candidate_pairs,
                result.candidates_pruned + probe.reduce_input_groups as usize,
                "sigma={sigma}"
            );
            assert_eq!(result.verify_exact, probe.reduce_input_groups as usize);
            assert!(result.index_partitions >= 1);
        }
    }

    #[test]
    fn higher_threshold_indexes_fewer_entries_and_generates_fewer_candidates() {
        let items = synthetic_vectors(10, 15, 3);
        let consumers = synthetic_vectors(15, 15, 4);
        let names_i: Vec<String> = (0..items.len()).map(|i| format!("t{i}")).collect();
        let names_c: Vec<String> = (0..consumers.len()).map(|i| format!("c{i}")).collect();
        let loose = mapreduce_similarity_join_vectors(
            &items,
            &consumers,
            &names_i,
            &names_c,
            &config(0.05),
        );
        let tight =
            mapreduce_similarity_join_vectors(&items, &consumers, &names_i, &names_c, &config(0.7));
        assert!(tight.indexed_entries <= loose.indexed_entries);
        assert!(tight.candidate_pairs <= loose.candidate_pairs);
        assert!(tight.graph.num_edges() <= loose.graph.num_edges());
    }

    #[test]
    fn suffix_bound_pruning_shrinks_the_probe_shuffle() {
        // Vectors share many terms with wide weight spreads, so plenty of
        // candidate pairs share only light terms: their partial score plus
        // remainder bound cannot reach σ and they must be pruned *before*
        // the shuffle.
        let items = synthetic_vectors(12, 10, 5);
        let consumers = synthetic_vectors(14, 10, 6);
        let names_i: Vec<String> = (0..items.len()).map(|i| format!("t{i}")).collect();
        let names_c: Vec<String> = (0..consumers.len()).map(|i| format!("c{i}")).collect();
        let result =
            mapreduce_similarity_join_vectors(&items, &consumers, &names_i, &names_c, &config(0.4));
        let probe = &result.job_metrics[1];
        assert!(result.candidates_pruned > 0, "{result:?}");
        assert_eq!(
            probe.shuffle_records,
            (result.candidate_pairs - result.candidates_pruned) as u64,
            "only unpruned candidates may cross the shuffle"
        );
        assert!(
            (probe.shuffle_records as usize) < result.candidate_pairs,
            "pruning must shrink the shuffle below the generated candidates"
        );
        // Exact verification is exactly the surviving candidates — pruned
        // pairs never cost a vector fetch.
        assert_eq!(
            result.verify_exact, probe.shuffle_records as usize,
            "one exact verification per survivor"
        );
        // The domain counters are reported through the probe job.
        assert_eq!(
            probe.user_counters[counter::CANDIDATES_PRUNED] as usize,
            result.candidates_pruned
        );
        assert_eq!(
            probe.user_counters[counter::VERIFY_EXACT] as usize,
            result.verify_exact
        );
        assert_eq!(
            probe.user_counters[counter::INDEX_PARTITIONS] as usize,
            result.index_partitions
        );
        // Pruning never loses a true pair.
        let mut expected = 0usize;
        for x in &items {
            for y in &consumers {
                if x.dot(y) >= 0.4 {
                    expected += 1;
                }
            }
        }
        assert_eq!(result.graph.num_edges(), expected);
    }

    /// Hand-wires the two jobs — index persisted to a side store, probe
    /// verified against disk-backed vectors — and checks the flow chain
    /// against it, byte for byte: same edges in the same order with the
    /// same weights, same candidate accounting and same per-job record
    /// flow.
    #[test]
    fn flow_chain_is_byte_identical_to_the_hand_wired_two_job_path() {
        use smr_mapreduce::Job;
        use smr_storage::DatasetStore;

        let items = synthetic_vectors(14, 16, 21);
        let consumers = synthetic_vectors(17, 16, 22);
        let names_i: Vec<String> = (0..items.len()).map(|i| format!("t{i}")).collect();
        let names_c: Vec<String> = (0..consumers.len()).map(|i| format!("c{i}")).collect();
        let sigma = 0.15;
        let job_config = JobConfig::named("regression").with_threads(2);

        // --- the hand-wired path ---
        let side_root =
            std::env::temp_dir().join(format!("smr-simjoin-regression-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&side_root);
        let side = DatasetStore::open(&side_root).unwrap();
        let vocab_size = items
            .iter()
            .chain(consumers.iter())
            .flat_map(|v| v.entries().iter().map(|(t, _)| t.index() + 1))
            .max()
            .unwrap_or(0);
        let max_weights = Arc::new(term_max_weights(&items, vocab_size));
        let term_order_rank = Arc::new(rarest_first_rank(&items, &consumers, vocab_size));
        let items_arc: Arc<[SparseVector]> = items.as_slice().into();
        let consumers_arc: Arc<[SparseVector]> = consumers.as_slice().into();
        let index_result = Job::new(job_config.clone().with_name("regression-index")).run(
            &IndexMapper {
                consumers: Arc::clone(&consumers_arc),
                term_order_rank,
                max_weights,
                sigma,
            },
            &IndexReducer,
            (0..consumers.len()).map(|i| (i, i)).collect(),
        );
        let index = Arc::new(PartitionedIndex::write(
            &side,
            "index",
            index_result.output,
            vocab_size,
        ));
        let manual_counters = Counters::new();
        let probe_result = Job::new(job_config.clone().with_name("regression-probe"))
            .run_with_combiner(
                &ProbeMapper {
                    items: Arc::clone(&items_arc),
                    index: Arc::clone(&index),
                    sigma,
                    counters: manual_counters.clone(),
                },
                &PartialScoreCombiner,
                &VerifyReducer {
                    items: DiskVectorStore::write(&side, "items", &items),
                    consumers: DiskVectorStore::write(&side, "consumers", &consumers),
                    sigma,
                    counters: manual_counters.clone(),
                },
                (0..items.len()).map(|i| (i, i)).collect(),
            );

        // --- the flow chain ---
        let flow = FlowContext::new(job_config);
        let result = mapreduce_similarity_join_vectors_flow(
            &items, &consumers, &names_i, &names_c, sigma, &flow,
        );

        // Output records byte-identical: same edges, same order, same
        // weights.
        let manual_edges: Vec<((usize, usize), f64)> = probe_result.output;
        assert_eq!(result.graph.num_edges(), manual_edges.len());
        for (edge, ((item, consumer), weight)) in
            result.graph.edges().iter().zip(manual_edges.iter())
        {
            assert_eq!(edge.item.0 as usize, *item);
            assert_eq!(edge.consumer.0 as usize, *consumer);
            assert_eq!(edge.weight, *weight, "weights must be bit-identical");
        }

        // Same candidate accounting and stage structure, reported through
        // one FlowReport.
        assert_eq!(result.indexed_entries, index.num_entries());
        assert_eq!(
            result.candidates_pruned,
            manual_counters.get(counter::CANDIDATES_PRUNED) as usize
        );
        assert_eq!(
            result.verify_exact,
            manual_counters.get(counter::VERIFY_EXACT) as usize
        );
        assert_eq!(
            result.candidate_pairs,
            (probe_result.metrics.reduce_input_groups
                + manual_counters.get(counter::CANDIDATES_PRUNED)
                - manual_counters.get(counter::VERIFY_PRUNED)) as usize
        );
        assert_eq!(
            manual_counters.get(counter::VERIFY_PRUNED),
            0,
            "the map-side prune runs on complete scores; nothing is left \
             for the reducer guard"
        );
        let report = flow.report();
        assert_eq!(report.num_jobs(), 2, "the join is exactly two jobs");
        assert_eq!(
            report.job_names(),
            vec!["regression-index", "regression-probe"]
        );
        for (flowed, manual) in report
            .jobs
            .iter()
            .zip([&index_result.metrics, &probe_result.metrics])
        {
            assert_eq!(flowed.job_name, manual.job_name);
            assert_eq!(flowed.map_input_records, manual.map_input_records);
            assert_eq!(flowed.map_output_records, manual.map_output_records);
            assert_eq!(flowed.shuffle_records, manual.shuffle_records);
            assert_eq!(flowed.reduce_output_records, manual.reduce_output_records);
        }
        assert_eq!(
            report.total_shuffled_records(),
            index_result.metrics.shuffle_records + probe_result.metrics.shuffle_records
        );
        std::fs::remove_dir_all(&side_root).unwrap();
    }

    #[test]
    fn spilled_and_in_memory_joins_produce_the_same_graph() {
        let items = synthetic_vectors(10, 14, 7);
        let consumers = synthetic_vectors(12, 14, 8);
        let names_i: Vec<String> = (0..items.len()).map(|i| format!("t{i}")).collect();
        let names_c: Vec<String> = (0..consumers.len()).map(|i| format!("c{i}")).collect();
        let sigma = 0.2;
        let in_memory = mapreduce_similarity_join_vectors(
            &items,
            &consumers,
            &names_i,
            &names_c,
            &config(sigma).with_job(
                JobConfig::named("simjoin-memory")
                    .with_threads(2)
                    .with_memory_budget(None),
            ),
        );
        // A budget of a few hundred bytes forces both join jobs through
        // the disk-spilling shuffle.
        let spilled_config = SimJoinConfig::default().with_threshold(sigma).with_job(
            JobConfig::named("simjoin-spilled")
                .with_threads(2)
                .with_memory_budget(Some(256)),
        );
        let spilled = mapreduce_similarity_join_vectors(
            &items,
            &consumers,
            &names_i,
            &names_c,
            &spilled_config,
        );
        assert_eq!(spilled.graph.num_edges(), in_memory.graph.num_edges());
        assert_eq!(spilled.candidate_pairs, in_memory.candidate_pairs);
        assert_eq!(spilled.candidates_pruned, in_memory.candidates_pruned);
        assert_eq!(spilled.verify_exact, in_memory.verify_exact);
        assert_eq!(spilled.graph.edges(), in_memory.graph.edges());
        let spilled_runs: u64 = spilled.job_metrics.iter().map(|m| m.disk_runs).sum();
        assert!(spilled_runs > 0, "the budgeted join must hit the disk");
    }

    #[test]
    fn side_data_is_reclaimed_from_the_flow_store() {
        let items = synthetic_vectors(8, 12, 31);
        let consumers = synthetic_vectors(9, 12, 32);
        let names_i: Vec<String> = (0..items.len()).map(|i| format!("t{i}")).collect();
        let names_c: Vec<String> = (0..consumers.len()).map(|i| format!("c{i}")).collect();
        let flow = FlowContext::new(JobConfig::named("cleanup").with_threads(2));
        let _ = mapreduce_similarity_join_vectors_flow(
            &items, &consumers, &names_i, &names_c, 0.2, &flow,
        );
        assert!(
            flow.side_store().paths().is_empty(),
            "the join must not leak side datasets into the flow"
        );
    }

    #[test]
    fn empty_corpora_produce_an_empty_graph() {
        let empty: Vec<SparseVector> = Vec::new();
        let result = mapreduce_similarity_join_vectors(&empty, &empty, &[], &[], &config(0.2));
        assert_eq!(result.graph.num_edges(), 0);
        assert_eq!(result.graph.num_items(), 0);
        assert_eq!(result.candidate_pairs, 0);
        assert_eq!(result.candidates_pruned, 0);
        assert_eq!(result.verify_exact, 0);
    }

    #[test]
    fn candidate_pairs_never_miss_a_true_pair() {
        let items = synthetic_vectors(8, 12, 9);
        let consumers = synthetic_vectors(9, 12, 10);
        let names_i: Vec<String> = (0..items.len()).map(|i| format!("t{i}")).collect();
        let names_c: Vec<String> = (0..consumers.len()).map(|i| format!("c{i}")).collect();
        let sigma = 0.25;
        let result = mapreduce_similarity_join_vectors(
            &items,
            &consumers,
            &names_i,
            &names_c,
            &config(sigma),
        );
        let mut true_pairs = 0usize;
        for x in &items {
            for y in &consumers {
                if x.dot(y) >= sigma {
                    true_pairs += 1;
                }
            }
        }
        assert_eq!(result.graph.num_edges(), true_pairs);
        // Prefix filtering may generate extra candidates, never fewer than
        // the verified result; pruning may only eat into that surplus.
        assert!(result.candidate_pairs >= result.graph.num_edges());
        assert!(result.verify_exact >= result.graph.num_edges());
    }
}
