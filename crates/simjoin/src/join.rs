//! The two-round MapReduce similarity join (adaptation of Baraglia et al.
//! to the bipartite item × consumer case).
//!
//! * **Job 1 — indexing**: every consumer vector is mapped to
//!   `(term, posting)` pairs for the terms of its prefix only; the reducer
//!   groups postings per term, producing the pruned inverted index.
//! * **Job 2 — probing and verification**: every item vector is mapped
//!   against the index (shipped to the mappers like a distributed-cache
//!   file): each indexed term shared with a consumer generates a candidate
//!   pair; a map-side combiner collapses duplicate generations of the same
//!   pair while partitioning (one record per candidate crosses the
//!   shuffle); the reducer recomputes the exact similarity from the two
//!   vectors and keeps the pair when it reaches σ.
//!
//! The two jobs run as one lazy [`Dataset`](smr_mapreduce::flow::Dataset)
//! chain over a shared [`FlowContext`]: job 1's output is turned into the
//! inverted index inside the chain's `then` stage, which constructs job 2
//! around it.  [`mapreduce_similarity_join_flow`] joins through a
//! caller-provided flow (so a whole pipeline reports one
//! [`smr_mapreduce::FlowReport`]); the original entry points wrap it with
//! a private flow.
//!
//! The output is the candidate-edge [`BipartiteGraph`] handed to the
//! matching algorithms.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use smr_graph::{BipartiteGraph, GraphBuilder};
use smr_mapreduce::flow::FlowContext;
use smr_mapreduce::{Combiner, Emitter, JobConfig, JobMetrics, Mapper, Reducer};
use smr_text::{Corpus, SparseVector, TermId};

use crate::index::{InvertedIndex, Posting};
use crate::prefix::{prefix_length, term_max_weights};

/// Configuration of the MapReduce similarity join.
#[derive(Debug, Clone)]
pub struct SimJoinConfig {
    /// Similarity threshold σ: only pairs with dot product ≥ σ become
    /// candidate edges.
    pub sigma: f64,
    /// MapReduce job configuration used by both jobs.
    pub job: JobConfig,
}

impl Default for SimJoinConfig {
    fn default() -> Self {
        SimJoinConfig {
            sigma: 0.1,
            job: JobConfig::named("simjoin"),
        }
    }
}

impl SimJoinConfig {
    /// Sets the similarity threshold.
    ///
    /// # Panics
    /// Panics if `sigma` is not strictly positive.
    pub fn with_threshold(mut self, sigma: f64) -> Self {
        assert!(sigma > 0.0, "threshold must be positive");
        self.sigma = sigma;
        self
    }

    /// Sets the MapReduce job configuration.
    pub fn with_job(mut self, job: JobConfig) -> Self {
        self.job = job;
        self
    }
}

/// Result of the MapReduce similarity join.
#[derive(Debug, Clone)]
pub struct SimJoinResult {
    /// The candidate-edge graph (items × consumers, weights = similarity).
    pub graph: BipartiteGraph,
    /// Number of candidate pairs generated before verification.
    pub candidate_pairs: usize,
    /// Number of (term, document) entries indexed by job 1 (after prefix
    /// pruning).
    pub indexed_entries: usize,
    /// Metrics of the two MapReduce jobs.
    pub job_metrics: Vec<JobMetrics>,
}

// ---------------------------------------------------------------------------
// Job 1: indexing
// ---------------------------------------------------------------------------

struct IndexMapper {
    term_order_rank: Arc<Vec<u32>>,
    max_weights: Arc<Vec<f64>>,
    sigma: f64,
}

impl Mapper for IndexMapper {
    type InKey = usize; // consumer dense index
    type InValue = SparseVector;
    type OutKey = u32; // term id
    type OutValue = Posting;

    fn map(&self, doc: &usize, vector: &SparseVector, out: &mut Emitter<u32, Posting>) {
        let ordered = vector.terms_in_order(&self.term_order_rank);
        let plen = prefix_length(vector, &ordered, &self.max_weights, self.sigma);
        for term in &ordered[..plen] {
            out.emit(
                term.0,
                Posting {
                    doc: *doc,
                    weight: vector.weight(*term),
                },
            );
        }
    }
}

struct IndexReducer;

impl Reducer for IndexReducer {
    type Key = u32;
    type InValue = Posting;
    type OutKey = u32;
    type OutValue = Vec<Posting>;

    fn reduce(&self, term: &u32, postings: &[Posting], out: &mut Emitter<u32, Vec<Posting>>) {
        let mut list = postings.to_vec();
        list.sort_by_key(|p| p.doc);
        out.emit(*term, list);
    }
}

// ---------------------------------------------------------------------------
// Job 2: probing + verification
// ---------------------------------------------------------------------------

struct ProbeMapper {
    index: Arc<InvertedIndex>,
}

impl Mapper for ProbeMapper {
    type InKey = usize; // item dense index
    type InValue = SparseVector;
    type OutKey = (usize, usize); // (item, consumer) candidate pair
    type OutValue = u8;

    fn map(&self, item: &usize, vector: &SparseVector, out: &mut Emitter<(usize, usize), u8>) {
        // One record per (query term, posting) hit — a pair sharing
        // several indexed terms is emitted several times, exactly as in
        // the paper's formulation.  [`CandidateDedupCombiner`] collapses
        // the duplicates while the engine partitions, so a single record
        // per candidate crosses the shuffle.
        for &(term, _) in vector.entries() {
            for posting in self.index.postings(term) {
                out.emit((*item, posting.doc), 1);
            }
        }
    }
}

/// Map-side combiner of job 2: a candidate pair generated once per shared
/// indexed term collapses to a single record before the shuffle.  The
/// verify reducer ignores the counts entirely, so this is a pure
/// communication saving (the engine applies it both while partitioning
/// and across runs during the merge).
struct CandidateDedupCombiner;

impl Combiner for CandidateDedupCombiner {
    type Key = (usize, usize);
    type Value = u8;

    fn combine(&self, _pair: &(usize, usize), _counts: &[u8]) -> Vec<u8> {
        vec![1]
    }
}

struct VerifyReducer {
    items: Arc<Vec<SparseVector>>,
    consumers: Arc<Vec<SparseVector>>,
    sigma: f64,
}

impl Reducer for VerifyReducer {
    type Key = (usize, usize);
    type InValue = u8;
    type OutKey = (usize, usize);
    type OutValue = f64;

    fn reduce(
        &self,
        pair: &(usize, usize),
        _counts: &[u8],
        out: &mut Emitter<(usize, usize), f64>,
    ) {
        let (item, consumer) = *pair;
        let similarity = self.items[item].dot(&self.consumers[consumer]);
        if similarity >= self.sigma {
            out.emit(*pair, similarity);
        }
    }
}

/// Runs the two-job MapReduce similarity join between item and consumer
/// corpora that share a vocabulary-independent term space.
///
/// The two corpora are first re-vectorized over a shared vocabulary (they
/// are usually built independently, so their term ids would not otherwise
/// line up); pre-aligned vectors can be joined directly with
/// [`mapreduce_similarity_join_vectors`].
pub fn mapreduce_similarity_join(
    items: &Corpus,
    consumers: &Corpus,
    config: &SimJoinConfig,
) -> SimJoinResult {
    let flow = FlowContext::new(config.job.clone());
    mapreduce_similarity_join_flow(items, consumers, config.sigma, &flow)
}

/// Runs the two-job join through a caller-provided [`FlowContext`]: both
/// jobs execute as one lazy `Dataset` chain under the flow's `JobConfig`
/// and report into the flow's [`smr_mapreduce::FlowReport`] alongside any
/// other jobs of the surrounding pipeline.
pub fn mapreduce_similarity_join_flow(
    items: &Corpus,
    consumers: &Corpus,
    sigma: f64,
    flow: &FlowContext,
) -> SimJoinResult {
    let (item_vectors, consumer_vectors) = align_vector_spaces(items, consumers);
    mapreduce_similarity_join_vectors_flow(
        &item_vectors,
        &consumer_vectors,
        &item_labels(items),
        &consumer_labels(consumers),
        sigma,
        flow,
    )
}

/// Runs the join directly on pre-vectorized inputs (both sides must share
/// the same term space).
pub fn mapreduce_similarity_join_vectors(
    item_vectors: &[SparseVector],
    consumer_vectors: &[SparseVector],
    item_names: &[String],
    consumer_names: &[String],
    config: &SimJoinConfig,
) -> SimJoinResult {
    let flow = FlowContext::new(config.job.clone());
    mapreduce_similarity_join_vectors_flow(
        item_vectors,
        consumer_vectors,
        item_names,
        consumer_names,
        config.sigma,
        &flow,
    )
}

/// The core of the join: a two-stage [`Dataset`](smr_mapreduce::flow::Dataset)
/// chain over `flow`.
///
/// Stage 1 (`…-index`) builds the pruned inverted index over the
/// consumers; the chain's `then` combinator turns stage 1's output into
/// the [`InvertedIndex`] and constructs stage 2 (`…-probe`) around it:
/// probing, map-side candidate dedup while partitioning, and exact
/// verification in the reducer.  Records flow between the stages by move;
/// nothing executes until the terminal `collect`.
pub fn mapreduce_similarity_join_vectors_flow(
    item_vectors: &[SparseVector],
    consumer_vectors: &[SparseVector],
    item_names: &[String],
    consumer_names: &[String],
    sigma: f64,
    flow: &FlowContext,
) -> SimJoinResult {
    assert_eq!(item_vectors.len(), item_names.len());
    assert_eq!(consumer_vectors.len(), consumer_names.len());
    assert!(sigma > 0.0, "threshold must be positive");

    let vocab_size = item_vectors
        .iter()
        .chain(consumer_vectors.iter())
        .flat_map(|v| v.entries().iter().map(|(t, _)| t.index() + 1))
        .max()
        .unwrap_or(0);
    let max_weights = Arc::new(term_max_weights(item_vectors, vocab_size));
    let term_order_rank = Arc::new(rarest_first_rank(
        item_vectors,
        consumer_vectors,
        vocab_size,
    ));

    let index_input: Vec<(usize, SparseVector)> =
        consumer_vectors.iter().cloned().enumerate().collect();
    let probe_input: Vec<(usize, SparseVector)> =
        item_vectors.iter().cloned().enumerate().collect();
    let items_arc = Arc::new(item_vectors.to_vec());
    let consumers_arc = Arc::new(consumer_vectors.to_vec());
    // `then` runs inside the lazy plan, so the index size is smuggled out
    // through a shared cell instead of a return value.
    let indexed_entries = Arc::new(AtomicUsize::new(0));
    let indexed_entries_probe = Arc::clone(&indexed_entries);

    let jobs_start = flow.num_jobs();
    let verified = flow
        .dataset(index_input)
        .map_with(IndexMapper {
            term_order_rank,
            max_weights,
            sigma,
        })
        .named("index")
        .reduce_with(IndexReducer)
        .then(move |postings, flow| {
            // Job 1's output becomes job 2's side data: the inverted index
            // is shipped to the probe mappers like a distributed-cache
            // file.
            let index = Arc::new(InvertedIndex::from_postings(
                postings
                    .into_iter()
                    .map(|(term, postings)| (TermId(term), postings)),
            ));
            indexed_entries_probe.store(index.num_entries(), Ordering::Relaxed);
            flow.dataset(probe_input)
                .map_with(ProbeMapper { index })
                .named("probe")
                .combined_with(CandidateDedupCombiner)
                .reduce_with(VerifyReducer {
                    items: items_arc,
                    consumers: consumers_arc,
                    sigma,
                })
        })
        .collect();

    let job_metrics = flow.jobs_from(jobs_start);
    let candidate_pairs = job_metrics
        .last()
        .map(|m| m.reduce_input_groups as usize)
        .unwrap_or(0);

    // Assemble the candidate-edge graph.
    let mut builder = GraphBuilder::new();
    for name in item_names {
        builder.add_item(name.clone());
    }
    for name in consumer_names {
        builder.add_consumer(name.clone());
    }
    for ((item, consumer), similarity) in verified {
        builder.add_edge(
            smr_graph::ItemId(item as u32),
            smr_graph::ConsumerId(consumer as u32),
            similarity,
        );
    }

    SimJoinResult {
        graph: builder.build(),
        candidate_pairs,
        indexed_entries: indexed_entries.load(Ordering::Relaxed),
        job_metrics,
    }
}

/// Global term order for prefix filtering: rarest terms first, measured by
/// how many vectors (on either side) contain the term.  Returns, for each
/// term id, its rank in that order.
fn rarest_first_rank(
    items: &[SparseVector],
    consumers: &[SparseVector],
    vocab_size: usize,
) -> Vec<u32> {
    let mut freq = vec![0u32; vocab_size];
    for v in items.iter().chain(consumers.iter()) {
        for &(t, _) in v.entries() {
            freq[t.index()] += 1;
        }
    }
    let mut terms: Vec<usize> = (0..vocab_size).collect();
    terms.sort_by_key(|&t| (freq[t], t));
    let mut rank = vec![0u32; vocab_size];
    for (r, t) in terms.into_iter().enumerate() {
        rank[t] = r as u32;
    }
    rank
}

/// Re-vectorizes the two corpora over a shared vocabulary so that their dot
/// products are meaningful, returning the aligned vectors.
fn align_vector_spaces(
    items: &Corpus,
    consumers: &Corpus,
) -> (Vec<SparseVector>, Vec<SparseVector>) {
    use smr_text::{Document, TokenizerConfig};
    let mut all_docs: Vec<Document> = Vec::with_capacity(items.len() + consumers.len());
    for i in 0..items.len() {
        all_docs.push(items.document(i).clone());
    }
    for i in 0..consumers.len() {
        all_docs.push(consumers.document(i).clone());
    }
    let joint = Corpus::build(all_docs, &TokenizerConfig::default());
    let item_vectors = (0..items.len()).map(|i| joint.vector(i).clone()).collect();
    let consumer_vectors = (items.len()..items.len() + consumers.len())
        .map(|i| joint.vector(i).clone())
        .collect();
    (item_vectors, consumer_vectors)
}

fn item_labels(corpus: &Corpus) -> Vec<String> {
    (0..corpus.len())
        .map(|i| corpus.document(i).id.clone())
        .collect()
}

fn consumer_labels(corpus: &Corpus) -> Vec<String> {
    item_labels(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::baseline_similarity_join;
    use smr_text::{Document, TokenizerConfig};

    fn tag_corpus(docs: &[(&str, &str)]) -> Corpus {
        Corpus::build_weighted(
            docs.iter()
                .map(|(id, text)| Document::new(*id, *text))
                .collect(),
            &TokenizerConfig::tags_only(),
            smr_text::Weighting::Binary,
            true,
        )
    }

    fn synthetic_vectors(n: usize, vocab: usize, seed: u64) -> Vec<SparseVector> {
        // Small deterministic pseudo-random sparse vectors.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        (0..n)
            .map(|_| {
                let mut entries: Vec<(TermId, f64)> = Vec::new();
                for t in 0..vocab {
                    if next() < 0.3 {
                        entries.push((TermId(t as u32), next() * 0.9 + 0.1));
                    }
                }
                SparseVector::from_entries(entries).normalized()
            })
            .collect()
    }

    fn config(sigma: f64) -> SimJoinConfig {
        SimJoinConfig::default()
            .with_threshold(sigma)
            .with_job(JobConfig::named("simjoin-test").with_threads(2))
    }

    #[test]
    fn mapreduce_join_matches_the_baseline_on_text() {
        let items = tag_corpus(&[
            ("p0", "beach sunset ocean"),
            ("p1", "city skyline night"),
            ("p2", "mountain hiking forest"),
        ]);
        let consumers = tag_corpus(&[
            ("u0", "ocean beach surf"),
            ("u1", "night city lights"),
            ("u2", "forest hiking trail"),
            ("u3", "cooking pasta pizza"),
        ]);
        for sigma in [0.05, 0.2, 0.5] {
            let mr = mapreduce_similarity_join(&items, &consumers, &config(sigma));
            let base = baseline_similarity_join(&items, &consumers, sigma);
            assert_eq!(
                mr.graph.num_edges(),
                base.num_edges(),
                "edge count differs for sigma={sigma}"
            );
        }
    }

    #[test]
    fn mapreduce_join_matches_brute_force_on_random_vectors() {
        let items = synthetic_vectors(12, 20, 1);
        let consumers = synthetic_vectors(18, 20, 2);
        let item_names: Vec<String> = (0..items.len()).map(|i| format!("t{i}")).collect();
        let consumer_names: Vec<String> = (0..consumers.len()).map(|i| format!("c{i}")).collect();
        for sigma in [0.1, 0.3, 0.6] {
            let result = mapreduce_similarity_join_vectors(
                &items,
                &consumers,
                &item_names,
                &consumer_names,
                &config(sigma),
            );
            // Brute-force ground truth.
            let mut expected = 0usize;
            for x in &items {
                for y in &consumers {
                    if x.dot(y) >= sigma {
                        expected += 1;
                    }
                }
            }
            assert_eq!(
                result.graph.num_edges(),
                expected,
                "edge count differs for sigma={sigma}"
            );
            assert!(result.graph.edges().iter().all(|e| e.weight >= sigma));
            assert_eq!(result.job_metrics.len(), 2);
        }
    }

    #[test]
    fn higher_threshold_indexes_fewer_entries_and_generates_fewer_candidates() {
        let items = synthetic_vectors(10, 15, 3);
        let consumers = synthetic_vectors(15, 15, 4);
        let names_i: Vec<String> = (0..items.len()).map(|i| format!("t{i}")).collect();
        let names_c: Vec<String> = (0..consumers.len()).map(|i| format!("c{i}")).collect();
        let loose = mapreduce_similarity_join_vectors(
            &items,
            &consumers,
            &names_i,
            &names_c,
            &config(0.05),
        );
        let tight =
            mapreduce_similarity_join_vectors(&items, &consumers, &names_i, &names_c, &config(0.7));
        assert!(tight.indexed_entries <= loose.indexed_entries);
        assert!(tight.candidate_pairs <= loose.candidate_pairs);
        assert!(tight.graph.num_edges() <= loose.graph.num_edges());
    }

    #[test]
    fn candidate_dedup_combiner_shrinks_the_probe_shuffle() {
        // Vectors share many terms, so the same (item, consumer) candidate
        // is generated once per shared indexed term; the combiner must
        // collapse those duplicates before the shuffle.
        let items = synthetic_vectors(12, 10, 5);
        let consumers = synthetic_vectors(14, 10, 6);
        let names_i: Vec<String> = (0..items.len()).map(|i| format!("t{i}")).collect();
        let names_c: Vec<String> = (0..consumers.len()).map(|i| format!("c{i}")).collect();
        let result = mapreduce_similarity_join_vectors(
            &items,
            &consumers,
            &names_i,
            &names_c,
            &config(0.05),
        );
        let probe = &result.job_metrics[1];
        assert!(
            probe.shuffle_records < probe.map_output_records,
            "dedup combiner should shrink the shuffle: {} vs {}",
            probe.shuffle_records,
            probe.map_output_records
        );
        // Every candidate crosses the shuffle exactly once.
        assert_eq!(probe.shuffle_records, result.candidate_pairs as u64);
    }

    /// Replicates the pre-redesign entry point — two hand-wired [`Job`]
    /// runs with the index materialized in between — and checks the flow
    /// chain against it, byte for byte: same edges in the same order with
    /// the same weights, same candidate count and same per-job record
    /// flow.
    #[test]
    fn flow_chain_is_byte_identical_to_the_hand_wired_two_job_path() {
        use smr_mapreduce::Job;

        let items = synthetic_vectors(14, 16, 21);
        let consumers = synthetic_vectors(17, 16, 22);
        let names_i: Vec<String> = (0..items.len()).map(|i| format!("t{i}")).collect();
        let names_c: Vec<String> = (0..consumers.len()).map(|i| format!("c{i}")).collect();
        let sigma = 0.15;
        let job_config = JobConfig::named("regression").with_threads(2);

        // --- the pre-redesign path, verbatim ---
        let vocab_size = items
            .iter()
            .chain(consumers.iter())
            .flat_map(|v| v.entries().iter().map(|(t, _)| t.index() + 1))
            .max()
            .unwrap_or(0);
        let max_weights = Arc::new(term_max_weights(&items, vocab_size));
        let term_order_rank = Arc::new(rarest_first_rank(&items, &consumers, vocab_size));
        let index_result = Job::new(job_config.clone().with_name("regression-index")).run(
            &IndexMapper {
                term_order_rank,
                max_weights,
                sigma,
            },
            &IndexReducer,
            consumers.iter().cloned().enumerate().collect(),
        );
        let index = Arc::new(InvertedIndex::from_postings(
            index_result
                .output
                .into_iter()
                .map(|(term, postings)| (TermId(term), postings)),
        ));
        let probe_result = Job::new(job_config.clone().with_name("regression-probe"))
            .run_with_combiner(
                &ProbeMapper {
                    index: Arc::clone(&index),
                },
                &CandidateDedupCombiner,
                &VerifyReducer {
                    items: Arc::new(items.clone()),
                    consumers: Arc::new(consumers.clone()),
                    sigma,
                },
                items.iter().cloned().enumerate().collect(),
            );

        // --- the flow chain ---
        let flow = FlowContext::new(job_config);
        let result = mapreduce_similarity_join_vectors_flow(
            &items, &consumers, &names_i, &names_c, sigma, &flow,
        );

        // Output records byte-identical: same edges, same order, same
        // weights.
        let manual_edges: Vec<((usize, usize), f64)> = probe_result.output;
        assert_eq!(result.graph.num_edges(), manual_edges.len());
        for (edge, ((item, consumer), weight)) in
            result.graph.edges().iter().zip(manual_edges.iter())
        {
            assert_eq!(edge.item.0 as usize, *item);
            assert_eq!(edge.consumer.0 as usize, *consumer);
            assert_eq!(edge.weight, *weight, "weights must be bit-identical");
        }

        // Same stage structure and record flow, reported through one
        // FlowReport.
        assert_eq!(result.indexed_entries, index.num_entries());
        assert_eq!(
            result.candidate_pairs,
            probe_result.metrics.reduce_input_groups as usize
        );
        let report = flow.report();
        assert_eq!(report.num_jobs(), 2, "the join is exactly two jobs");
        assert_eq!(
            report.job_names(),
            vec!["regression-index", "regression-probe"]
        );
        for (flowed, manual) in report
            .jobs
            .iter()
            .zip([&index_result.metrics, &probe_result.metrics])
        {
            assert_eq!(flowed.job_name, manual.job_name);
            assert_eq!(flowed.map_input_records, manual.map_input_records);
            assert_eq!(flowed.map_output_records, manual.map_output_records);
            assert_eq!(flowed.shuffle_records, manual.shuffle_records);
            assert_eq!(flowed.reduce_output_records, manual.reduce_output_records);
        }
        assert_eq!(
            report.total_shuffled_records(),
            index_result.metrics.shuffle_records + probe_result.metrics.shuffle_records
        );
    }

    #[test]
    fn spilled_and_in_memory_joins_produce_the_same_graph() {
        let items = synthetic_vectors(10, 14, 7);
        let consumers = synthetic_vectors(12, 14, 8);
        let names_i: Vec<String> = (0..items.len()).map(|i| format!("t{i}")).collect();
        let names_c: Vec<String> = (0..consumers.len()).map(|i| format!("c{i}")).collect();
        let sigma = 0.2;
        let in_memory = mapreduce_similarity_join_vectors(
            &items,
            &consumers,
            &names_i,
            &names_c,
            &config(sigma).with_job(
                JobConfig::named("simjoin-memory")
                    .with_threads(2)
                    .with_memory_budget(None),
            ),
        );
        // A budget of a few hundred bytes forces both join jobs through
        // the disk-spilling shuffle.
        let spilled_config = SimJoinConfig::default().with_threshold(sigma).with_job(
            JobConfig::named("simjoin-spilled")
                .with_threads(2)
                .with_memory_budget(Some(256)),
        );
        let spilled = mapreduce_similarity_join_vectors(
            &items,
            &consumers,
            &names_i,
            &names_c,
            &spilled_config,
        );
        assert_eq!(spilled.graph.num_edges(), in_memory.graph.num_edges());
        assert_eq!(spilled.candidate_pairs, in_memory.candidate_pairs);
        assert_eq!(spilled.graph.edges(), in_memory.graph.edges());
        let spilled_runs: u64 = spilled.job_metrics.iter().map(|m| m.disk_runs).sum();
        assert!(spilled_runs > 0, "the budgeted join must hit the disk");
    }

    #[test]
    fn empty_corpora_produce_an_empty_graph() {
        let empty: Vec<SparseVector> = Vec::new();
        let result = mapreduce_similarity_join_vectors(&empty, &empty, &[], &[], &config(0.2));
        assert_eq!(result.graph.num_edges(), 0);
        assert_eq!(result.graph.num_items(), 0);
    }

    #[test]
    fn candidate_pairs_never_miss_a_true_pair() {
        let items = synthetic_vectors(8, 12, 9);
        let consumers = synthetic_vectors(9, 12, 10);
        let names_i: Vec<String> = (0..items.len()).map(|i| format!("t{i}")).collect();
        let names_c: Vec<String> = (0..consumers.len()).map(|i| format!("c{i}")).collect();
        let sigma = 0.25;
        let result = mapreduce_similarity_join_vectors(
            &items,
            &consumers,
            &names_i,
            &names_c,
            &config(sigma),
        );
        let mut true_pairs = 0usize;
        for x in &items {
            for y in &consumers {
                if x.dot(y) >= sigma {
                    true_pairs += 1;
                }
            }
        }
        assert_eq!(result.graph.num_edges(), true_pairs);
        // Prefix filtering may generate extra candidates, never fewer than
        // the verified result.
        assert!(result.candidate_pairs >= result.graph.num_edges());
    }
}
