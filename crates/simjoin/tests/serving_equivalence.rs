//! Property tests locking the serving index to the batch join: for random
//! corpora, the point-query result for *every* item — candidates and
//! bit-identical scores — equals the batch join's candidate set restricted
//! to that item, with the batch side run under memory budgets
//! {4 KiB, unlimited}.  The serving path shares the batch probe's partial
//! products and suffix-bound prune, so it may never return a different
//! candidate set.

use proptest::prelude::*;
use smr_mapreduce::JobConfig;
use smr_simjoin::{mapreduce_similarity_join_vectors, ServingIndex, SimJoinConfig};
use smr_storage::DatasetStore;
use smr_text::{SparseVector, TermId};

use std::sync::atomic::{AtomicU64, Ordering};

static CASE_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_store() -> DatasetStore {
    let root = std::env::temp_dir().join(format!(
        "smr-serving-props-{}-{}",
        std::process::id(),
        CASE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&root);
    DatasetStore::open(root).unwrap()
}

/// Turns a proptest-generated tag list into a normalized sparse vector
/// (tags collapse into distinct terms of a shared 24-term space).
fn vectorize(tags: &[u8]) -> SparseVector {
    let mut weights = [0.0f64; 24];
    for &t in tags {
        weights[t as usize % 24] += 1.0;
    }
    SparseVector::from_entries(
        weights
            .iter()
            .enumerate()
            .filter(|(_, w)| **w > 0.0)
            .map(|(t, w)| (TermId(t as u32), *w)),
    )
    .normalized()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn match_one_equals_the_batch_join_for_every_item(
        item_docs in proptest::collection::vec(
            proptest::collection::vec(0u8..24, 1..10), 1..12),
        consumer_docs in proptest::collection::vec(
            proptest::collection::vec(0u8..24, 1..10), 1..14),
    ) {
        let items: Vec<SparseVector> = item_docs.iter().map(|d| vectorize(d)).collect();
        let consumers: Vec<SparseVector> =
            consumer_docs.iter().map(|d| vectorize(d)).collect();
        let names_i: Vec<String> = (0..items.len()).map(|i| format!("t{i}")).collect();
        let names_c: Vec<String> = (0..consumers.len()).map(|i| format!("c{i}")).collect();

        for sigma in [0.1, 0.35] {
            let store = temp_store();
            let serving =
                ServingIndex::for_corpora(&store, "serve", &items, &consumers, sigma);

            for budget in [Some(4 * 1024u64), None] {
                let batch = mapreduce_similarity_join_vectors(
                    &items,
                    &consumers,
                    &names_i,
                    &names_c,
                    &SimJoinConfig::default().with_threshold(sigma).with_job(
                        JobConfig::named("serving-props")
                            .with_threads(2)
                            .with_memory_budget(budget),
                    ),
                );
                // The batch edge list restricted to each item, with
                // bit-exact weights.
                for (t, item) in items.iter().enumerate() {
                    let mut expected: Vec<(usize, u64)> = batch
                        .graph
                        .edges()
                        .iter()
                        .filter(|e| e.item.index() == t)
                        .map(|e| (e.consumer.index(), e.weight.to_bits()))
                        .collect();
                    expected.sort_unstable();
                    let got: Vec<(usize, u64)> = serving
                        .candidates(item)
                        .into_iter()
                        .map(|m| (m.consumer, m.score.to_bits()))
                        .collect();
                    prop_assert!(
                        got == expected,
                        "item {t} diverged (sigma={sigma} budget={budget:?}): \
                         serving {got:?} vs batch {expected:?}"
                    );

                    // Top-k is the k heaviest of that same set, ties toward
                    // the lower consumer index.
                    let mut ranked: Vec<(usize, u64)> = expected.clone();
                    ranked.sort_by(|a, b| {
                        f64::from_bits(b.1)
                            .partial_cmp(&f64::from_bits(a.1))
                            .unwrap()
                            .then(a.0.cmp(&b.0))
                    });
                    let k = 1 + ranked.len() / 2;
                    let top: Vec<(usize, u64)> = serving
                        .match_one(item, k)
                        .into_iter()
                        .map(|m| (m.consumer, m.score.to_bits()))
                        .collect();
                    prop_assert_eq!(&top, &ranked[..k.min(ranked.len())]);
                }
            }
            std::fs::remove_dir_all(store.root()).unwrap();
        }
    }
}
