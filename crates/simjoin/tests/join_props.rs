//! Property tests locking the streaming similarity join to the exact
//! all-pairs baseline: for random corpora, the candidate graph is
//! **byte-identical** to [`baseline_similarity_join`] — same edge set with
//! bit-identical weights — across a σ sweep × memory budgets
//! {64 B, 4 KiB, unlimited} × thread counts {1, 8}.  Suffix-bound pruning
//! and partial-product verification are pure optimizations; they may never
//! change a single output bit.
//!
//! A separate determinism test pins the pruned-pair counts: 20 identical
//! runs must report identical `candidate_pairs` / `candidates_pruned` /
//! `verify_exact`, which is what lets the experiment tables (and the CI
//! regression guard) assert exact counts.

use proptest::prelude::*;
use smr_mapreduce::JobConfig;
use smr_simjoin::{
    baseline_similarity_join, mapreduce_similarity_join, mapreduce_similarity_join_vectors,
    SimJoinConfig, SimJoinResult,
};
use smr_text::{Corpus, Document, SparseVector, TermId, TokenizerConfig};

/// Builds a corpus of synthetic tag documents; `docs[d]` lists the tag
/// indices of document `d` (duplicates collapse in tokenization).
fn corpus(side: &str, docs: &[Vec<u8>]) -> Corpus {
    let documents: Vec<Document> = docs
        .iter()
        .enumerate()
        .map(|(d, tags)| {
            let text = tags
                .iter()
                .map(|t| format!("tag{t}"))
                .collect::<Vec<_>>()
                .join(" ");
            Document::new(format!("{side}{d}"), text)
        })
        .collect();
    Corpus::build(documents, &TokenizerConfig::default())
}

/// The canonical edge list of a graph: `(item, consumer, weight)` sorted
/// by pair.  Weights are compared bit-for-bit via `to_bits`.
fn canonical_edges(graph: &smr_graph::BipartiteGraph) -> Vec<(u32, u32, u64)> {
    let mut edges: Vec<(u32, u32, u64)> = graph
        .edges()
        .iter()
        .map(|e| (e.item.0, e.consumer.0, e.weight.to_bits()))
        .collect();
    edges.sort_unstable();
    edges
}

fn join_config(sigma: f64, budget: Option<u64>, threads: usize) -> SimJoinConfig {
    SimJoinConfig::default().with_threshold(sigma).with_job(
        JobConfig::named("join-props")
            .with_threads(threads)
            .with_memory_budget(budget),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn streaming_join_is_byte_identical_to_the_all_pairs_baseline(
        item_docs in proptest::collection::vec(
            proptest::collection::vec(0u8..24, 0..10), 1..14),
        consumer_docs in proptest::collection::vec(
            proptest::collection::vec(0u8..24, 0..10), 1..16),
    ) {
        let items = corpus("t", &item_docs);
        let consumers = corpus("c", &consumer_docs);
        for sigma in [0.08, 0.2, 0.45] {
            let expected = canonical_edges(&baseline_similarity_join(&items, &consumers, sigma));
            for budget in [Some(64u64), Some(4 * 1024), None] {
                for threads in [1usize, 8] {
                    let result = mapreduce_similarity_join(
                        &items,
                        &consumers,
                        &join_config(sigma, budget, threads),
                    );
                    prop_assert!(
                        canonical_edges(&result.graph) == expected,
                        "join diverged from the baseline \
                         (sigma={sigma} budget={budget:?} threads={threads})"
                    );
                    // The join's candidate accounting closes under every
                    // configuration.
                    prop_assert_eq!(
                        result.candidate_pairs,
                        result.candidates_pruned + result.verify_exact
                    );
                    prop_assert!(result.verify_exact >= result.graph.num_edges());
                }
            }
        }
    }
}

/// Deterministic pseudo-random sparse vectors with a wide weight spread —
/// wide enough that suffix-bound pruning actually fires at moderate σ.
fn synthetic_vectors(n: usize, vocab: usize, seed: u64) -> Vec<SparseVector> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    (0..n)
        .map(|_| {
            let mut entries: Vec<(TermId, f64)> = Vec::new();
            for t in 0..vocab {
                if next() < 0.3 {
                    entries.push((TermId(t as u32), next() * 0.9 + 0.1));
                }
            }
            SparseVector::from_entries(entries).normalized()
        })
        .collect()
}

fn run_synthetic(sigma: f64, budget: Option<u64>, threads: usize) -> SimJoinResult {
    let items = synthetic_vectors(20, 16, 41);
    let consumers = synthetic_vectors(24, 16, 42);
    let names_i: Vec<String> = (0..items.len()).map(|i| format!("t{i}")).collect();
    let names_c: Vec<String> = (0..consumers.len()).map(|i| format!("c{i}")).collect();
    mapreduce_similarity_join_vectors(
        &items,
        &consumers,
        &names_i,
        &names_c,
        &join_config(sigma, budget, threads),
    )
}

#[test]
fn pruned_pair_counts_are_deterministic_across_20_runs() {
    let reference = run_synthetic(0.4, None, 2);
    assert!(
        reference.candidates_pruned > 0,
        "the instance must exercise pruning: {reference:?}"
    );
    let reference_edges = canonical_edges(&reference.graph);
    for run in 0..20 {
        let result = run_synthetic(0.4, None, 2);
        assert_eq!(
            result.candidate_pairs, reference.candidate_pairs,
            "run {run}"
        );
        assert_eq!(
            result.candidates_pruned, reference.candidates_pruned,
            "run {run}"
        );
        assert_eq!(result.verify_exact, reference.verify_exact, "run {run}");
        assert_eq!(
            result.index_partitions, reference.index_partitions,
            "run {run}"
        );
        assert_eq!(canonical_edges(&result.graph), reference_edges, "run {run}");
    }
}

#[test]
fn pruned_pair_counts_are_stable_across_budgets_and_threads() {
    // Map-side pruning runs on complete per-item scores before anything
    // is emitted, so the counts cannot depend on how the engine later
    // slices the shuffle.
    let reference = run_synthetic(0.4, None, 1);
    assert!(reference.candidates_pruned > 0);
    for budget in [Some(64u64), Some(4 * 1024)] {
        for threads in [1usize, 8] {
            let result = run_synthetic(0.4, budget, threads);
            assert_eq!(result.candidates_pruned, reference.candidates_pruned);
            assert_eq!(result.candidate_pairs, reference.candidate_pairs);
            assert_eq!(result.verify_exact, reference.verify_exact);
        }
    }
}
