//! Synthetic dataset generators.
//!
//! The paper evaluates on two flickr crawls and one Yahoo! Answers crawl
//! that are not publicly available.  This crate generates synthetic
//! datasets with the same *structural* properties the evaluation depends
//! on:
//!
//! * items and consumers described by term vectors (tags for flickr,
//!   tf·idf-weighted words for Yahoo! Answers) over a Zipf-distributed
//!   vocabulary, so edge similarities follow the heavy-tailed shape of
//!   Figure 6;
//! * power-law user activity (`n(u)` = photos posted / answers written)
//!   and photo popularity (`f(p)` = favourites), so the capacity
//!   distributions match the skew of Figure 7;
//! * the paper's own capacity formulas of Sections 4 and 6
//!   (`b(u) = α·n(u)`, flickr's favourite-proportional item capacities and
//!   Yahoo! Answers' uniform question capacities).
//!
//! Modules:
//!
//! * [`powerlaw`] — Zipf and discrete power-law samplers,
//! * [`social`] — the [`social::SocialDataset`] container shared by all
//!   generators,
//! * [`flickr`] — the photo-sharing generator (tags, favourites, activity),
//! * [`answers`] — the question-answering generator (question/answer text),
//! * [`presets`] — laptop-scale stand-ins for `flickr-small`,
//!   `flickr-large` and `yahoo-answers`,
//! * [`random_graph`] — direct generation of weighted candidate-edge
//!   graphs (bypassing the similarity join) for fast benchmarking,
//! * [`stream`] — streaming generation: documents flow straight into a
//!   disk-backed [`smr_storage::DatasetStore`] (`generate_to_store`)
//!   instead of accumulating in RAM,
//! * [`arrivals`] — deterministic item-arrival orders for the serving
//!   pipeline (seeded shuffles carrying per-arrival capacities),
//! * [`pathological`] — adversarial instances (the increasing-weight path
//!   that forces GreedyMR into a linear number of rounds, the greedy
//!   tightness example).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod answers;
pub mod arrivals;
pub mod flickr;
pub mod pathological;
pub mod powerlaw;
pub mod presets;
pub mod random_graph;
pub mod social;
pub mod stream;

pub use answers::AnswersGenerator;
pub use arrivals::{ArrivalStream, ItemArrival};
pub use flickr::FlickrGenerator;
pub use presets::{DatasetPreset, PresetInstance};
pub use random_graph::{RandomGraphConfig, WeightDistribution};
pub use social::SocialDataset;
pub use stream::{DocumentSink, StoreDocumentSink, StreamedDataset};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::answers::AnswersGenerator;
    pub use crate::arrivals::{ArrivalStream, ItemArrival};
    pub use crate::flickr::FlickrGenerator;
    pub use crate::pathological;
    pub use crate::powerlaw::{PowerLawSampler, ZipfSampler};
    pub use crate::presets::{DatasetPreset, PresetInstance};
    pub use crate::random_graph::{RandomGraphConfig, WeightDistribution};
    pub use crate::social::SocialDataset;
    pub use crate::stream::{DocumentSink, StoreDocumentSink, StreamedDataset};
}
