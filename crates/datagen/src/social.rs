//! The common container produced by every dataset generator.

use serde::{Deserialize, Serialize};
use smr_graph::{Capacities, CapacityModel};
use smr_text::Document;

/// How item capacities are derived from the dataset (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ItemCapacityPolicy {
    /// Items share the consumer budget equally (Yahoo! Answers questions).
    Uniform,
    /// Items receive budget proportional to their quality score
    /// (flickr photos, quality = favourites).
    QualityProportional,
}

/// A synthetic social-media dataset: documents for both sides plus the
/// activity / quality signals the capacity formulas need.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SocialDataset {
    /// Dataset name (used in experiment reports).
    pub name: String,
    /// Item documents (photos / questions), index-aligned with item ids.
    pub items: Vec<Document>,
    /// Consumer documents (user profiles), index-aligned with consumer ids.
    pub consumers: Vec<Document>,
    /// Quality signal per item (favourites for flickr, unused for answers).
    pub item_quality: Vec<u64>,
    /// Activity proxy per consumer (photos posted / answers written).
    pub consumer_activity: Vec<u64>,
    /// Which item-capacity formula applies to this dataset.
    pub item_capacity_policy: ItemCapacityPolicy,
}

impl SocialDataset {
    /// Number of items `|T|`.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Number of consumers `|C|`.
    pub fn num_consumers(&self) -> usize {
        self.consumers.len()
    }

    /// Builds the capacities for the given activity factor α using the
    /// paper's formulas (Section 6).
    pub fn capacities(&self, alpha: f64) -> Capacities {
        let model = CapacityModel::new(alpha);
        match self.item_capacity_policy {
            ItemCapacityPolicy::QualityProportional => {
                model.flickr(&self.consumer_activity, &self.item_quality)
            }
            ItemCapacityPolicy::Uniform => model.answers(&self.consumer_activity, self.items.len()),
        }
    }

    /// Basic sanity validation used by generators and tests.
    pub fn validate(&self) -> Result<(), String> {
        if self.items.is_empty() || self.consumers.is_empty() {
            return Err("dataset must have at least one item and one consumer".to_string());
        }
        if self.item_quality.len() != self.items.len() {
            return Err(format!(
                "item_quality has {} entries for {} items",
                self.item_quality.len(),
                self.items.len()
            ));
        }
        if self.consumer_activity.len() != self.consumers.len() {
            return Err(format!(
                "consumer_activity has {} entries for {} consumers",
                self.consumer_activity.len(),
                self.consumers.len()
            ));
        }
        if self.items.iter().any(|d| d.text.trim().is_empty()) {
            return Err("every item document needs non-empty text".to_string());
        }
        if self.consumers.iter().any(|d| d.text.trim().is_empty()) {
            return Err("every consumer document needs non-empty text".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> SocialDataset {
        SocialDataset {
            name: "tiny".to_string(),
            items: vec![
                Document::new("p0", "beach sunset"),
                Document::new("p1", "city night"),
            ],
            consumers: vec![Document::new("u0", "beach city travel")],
            item_quality: vec![3, 1],
            consumer_activity: vec![4],
            item_capacity_policy: ItemCapacityPolicy::QualityProportional,
        }
    }

    #[test]
    fn validate_accepts_well_formed_datasets() {
        assert!(dataset().validate().is_ok());
    }

    #[test]
    fn validate_rejects_mismatched_vectors() {
        let mut d = dataset();
        d.item_quality.pop();
        assert!(d.validate().is_err());
        let mut d2 = dataset();
        d2.consumer_activity.push(1);
        assert!(d2.validate().is_err());
        let mut d3 = dataset();
        d3.items.clear();
        d3.item_quality.clear();
        assert!(d3.validate().is_err());
    }

    #[test]
    fn quality_proportional_capacities_follow_favourites() {
        let d = dataset();
        let caps = d.capacities(1.0);
        // Consumer budget = 4, item 0 has 3/4 of the favourites.
        assert_eq!(caps.total_consumer_capacity(), 4);
        assert_eq!(caps.item(smr_graph::ItemId(0)), 3);
        assert_eq!(caps.item(smr_graph::ItemId(1)), 1);
    }

    #[test]
    fn uniform_policy_splits_the_budget_equally() {
        let mut d = dataset();
        d.item_capacity_policy = ItemCapacityPolicy::Uniform;
        let caps = d.capacities(2.0);
        // Budget = α·4 = 8 over two items.
        assert_eq!(caps.item_capacities(), &[4, 4]);
    }

    #[test]
    fn alpha_scales_consumer_capacities() {
        let d = dataset();
        let low = d.capacities(0.5);
        let high = d.capacities(2.0);
        assert!(high.total_consumer_capacity() > low.total_consumer_capacity());
    }
}
