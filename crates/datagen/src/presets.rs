//! Laptop-scale stand-ins for the paper's three datasets.
//!
//! | Preset | Paper size (|T| / |C| / |E|) | This preset (|T| / |C|) |
//! |---|---|---|
//! | `flickr-small`   | 2 817 / 526 / 550 667            | 300 / 80   |
//! | `flickr-large`   | 373 373 / 32 707 / 1 995 123 827 | 4 200 / 640 |
//! | `yahoo-answers`  | 4 852 689 / 1 149 714 / 18 847 281 236 | 2 600 / 820 |
//! | `flickr-xl`      | — (scale tier)                   | 13 500 / 2 000 |
//!
//! `flickr-large` and `yahoo-answers` grow a notch toward the paper's
//! sizes with every scaling PR (3 600 / 560 and 2 200 / 700 before the
//! matching rounds went out-of-core, 2 500 / 400 and 1 500 / 500 before
//! the streaming similarity join landed); the sweeps stay laptop-scale
//! because neither the join's candidate set nor the matchers' round state
//! is materialized in RAM any more.
//!
//! The absolute sizes are scaled down by orders of magnitude so that the
//! full pipeline (similarity join + matching + parameter sweeps) runs on a
//! laptop in minutes; the *relative* characteristics the experiments
//! depend on are preserved: flickr-large is much larger and has a much more
//! skewed capacity distribution than flickr-small, and yahoo-answers has
//! uniform item capacities with many more items than consumers.
//!
//! `flickr-xl` is not one of the paper's datasets: it is the *spill tier*,
//! sized so that shuffle-heavy jobs overflow a small memory budget and
//! exercise the engine's disk-spilling path (the `spill` experiment
//! A/B-s budgets on it).  It is therefore not part of
//! [`DatasetPreset::all`] — the paper sweeps stay laptop-fast — but is
//! addressable by name everywhere presets are.

use serde::{Deserialize, Serialize};

use crate::answers::AnswersGenerator;
use crate::flickr::FlickrGenerator;
use crate::social::SocialDataset;

/// The three datasets of the paper's evaluation, at laptop scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetPreset {
    /// Scaled-down `flickr-small`.
    FlickrSmall,
    /// Scaled-down `flickr-large`.
    FlickrLarge,
    /// Scaled-down `yahoo-answers`.
    YahooAnswers,
    /// The out-of-core scale tier: a Flickr-shaped dataset sized to
    /// overflow small memory budgets and force the engine's spill path.
    FlickrXl,
}

impl DatasetPreset {
    /// The paper's three presets, in the order the paper presents them
    /// (the `flickr-xl` scale tier is addressed explicitly, not swept).
    pub fn all() -> [DatasetPreset; 3] {
        [
            DatasetPreset::FlickrSmall,
            DatasetPreset::FlickrLarge,
            DatasetPreset::YahooAnswers,
        ]
    }

    /// The dataset name used in reports (matches the paper's naming).
    pub fn name(self) -> &'static str {
        match self {
            DatasetPreset::FlickrSmall => "flickr-small",
            DatasetPreset::FlickrLarge => "flickr-large",
            DatasetPreset::YahooAnswers => "yahoo-answers",
            DatasetPreset::FlickrXl => "flickr-xl",
        }
    }

    /// Default similarity thresholds σ swept by the experiments for this
    /// preset (lower thresholds ⇒ more candidate edges), mirroring the
    /// σ sweeps of Figures 1–3.
    pub fn sigma_sweep(self) -> Vec<f64> {
        match self {
            DatasetPreset::FlickrSmall => vec![0.30, 0.22, 0.16, 0.11, 0.07],
            DatasetPreset::FlickrLarge | DatasetPreset::FlickrXl => {
                vec![0.35, 0.27, 0.20, 0.14, 0.09]
            }
            DatasetPreset::YahooAnswers => vec![0.30, 0.22, 0.16, 0.11, 0.07],
        }
    }

    /// The default σ used when a single instance of the preset is needed.
    pub fn default_sigma(self) -> f64 {
        self.sigma_sweep()[self.sigma_sweep().len() / 2]
    }

    /// The signature/sampling seed the sketch candidate generators use on
    /// this preset — one well-known value per preset, so the `sketch`
    /// experiment, the recall regression guard and any ad-hoc run all
    /// sample identically and their numbers are comparable.
    pub fn sketch_seed(self) -> u64 {
        // Disjoint from the dataset generation seed (2011) on purpose:
        // reusing one seed for both data and sketches would correlate the
        // sampled coordinates with the generated term assignments.
        0x5e7c_0000 + self as u64
    }

    /// Generates the documents, activity and quality signals of the
    /// preset.
    pub fn generate(self) -> SocialDataset {
        self.generate_with_seed(2011)
    }

    /// Generates the preset with an explicit seed.
    pub fn generate_with_seed(self, seed: u64) -> SocialDataset {
        let mut dataset = match self {
            DatasetPreset::FlickrSmall => FlickrGenerator {
                num_photos: 300,
                num_users: 80,
                vocabulary: 250,
                interests_per_user: 14,
                tags_per_photo: 7,
                topicality: 0.75,
                seed,
                ..FlickrGenerator::default()
            }
            .generate(),
            DatasetPreset::FlickrLarge => FlickrGenerator {
                num_photos: 4_200,
                num_users: 640,
                vocabulary: 1_250,
                interests_per_user: 10,
                tags_per_photo: 6,
                topicality: 0.7,
                activity_exponent: 1.4,
                max_activity: 600,
                favorites_exponent: 1.6,
                max_favorites: 2_000,
                seed,
                ..FlickrGenerator::default()
            }
            .generate(),
            DatasetPreset::YahooAnswers => AnswersGenerator {
                num_questions: 2_600,
                num_users: 820,
                vocabulary: 1_700,
                num_topics: 40,
                seed,
                ..AnswersGenerator::default()
            }
            .generate(),
            DatasetPreset::FlickrXl => FlickrGenerator {
                num_photos: 13_500,
                num_users: 2_000,
                vocabulary: 2_200,
                interests_per_user: 10,
                tags_per_photo: 6,
                topicality: 0.7,
                activity_exponent: 1.4,
                max_activity: 600,
                favorites_exponent: 1.6,
                max_favorites: 2_000,
                seed,
                ..FlickrGenerator::default()
            }
            .generate(),
        };
        dataset.name = self.name().to_string();
        dataset
    }
}

impl std::fmt::Display for DatasetPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for DatasetPreset {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "flickr-small" => Ok(DatasetPreset::FlickrSmall),
            "flickr-large" => Ok(DatasetPreset::FlickrLarge),
            "yahoo-answers" => Ok(DatasetPreset::YahooAnswers),
            "flickr-xl" => Ok(DatasetPreset::FlickrXl),
            other => Err(format!(
                "unknown dataset preset '{other}' (expected flickr-small, flickr-large, \
                 yahoo-answers or flickr-xl)"
            )),
        }
    }
}

/// A fully generated preset instance: the dataset plus the α value used
/// when deriving capacities.
#[derive(Debug, Clone)]
pub struct PresetInstance {
    /// Which preset this is.
    pub preset: DatasetPreset,
    /// The generated dataset.
    pub dataset: SocialDataset,
    /// The activity multiplier α.
    pub alpha: f64,
}

impl PresetInstance {
    /// Generates a preset instance with the given α.
    pub fn new(preset: DatasetPreset, alpha: f64) -> Self {
        PresetInstance {
            preset,
            dataset: preset.generate(),
            alpha,
        }
    }

    /// Capacities of this instance.
    pub fn capacities(&self) -> smr_graph::Capacities {
        self.dataset.capacities(self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn presets_have_distinct_sizes_ordered_like_the_paper() {
        let small = DatasetPreset::FlickrSmall.generate();
        let large = DatasetPreset::FlickrLarge.generate();
        let answers = DatasetPreset::YahooAnswers.generate();
        assert!(large.num_items() > 5 * small.num_items());
        assert!(large.num_consumers() > small.num_consumers());
        assert!(answers.num_items() > answers.num_consumers());
        assert_eq!(small.name, "flickr-small");
        assert_eq!(large.name, "flickr-large");
        assert_eq!(answers.name, "yahoo-answers");
    }

    #[test]
    fn names_round_trip_through_fromstr_and_display() {
        for preset in DatasetPreset::all()
            .into_iter()
            .chain([DatasetPreset::FlickrXl])
        {
            let parsed = DatasetPreset::from_str(&preset.to_string()).unwrap();
            assert_eq!(parsed, preset);
        }
        assert!(DatasetPreset::from_str("imagenet").is_err());
    }

    #[test]
    fn xl_tier_stays_well_beyond_the_growing_large_tier() {
        // Sizing only — generating the documents is cheap; the XL tier is
        // consumed by shuffle workloads, not by the full join sweep.  The
        // paper tiers grow toward paper scale PR by PR, so the headroom
        // ratio shrinks over time; 3× is the floor before the spill tier
        // itself must grow.
        let xl = DatasetPreset::FlickrXl.generate();
        let large = DatasetPreset::FlickrLarge.generate();
        assert!(xl.num_items() >= 3 * large.num_items());
        assert!(xl.num_consumers() >= 3 * large.num_consumers());
        assert_eq!(xl.name, "flickr-xl");
        assert!(
            !DatasetPreset::all().contains(&DatasetPreset::FlickrXl),
            "the paper sweep must not grow the scale tier"
        );
    }

    #[test]
    fn sigma_sweeps_are_decreasing() {
        for preset in DatasetPreset::all() {
            let sweep = preset.sigma_sweep();
            assert!(sweep.len() >= 3);
            for pair in sweep.windows(2) {
                assert!(pair[1] < pair[0], "{preset}: sweep must be decreasing");
            }
            assert!(sweep.contains(&preset.default_sigma()));
        }
    }

    #[test]
    fn preset_instances_carry_consistent_capacities() {
        let instance = PresetInstance::new(DatasetPreset::FlickrSmall, 1.0);
        let caps = instance.capacities();
        assert_eq!(caps.num_items(), instance.dataset.num_items());
        assert_eq!(caps.num_consumers(), instance.dataset.num_consumers());
    }

    #[test]
    fn generation_with_same_seed_is_reproducible() {
        let a = DatasetPreset::YahooAnswers.generate_with_seed(5);
        let b = DatasetPreset::YahooAnswers.generate_with_seed(5);
        assert_eq!(a.items, b.items);
    }
}
