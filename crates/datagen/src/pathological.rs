//! Adversarial and didactic instances from the paper.

use smr_graph::{BipartiteGraph, Capacities, ConsumerId, Edge, ItemId};

/// The GreedyMR worst case of Section 5.4: a path
/// `u1u2, u2u3, …, u_{k−1}u_k` with non-decreasing weights.  GreedyMR faces
/// a chain of cascading updates and needs a number of rounds linear in the
/// path length.
///
/// The path alternates items and consumers so it fits the bipartite
/// setting: `t0 − c0 − t1 − c1 − …`, with unit capacities everywhere.
pub fn increasing_weight_path(length: usize) -> (BipartiteGraph, Capacities) {
    assert!(length >= 2, "a path needs at least two nodes");
    let num_items = length.div_ceil(2);
    let num_consumers = length / 2;
    let mut edges = Vec::with_capacity(length - 1);
    // Node i of the path is item i/2 when i is even, consumer i/2 when odd.
    for i in 0..length - 1 {
        let weight = (i + 1) as f64;
        let (item, consumer) = if i % 2 == 0 {
            (ItemId((i / 2) as u32), ConsumerId((i / 2) as u32))
        } else {
            (ItemId((i / 2 + 1) as u32), ConsumerId((i / 2) as u32))
        };
        edges.push(Edge::new(item, consumer, weight));
    }
    let graph = BipartiteGraph::from_edges(num_items, num_consumers, edges);
    let caps = Capacities::uniform(&graph, 1, 1);
    (graph, caps)
}

/// The tightness example for the greedy ½ guarantee (appendix of the
/// paper), adapted to the bipartite setting: greedy takes the single
/// `(1+delta)`-edge and blocks the two unit edges whose total weight is 2.
pub fn greedy_tightness_instance(delta: f64) -> (BipartiteGraph, Capacities) {
    assert!(delta > 0.0, "delta must be positive");
    let graph = BipartiteGraph::from_edges(
        2,
        2,
        vec![
            Edge::new(ItemId(0), ConsumerId(0), 1.0 + delta),
            Edge::new(ItemId(0), ConsumerId(1), 1.0),
            Edge::new(ItemId(1), ConsumerId(0), 1.0),
        ],
    );
    let caps = Capacities::uniform(&graph, 1, 1);
    (graph, caps)
}

/// A complete bipartite graph with weights `1 + (t·|C| + c) / (|T|·|C|)`
/// (all distinct), useful for stress-testing because every node has full
/// degree.
pub fn complete_bipartite(num_items: usize, num_consumers: usize) -> BipartiteGraph {
    assert!(num_items > 0 && num_consumers > 0);
    let mut edges = Vec::with_capacity(num_items * num_consumers);
    let total = (num_items * num_consumers) as f64;
    for t in 0..num_items {
        for c in 0..num_consumers {
            let weight = 1.0 + (t * num_consumers + c) as f64 / total;
            edges.push(Edge::new(ItemId(t as u32), ConsumerId(c as u32), weight));
        }
    }
    BipartiteGraph::from_edges(num_items, num_consumers, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_has_the_right_shape() {
        let (g, caps) = increasing_weight_path(9);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.num_nodes(), 9);
        assert!(caps.matches(&g));
        // Weights strictly increase along the path.
        for w in g.edges().windows(2) {
            assert!(w[1].weight > w[0].weight);
        }
        // Interior nodes have degree 2, endpoints degree 1.
        let degree_one = g.nodes().filter(|&v| g.degree(v) == 1).count();
        assert_eq!(degree_one, 2);
    }

    #[test]
    fn path_even_length_also_works() {
        let (g, _) = increasing_weight_path(8);
        assert_eq!(g.num_edges(), 7);
        assert_eq!(g.num_nodes(), 8);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn degenerate_path_is_rejected() {
        increasing_weight_path(1);
    }

    #[test]
    fn tightness_instance_exposes_the_half_bound() {
        let (g, caps) = greedy_tightness_instance(0.1);
        let greedy = smr_matching_greedy_reference(&g, &caps);
        // Greedy picks the heaviest edge only: value 1.1; optimum is 2.0.
        assert!((greedy - 1.1).abs() < 1e-9);
    }

    /// A tiny local re-implementation of greedy used only to keep this
    /// crate free of a dependency on `smr-matching` (which depends on this
    /// crate's sibling `smr-graph` but not vice versa).
    fn smr_matching_greedy_reference(g: &BipartiteGraph, caps: &Capacities) -> f64 {
        let mut order: Vec<usize> = (0..g.num_edges()).collect();
        order.sort_by(|&a, &b| {
            g.edge(b)
                .weight
                .partial_cmp(&g.edge(a).weight)
                .unwrap()
                .then(a.cmp(&b))
        });
        let mut item_r: Vec<u64> = caps.item_capacities().to_vec();
        let mut cons_r: Vec<u64> = caps.consumer_capacities().to_vec();
        let mut value = 0.0;
        for e in order {
            let edge = g.edge(e);
            if item_r[edge.item.index()] > 0 && cons_r[edge.consumer.index()] > 0 {
                item_r[edge.item.index()] -= 1;
                cons_r[edge.consumer.index()] -= 1;
                value += edge.weight;
            }
        }
        value
    }

    #[test]
    fn complete_bipartite_has_all_edges_with_distinct_weights() {
        let g = complete_bipartite(4, 3);
        assert_eq!(g.num_edges(), 12);
        let mut weights = g.weights();
        weights.sort_by(|a, b| a.partial_cmp(b).unwrap());
        weights.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        assert_eq!(weights.len(), 12, "weights must be pairwise distinct");
    }
}
