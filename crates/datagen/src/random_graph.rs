//! Direct generation of weighted candidate-edge graphs.
//!
//! The full pipeline (documents → similarity join → graph) is what the
//! end-to-end experiments use, but many benchmarks only need "a bipartite
//! graph whose weight and degree distributions look like the paper's
//! candidate graphs".  This module generates such graphs directly, which
//! keeps the matching benchmarks focused on the matching algorithms.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use smr_graph::{BipartiteGraph, ConsumerId, Edge, ItemId};

use crate::powerlaw::ZipfSampler;

/// Edge-weight distributions.
///
/// The paper's similarity distributions (Figure 6) are heavily skewed
/// towards small values; [`WeightDistribution::Exponential`] reproduces
/// that shape, [`WeightDistribution::Uniform`] is the neutral baseline and
/// [`WeightDistribution::PowerLaw`] gives an even heavier tail.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WeightDistribution {
    /// Uniform on `[min, max)`.
    Uniform {
        /// Lower bound (inclusive).
        min: f64,
        /// Upper bound (exclusive).
        max: f64,
    },
    /// `min + Exp(rate)`, truncated at `cap`; most similarities are near
    /// the threshold with an exponentially decaying tail.
    Exponential {
        /// Lower bound (the similarity threshold σ).
        min: f64,
        /// Decay rate (larger ⇒ faster decay).
        rate: f64,
        /// Hard cap (similarities cannot exceed 1.0 for normalized
        /// vectors).
        cap: f64,
    },
    /// `min · u^(−1/(alpha−1))`, truncated at `cap`.
    PowerLaw {
        /// Lower bound.
        min: f64,
        /// Tail exponent (> 1).
        alpha: f64,
        /// Hard cap.
        cap: f64,
    },
}

impl WeightDistribution {
    /// Draws one weight.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            WeightDistribution::Uniform { min, max } => rng.gen_range(min..max),
            WeightDistribution::Exponential { min, rate, cap } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                (min + (-u.ln()) / rate).min(cap)
            }
            WeightDistribution::PowerLaw { min, alpha, cap } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                (min * u.powf(-1.0 / (alpha - 1.0))).min(cap)
            }
        }
    }
}

/// Configuration of the direct graph generator.
#[derive(Debug, Clone)]
pub struct RandomGraphConfig {
    /// Number of items.
    pub num_items: usize,
    /// Number of consumers.
    pub num_consumers: usize,
    /// Number of edges to generate (duplicates are merged, so the graph may
    /// end up with slightly fewer).
    pub num_edges: usize,
    /// Weight distribution.
    pub weights: WeightDistribution,
    /// Zipf exponent of node popularity: larger values concentrate edges
    /// on few popular items/consumers, mimicking the skewed degree
    /// distributions of the real datasets.
    pub popularity_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        RandomGraphConfig {
            num_items: 200,
            num_consumers: 100,
            num_edges: 2000,
            weights: WeightDistribution::Exponential {
                min: 0.05,
                rate: 8.0,
                cap: 1.0,
            },
            popularity_exponent: 0.8,
            seed: 42,
        }
    }
}

impl RandomGraphConfig {
    /// Generates the graph.
    pub fn generate(&self) -> BipartiteGraph {
        assert!(self.num_items > 0 && self.num_consumers > 0);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let item_sampler = ZipfSampler::new(self.num_items, self.popularity_exponent);
        let consumer_sampler = ZipfSampler::new(self.num_consumers, self.popularity_exponent);

        // Collect unique (item, consumer) pairs.
        let mut seen = std::collections::HashSet::with_capacity(self.num_edges);
        let mut edges = Vec::with_capacity(self.num_edges);
        let max_attempts = self.num_edges.saturating_mul(20).max(1000);
        let mut attempts = 0usize;
        while edges.len() < self.num_edges && attempts < max_attempts {
            attempts += 1;
            let t = item_sampler.sample(&mut rng) as u32;
            let c = consumer_sampler.sample(&mut rng) as u32;
            if seen.insert((t, c)) {
                let w = self.weights.sample(&mut rng).max(1e-9);
                edges.push(Edge::new(ItemId(t), ConsumerId(c), w));
            }
        }
        BipartiteGraph::from_edges(self.num_items, self.num_consumers, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_the_requested_shape() {
        let g = RandomGraphConfig {
            num_items: 50,
            num_consumers: 30,
            num_edges: 300,
            seed: 1,
            ..RandomGraphConfig::default()
        }
        .generate();
        assert_eq!(g.num_items(), 50);
        assert_eq!(g.num_consumers(), 30);
        assert!(
            g.num_edges() > 250,
            "should generate close to the requested edges"
        );
        assert!(g.edges().iter().all(|e| e.weight > 0.0));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = RandomGraphConfig::default().generate();
        let b = RandomGraphConfig::default().generate();
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.edge(0).item, b.edge(0).item);
        let c = RandomGraphConfig {
            seed: 7,
            ..RandomGraphConfig::default()
        }
        .generate();
        assert_eq!(c.num_items(), a.num_items());
    }

    #[test]
    fn popularity_skews_degrees() {
        let g = RandomGraphConfig {
            num_items: 100,
            num_consumers: 100,
            num_edges: 2000,
            popularity_exponent: 1.2,
            seed: 3,
            ..RandomGraphConfig::default()
        }
        .generate();
        let first = g.degree(smr_graph::NodeId::item(0));
        let last = g.degree(smr_graph::NodeId::item(99));
        assert!(
            first > last,
            "rank-0 item should be much more popular ({first} vs {last})"
        );
    }

    #[test]
    fn exponential_weights_are_mostly_near_the_minimum() {
        let mut rng = StdRng::seed_from_u64(5);
        let dist = WeightDistribution::Exponential {
            min: 0.1,
            rate: 10.0,
            cap: 1.0,
        };
        let samples: Vec<f64> = (0..5000).map(|_| dist.sample(&mut rng)).collect();
        let near_min = samples.iter().filter(|&&w| w < 0.2).count();
        assert!(near_min > samples.len() / 2);
        assert!(samples.iter().all(|&w| (0.1..=1.0).contains(&w)));
    }

    #[test]
    fn uniform_and_power_law_weights_respect_their_bounds() {
        let mut rng = StdRng::seed_from_u64(6);
        let uniform = WeightDistribution::Uniform { min: 0.2, max: 0.8 };
        let power = WeightDistribution::PowerLaw {
            min: 0.1,
            alpha: 2.5,
            cap: 1.0,
        };
        for _ in 0..2000 {
            let u = uniform.sample(&mut rng);
            assert!((0.2..0.8).contains(&u));
            let p = power.sample(&mut rng);
            assert!((0.1..=1.0).contains(&p));
        }
    }
}
