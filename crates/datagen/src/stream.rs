//! Streaming generation: documents flow straight into a disk-backed
//! [`DatasetStore`] instead of accumulating in a `Vec<Document>`.
//!
//! At the paper's real magnitudes the generated corpora are the first
//! thing that stops fitting in RAM, long before the similarity join or the
//! matching rounds see them.  The generators therefore produce documents
//! through a [`DocumentSink`]: the convenience `generate()` methods sink
//! into vectors (the historical behaviour, byte-identical by construction
//! since both paths share one generation core), while `generate_to_store`
//! sinks into run files so at most one buffered batch of documents is
//! resident at any time.  The small per-node side channels
//! (`item_quality`, `consumer_activity` — one `u64` per node) stay in
//! memory; only the documents, whose total size scales with text length,
//! are streamed.

use smr_graph::Capacities;
use smr_storage::{DatasetStore, StorageError};
use smr_text::Document;

use crate::social::{ItemCapacityPolicy, SocialDataset};

/// Receives generated documents one at a time, in generation order.
pub trait DocumentSink {
    /// Accepts the next document.
    fn push(&mut self, doc: Document) -> Result<(), StorageError>;
}

/// The in-memory sink: collect everything (what `generate()` uses).
impl DocumentSink for Vec<Document> {
    fn push(&mut self, doc: Document) -> Result<(), StorageError> {
        Vec::push(self, doc);
        Ok(())
    }
}

/// How many documents a [`StoreDocumentSink`] buffers between appends.
///
/// Bounds resident memory at one batch while amortizing the per-append
/// header validation of [`DatasetStore::append`].
pub const STORE_SINK_BATCH: usize = 256;

/// A sink that appends documents to a named dataset in a [`DatasetStore`],
/// holding at most [`STORE_SINK_BATCH`] documents in memory.
///
/// Call [`StoreDocumentSink::finish`] to flush the final partial batch;
/// dropping an unfinished sink loses the buffered tail (never silently —
/// `finish` is the only way to learn the final count).
#[derive(Debug)]
pub struct StoreDocumentSink<'a> {
    store: &'a DatasetStore,
    name: String,
    buffer: Vec<Document>,
    written: usize,
}

impl<'a> StoreDocumentSink<'a> {
    /// Creates a sink writing the dataset `name`, replacing any previous
    /// dataset of that name.
    pub fn create(store: &'a DatasetStore, name: impl Into<String>) -> Self {
        let name = name.into();
        store.remove(&name);
        StoreDocumentSink {
            store,
            name,
            buffer: Vec::with_capacity(STORE_SINK_BATCH),
            written: 0,
        }
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        self.store.append(&self.name, &self.buffer)?;
        self.written += self.buffer.len();
        self.buffer.clear();
        Ok(())
    }

    /// Flushes the tail batch and returns the number of documents written.
    pub fn finish(mut self) -> Result<usize, StorageError> {
        self.flush()?;
        Ok(self.written)
    }
}

impl DocumentSink for StoreDocumentSink<'_> {
    fn push(&mut self, doc: Document) -> Result<(), StorageError> {
        self.buffer.push(doc);
        if self.buffer.len() >= STORE_SINK_BATCH {
            self.flush()?;
        }
        Ok(())
    }
}

/// A dataset whose documents live in a [`DatasetStore`] rather than in
/// memory: the handle returned by the generators' `generate_to_store`.
///
/// Carries the store-resident dataset names plus the small per-node side
/// channels; [`StreamedDataset::load`] materializes the equivalent
/// [`SocialDataset`] (exactly what `generate()` would have produced) and
/// the reader accessors stream the documents without materializing them.
#[derive(Debug, Clone)]
pub struct StreamedDataset {
    /// Dataset name (used in experiment reports).
    pub name: String,
    /// Store dataset holding the item documents, in item-id order.
    pub items: String,
    /// Store dataset holding the consumer documents, in consumer-id order.
    pub consumers: String,
    /// Number of item documents written.
    pub num_items: usize,
    /// Number of consumer documents written.
    pub num_consumers: usize,
    /// Quality signal per item (favourites for flickr, constant for
    /// answers).
    pub item_quality: Vec<u64>,
    /// Activity proxy per consumer.
    pub consumer_activity: Vec<u64>,
    /// Which item-capacity formula applies to this dataset.
    pub item_capacity_policy: ItemCapacityPolicy,
}

impl StreamedDataset {
    /// Opens a streaming reader over the item documents.
    pub fn item_reader(
        &self,
        store: &DatasetStore,
    ) -> Result<smr_storage::RunReader<Document>, StorageError> {
        store.open_reader(&self.items)
    }

    /// Opens a streaming reader over the consumer documents.
    pub fn consumer_reader(
        &self,
        store: &DatasetStore,
    ) -> Result<smr_storage::RunReader<Document>, StorageError> {
        store.open_reader(&self.consumers)
    }

    /// Builds the capacities for activity factor α (no document access —
    /// capacities only need the per-node side channels).
    pub fn capacities(&self, alpha: f64) -> Capacities {
        self.as_social(Vec::new(), Vec::new()).capacities(alpha)
    }

    /// Materializes the full in-memory [`SocialDataset`].
    pub fn load(&self, store: &DatasetStore) -> Result<SocialDataset, StorageError> {
        let dataset = self.as_social(store.read(&self.items)?, store.read(&self.consumers)?);
        debug_assert!(dataset.validate().is_ok());
        Ok(dataset)
    }

    fn as_social(&self, items: Vec<Document>, consumers: Vec<Document>) -> SocialDataset {
        SocialDataset {
            name: self.name.clone(),
            items,
            consumers,
            item_quality: self.item_quality.clone(),
            consumer_activity: self.consumer_activity.clone(),
            item_capacity_policy: self.item_capacity_policy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(tag: &str) -> DatasetStore {
        let root =
            std::env::temp_dir().join(format!("smr-datagen-stream-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        DatasetStore::open(root).expect("store")
    }

    #[test]
    fn store_sink_batches_and_counts() {
        let store = store("batches");
        let mut sink = StoreDocumentSink::create(&store, "docs");
        let n = STORE_SINK_BATCH + 7;
        for i in 0..n {
            sink.push(Document::new(format!("d{i}"), "text")).unwrap();
        }
        assert_eq!(sink.finish().unwrap(), n);
        let read: Vec<Document> = store.read("docs").unwrap();
        assert_eq!(read.len(), n);
        assert_eq!(read[0].id, "d0");
        assert_eq!(read[n - 1].id, format!("d{}", n - 1));
    }

    #[test]
    fn store_sink_replaces_previous_dataset() {
        let store = store("replaces");
        let mut sink = StoreDocumentSink::create(&store, "docs");
        sink.push(Document::new("old", "text")).unwrap();
        sink.finish().unwrap();
        let mut sink = StoreDocumentSink::create(&store, "docs");
        sink.push(Document::new("new", "text")).unwrap();
        assert_eq!(sink.finish().unwrap(), 1);
        let read: Vec<Document> = store.read("docs").unwrap();
        assert_eq!(read.len(), 1);
        assert_eq!(read[0].id, "new");
    }
}
