//! Zipf and power-law samplers.
//!
//! Social-media quantities are heavy-tailed: tag/term popularity, user
//! activity, photo favourites.  The generators draw them from a Zipf
//! distribution over ranks and a discrete power law over values.

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to `1/(rank+1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative distribution over ranks.
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        ZipfSampler { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler has no ranks (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative values are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Samples positive integers from a (truncated) discrete power law:
/// `P(X = k) ∝ k^(−exponent)` for `k` in `[1, max_value]`.
#[derive(Debug, Clone)]
pub struct PowerLawSampler {
    cumulative: Vec<f64>,
}

impl PowerLawSampler {
    /// Creates a sampler for values `1..=max_value` with the given
    /// exponent.
    ///
    /// # Panics
    /// Panics if `max_value == 0` or `exponent <= 0`.
    pub fn new(max_value: u64, exponent: f64) -> Self {
        assert!(max_value > 0, "max_value must be positive");
        assert!(exponent > 0.0, "exponent must be positive");
        let mut cumulative = Vec::with_capacity(max_value as usize);
        let mut total = 0.0;
        for k in 1..=max_value {
            total += (k as f64).powf(-exponent);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        PowerLawSampler { cumulative }
    }

    /// Draws one value in `1..=max_value`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let idx = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative values are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        };
        (idx + 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_favours_low_ranks() {
        let sampler = ZipfSampler::new(100, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[50] * 5);
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn zipf_with_zero_exponent_is_roughly_uniform() {
        let sampler = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 5000.0).abs() < 700.0,
                "count {c} too far from uniform"
            );
        }
    }

    #[test]
    fn zipf_samples_are_always_in_range() {
        let sampler = ZipfSampler::new(7, 2.0);
        assert_eq!(sampler.len(), 7);
        assert!(!sampler.is_empty());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(sampler.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn power_law_produces_heavy_tail_but_mostly_small_values() {
        let sampler = PowerLawSampler::new(1000, 2.0);
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<u64> = (0..20_000).map(|_| sampler.sample(&mut rng)).collect();
        let ones = samples.iter().filter(|&&v| v == 1).count();
        let large = samples.iter().filter(|&&v| v > 100).count();
        assert!(
            ones > samples.len() / 2,
            "power law should be dominated by 1s"
        );
        assert!(large > 0, "the tail should still be reachable");
        assert!(samples.iter().all(|&v| (1..=1000).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty_support() {
        ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent must be positive")]
    fn power_law_rejects_non_positive_exponent() {
        PowerLawSampler::new(10, 0.0);
    }
}
