//! Synthetic flickr-like dataset: photos described by tags, users described
//! by the tags they use, power-law activity and favourites.
//!
//! Structure of the generator (mirroring how the paper builds its flickr
//! datasets in Section 6):
//!
//! * every *user* has a small set of topical interests drawn from a Zipf
//!   distribution over a tag vocabulary and an activity level `n(u)`
//!   (photos posted) drawn from a power law;
//! * every *photo* belongs to one of the users (proportionally to
//!   activity) and is tagged with tags drawn mostly from its owner's
//!   interests plus some global noise — this is what creates non-trivial
//!   photo–user similarities;
//! * every photo receives a number of favourites `f(p)` drawn from a power
//!   law (the quality signal used for item capacities);
//! * the user document is the union of the tags the user has used, exactly
//!   as the paper represents users.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smr_storage::{DatasetStore, StorageError};
use smr_text::Document;

use crate::powerlaw::{PowerLawSampler, ZipfSampler};
use crate::social::{ItemCapacityPolicy, SocialDataset};
use crate::stream::{DocumentSink, StoreDocumentSink, StreamedDataset};

/// Configuration of the flickr-like generator.
#[derive(Debug, Clone)]
pub struct FlickrGenerator {
    /// Number of photos (items).
    pub num_photos: usize,
    /// Number of users (consumers).
    pub num_users: usize,
    /// Tag vocabulary size.
    pub vocabulary: usize,
    /// Zipf exponent of tag popularity.
    pub tag_exponent: f64,
    /// Number of interest tags per user.
    pub interests_per_user: usize,
    /// Number of tags per photo.
    pub tags_per_photo: usize,
    /// Probability that a photo tag comes from the owner's interests
    /// (rather than the global tag distribution).
    pub topicality: f64,
    /// Power-law exponent of user activity (photos posted).
    pub activity_exponent: f64,
    /// Maximum activity value.
    pub max_activity: u64,
    /// Power-law exponent of photo favourites.
    pub favorites_exponent: f64,
    /// Maximum favourites value.
    pub max_favorites: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FlickrGenerator {
    fn default() -> Self {
        FlickrGenerator {
            num_photos: 500,
            num_users: 100,
            vocabulary: 400,
            tag_exponent: 1.05,
            interests_per_user: 12,
            tags_per_photo: 6,
            topicality: 0.7,
            activity_exponent: 1.6,
            max_activity: 200,
            favorites_exponent: 1.8,
            max_favorites: 500,
            seed: 42,
        }
    }
}

impl FlickrGenerator {
    /// Generates the dataset in memory.
    pub fn generate(&self) -> SocialDataset {
        let mut items = Vec::with_capacity(self.num_photos);
        let mut consumers = Vec::with_capacity(self.num_users);
        let (item_quality, consumer_activity) = self
            .generate_into(&mut items, &mut consumers)
            .expect("in-memory sinks cannot fail");
        let dataset = SocialDataset {
            name: "flickr-synthetic".to_string(),
            items,
            consumers,
            item_quality,
            consumer_activity,
            item_capacity_policy: ItemCapacityPolicy::QualityProportional,
        };
        debug_assert!(dataset.validate().is_ok());
        dataset
    }

    /// Generates the dataset straight into `store`, streaming the
    /// documents to disk under `{prefix}/items` and `{prefix}/consumers`
    /// so at most one sink batch of documents is resident at a time.
    ///
    /// The returned handle loads back to exactly what [`generate`]
    /// produces for the same configuration (both paths share
    /// [`generate_into`]).
    ///
    /// [`generate`]: FlickrGenerator::generate
    /// [`generate_into`]: FlickrGenerator::generate_into
    pub fn generate_to_store(
        &self,
        store: &DatasetStore,
        prefix: &str,
    ) -> Result<StreamedDataset, StorageError> {
        let mut items = StoreDocumentSink::create(store, format!("{prefix}/items"));
        let mut consumers = StoreDocumentSink::create(store, format!("{prefix}/consumers"));
        let (item_quality, consumer_activity) = self.generate_into(&mut items, &mut consumers)?;
        Ok(StreamedDataset {
            name: "flickr-synthetic".to_string(),
            items: format!("{prefix}/items"),
            consumers: format!("{prefix}/consumers"),
            num_items: items.finish()?,
            num_consumers: consumers.finish()?,
            item_quality,
            consumer_activity,
            item_capacity_policy: ItemCapacityPolicy::QualityProportional,
        })
    }

    /// The generation core: emits photo documents into `items` (one per
    /// photo, in id order) and user documents into `consumers` (one per
    /// user, in id order), returning `(item_quality, consumer_activity)`.
    pub fn generate_into(
        &self,
        items: &mut dyn DocumentSink,
        consumers: &mut dyn DocumentSink,
    ) -> Result<(Vec<u64>, Vec<u64>), StorageError> {
        assert!(self.num_photos > 0 && self.num_users > 0);
        assert!((0.0..=1.0).contains(&self.topicality));
        let mut rng = StdRng::seed_from_u64(self.seed);
        let tag_sampler = ZipfSampler::new(self.vocabulary, self.tag_exponent);
        let activity_sampler = PowerLawSampler::new(self.max_activity, self.activity_exponent);
        let favorites_sampler = PowerLawSampler::new(self.max_favorites, self.favorites_exponent);

        // Users: interests and activity.
        let mut user_interests: Vec<Vec<usize>> = Vec::with_capacity(self.num_users);
        let mut consumer_activity: Vec<u64> = Vec::with_capacity(self.num_users);
        for _ in 0..self.num_users {
            let mut interests: Vec<usize> = (0..self.interests_per_user)
                .map(|_| tag_sampler.sample(&mut rng))
                .collect();
            interests.sort_unstable();
            interests.dedup();
            user_interests.push(interests);
            consumer_activity.push(activity_sampler.sample(&mut rng));
        }

        // Photos: owner (activity-proportional), tags, favourites.  Photo
        // documents stream out one at a time; only the per-user used-tag
        // sets accumulate (O(users), not O(photos · text)).
        let total_activity: u64 = consumer_activity.iter().sum();
        let mut item_quality = Vec::with_capacity(self.num_photos);
        // Track which tags each user actually used so the user document is
        // the union of the tags of their photos plus their interests.
        let mut user_used_tags: Vec<Vec<usize>> = vec![Vec::new(); self.num_users];
        for photo in 0..self.num_photos {
            let owner = sample_weighted(&mut rng, &consumer_activity, total_activity);
            let mut tags = Vec::with_capacity(self.tags_per_photo);
            for _ in 0..self.tags_per_photo {
                let from_interests =
                    !user_interests[owner].is_empty() && rng.gen::<f64>() < self.topicality;
                let tag = if from_interests {
                    user_interests[owner][rng.gen_range(0..user_interests[owner].len())]
                } else {
                    tag_sampler.sample(&mut rng)
                };
                tags.push(tag);
            }
            tags.sort_unstable();
            tags.dedup();
            user_used_tags[owner].extend(tags.iter().copied());
            let text = tags
                .iter()
                .map(|&t| format!("tag{t}"))
                .collect::<Vec<_>>()
                .join(" ");
            items.push(Document::new(format!("photo-{photo}"), text))?;
            item_quality.push(favorites_sampler.sample(&mut rng));
        }

        // Consumers: interests plus the tags of their own photos (known
        // only once every photo has been assigned, so these flush at the
        // end).
        for u in 0..self.num_users {
            let mut tags: Vec<usize> = user_interests[u]
                .iter()
                .chain(user_used_tags[u].iter())
                .copied()
                .collect();
            tags.sort_unstable();
            tags.dedup();
            let text = tags
                .iter()
                .map(|&t| format!("tag{t}"))
                .collect::<Vec<_>>()
                .join(" ");
            consumers.push(Document::new(format!("user-{u}"), text))?;
        }

        Ok((item_quality, consumer_activity))
    }
}

/// Samples an index proportionally to the given non-negative weights.
fn sample_weighted(rng: &mut StdRng, weights: &[u64], total: u64) -> usize {
    if total == 0 {
        return rng.gen_range(0..weights.len());
    }
    let mut target = rng.gen_range(0..total);
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FlickrGenerator {
        FlickrGenerator {
            num_photos: 60,
            num_users: 15,
            vocabulary: 50,
            seed: 7,
            ..FlickrGenerator::default()
        }
    }

    #[test]
    fn generates_a_valid_dataset_of_the_requested_size() {
        let d = small().generate();
        assert_eq!(d.num_items(), 60);
        assert_eq!(d.num_consumers(), 15);
        assert!(d.validate().is_ok());
        assert_eq!(
            d.item_capacity_policy,
            ItemCapacityPolicy::QualityProportional
        );
    }

    #[test]
    fn generation_is_reproducible_for_a_seed() {
        let a = small().generate();
        let b = small().generate();
        assert_eq!(a.items, b.items);
        assert_eq!(a.consumer_activity, b.consumer_activity);
        let c = FlickrGenerator { seed: 8, ..small() }.generate();
        assert_ne!(a.items, c.items);
    }

    #[test]
    fn activity_and_favorites_are_heavy_tailed() {
        let d = FlickrGenerator {
            num_photos: 2000,
            num_users: 400,
            seed: 3,
            ..FlickrGenerator::default()
        }
        .generate();
        let ones = d.consumer_activity.iter().filter(|&&a| a == 1).count();
        assert!(
            ones > d.num_consumers() / 3,
            "most users should post little"
        );
        let max_activity = *d.consumer_activity.iter().max().unwrap();
        assert!(max_activity >= 10, "a few users should be very active");
        let max_fav = *d.item_quality.iter().max().unwrap();
        assert!(max_fav >= 10, "a few photos should be very popular");
    }

    #[test]
    fn photo_and_owner_share_tags_thanks_to_topicality() {
        let d = small().generate();
        // At least some photos must share a tag with some user profile —
        // otherwise the similarity join would produce an empty graph.
        let any_overlap = d.items.iter().any(|photo| {
            d.consumers.iter().any(|user| {
                photo
                    .text
                    .split_whitespace()
                    .any(|tag| user.text.split_whitespace().any(|t| t == tag))
            })
        });
        assert!(any_overlap);
    }

    #[test]
    fn streamed_generation_matches_in_memory() {
        let root = std::env::temp_dir().join(format!("smr-flickr-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = DatasetStore::open(root).unwrap();
        let streamed = small().generate_to_store(&store, "flickr").unwrap();
        assert_eq!(streamed.num_items, 60);
        assert_eq!(streamed.num_consumers, 15);
        let loaded = streamed.load(&store).unwrap();
        let in_memory = small().generate();
        assert_eq!(loaded.items, in_memory.items);
        assert_eq!(loaded.consumers, in_memory.consumers);
        assert_eq!(loaded.item_quality, in_memory.item_quality);
        assert_eq!(loaded.consumer_activity, in_memory.consumer_activity);
        assert_eq!(loaded.item_capacity_policy, in_memory.item_capacity_policy);
        // Capacities come straight off the handle, no document access.
        assert_eq!(
            streamed.capacities(1.0).item_capacities(),
            in_memory.capacities(1.0).item_capacities()
        );
    }

    #[test]
    fn capacities_use_the_flickr_policy() {
        let d = small().generate();
        let caps = d.capacities(1.0);
        assert_eq!(caps.num_items(), d.num_items());
        assert_eq!(caps.num_consumers(), d.num_consumers());
        assert!(caps.total_item_capacity() > 0);
    }

    #[test]
    fn sample_weighted_respects_weights() {
        let mut rng = StdRng::seed_from_u64(11);
        let weights = vec![0, 0, 10, 0];
        for _ in 0..100 {
            assert_eq!(sample_weighted(&mut rng, &weights, 10), 2);
        }
        // Zero total falls back to uniform but stays in range.
        for _ in 0..100 {
            let i = sample_weighted(&mut rng, &[0, 0, 0], 0);
            assert!(i < 3);
        }
    }
}
