//! Arrival streams: the serving-time view of a dataset, where items show
//! up one at a time instead of all at once.
//!
//! The batch pipeline sees every item up front; the serving pipeline
//! (`MatchingPipeline::serve` in the facade crate) answers point queries
//! as items *arrive*.  [`ArrivalStream`] fixes a deterministic arrival
//! order over a generated dataset — a seeded shuffle, so arrival order is
//! decorrelated from generation order but reproducible — and carries each
//! arrival's capacity, derived from the full dataset's capacity formula so
//! that replaying the whole stream exercises exactly the batch instance.

use smr_graph::Capacities;

use crate::social::SocialDataset;

/// One item arriving at the serving pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItemArrival {
    /// Index of the item in the source dataset (`dataset.items[item]` is
    /// its document).
    pub item: usize,
    /// The item's capacity under the dataset's capacity policy.
    pub capacity: u64,
}

/// A deterministic arrival order over a dataset's items.
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    /// Every item of the dataset, in arrival order.
    pub arrivals: Vec<ItemArrival>,
}

impl ArrivalStream {
    /// Fixes the arrival order for `dataset`: a seeded shuffle of all
    /// items, with capacities taken from [`SocialDataset::capacities`] at
    /// the given `alpha` (so the stream replays the batch instance, just
    /// incrementally).
    pub fn new(dataset: &SocialDataset, alpha: f64, seed: u64) -> Self {
        Self::with_capacities(&dataset.capacities(alpha), seed)
    }

    /// Fixes the arrival order from pre-computed capacities.
    pub fn with_capacities(caps: &Capacities, seed: u64) -> Self {
        let mut arrivals: Vec<ItemArrival> = caps
            .item_capacities()
            .iter()
            .enumerate()
            .map(|(item, &capacity)| ItemArrival { item, capacity })
            .collect();
        // Fisher–Yates with a splitmix-style generator: cheap, seeded,
        // dependency-free.
        let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for i in (1..arrivals.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            arrivals.swap(i, j);
        }
        ArrivalStream { arrivals }
    }

    /// Number of arrivals (always the full item count).
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::DatasetPreset;

    #[test]
    fn streams_are_permutations_with_batch_capacities() {
        let dataset = DatasetPreset::FlickrSmall.generate();
        let caps = dataset.capacities(1.0);
        let stream = ArrivalStream::new(&dataset, 1.0, 7);
        assert_eq!(stream.len(), dataset.num_items());
        let mut seen: Vec<usize> = stream.arrivals.iter().map(|a| a.item).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..dataset.num_items()).collect::<Vec<_>>());
        for a in &stream.arrivals {
            assert_eq!(a.capacity, caps.item_capacities()[a.item]);
        }
    }

    #[test]
    fn same_seed_reproduces_the_order_and_seeds_differ() {
        let dataset = DatasetPreset::FlickrSmall.generate();
        let a = ArrivalStream::new(&dataset, 1.0, 7);
        let b = ArrivalStream::new(&dataset, 1.0, 7);
        let c = ArrivalStream::new(&dataset, 1.0, 8);
        assert_eq!(a.arrivals, b.arrivals);
        assert_ne!(a.arrivals, c.arrivals, "different seed, different order");
        assert_ne!(
            a.arrivals.iter().map(|x| x.item).collect::<Vec<_>>(),
            (0..dataset.num_items()).collect::<Vec<_>>(),
            "arrival order must not be generation order"
        );
    }
}
