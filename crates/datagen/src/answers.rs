//! Synthetic Yahoo!-Answers-like dataset: questions and users described by
//! words, activity measured in answers written.
//!
//! Users have topical interests over a word vocabulary; questions belong to
//! topics; a user's document is the concatenation of words from the
//! (virtual) answers they wrote, which are drawn mostly from their
//! interests.  Question capacities are uniform (Section 6), so
//! `item_quality` is constant and the dataset uses the
//! [`ItemCapacityPolicy::Uniform`] policy.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smr_storage::{DatasetStore, StorageError};
use smr_text::Document;

use crate::powerlaw::{PowerLawSampler, ZipfSampler};
use crate::social::{ItemCapacityPolicy, SocialDataset};
use crate::stream::{DocumentSink, StoreDocumentSink, StreamedDataset};

/// Configuration of the Yahoo!-Answers-like generator.
#[derive(Debug, Clone)]
pub struct AnswersGenerator {
    /// Number of questions (items).
    pub num_questions: usize,
    /// Number of users (consumers).
    pub num_users: usize,
    /// Word vocabulary size.
    pub vocabulary: usize,
    /// Number of topics; each topic is a Zipf distribution over a slice of
    /// the vocabulary.
    pub num_topics: usize,
    /// Words per question.
    pub words_per_question: usize,
    /// Words contributed by each answer a user writes.
    pub words_per_answer: usize,
    /// Zipf exponent inside a topic.
    pub word_exponent: f64,
    /// Power-law exponent of user activity (answers written).
    pub activity_exponent: f64,
    /// Maximum activity value.
    pub max_activity: u64,
    /// Probability that a word is drawn from the active topic rather than
    /// the background distribution.
    pub topicality: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnswersGenerator {
    fn default() -> Self {
        AnswersGenerator {
            num_questions: 800,
            num_users: 200,
            vocabulary: 600,
            num_topics: 20,
            words_per_question: 10,
            words_per_answer: 8,
            word_exponent: 1.05,
            activity_exponent: 1.7,
            max_activity: 300,
            topicality: 0.8,
            seed: 42,
        }
    }
}

impl AnswersGenerator {
    /// Generates the dataset in memory.
    pub fn generate(&self) -> SocialDataset {
        let mut items = Vec::with_capacity(self.num_questions);
        let mut consumers = Vec::with_capacity(self.num_users);
        let consumer_activity = self
            .generate_into(&mut items, &mut consumers)
            .expect("in-memory sinks cannot fail");
        let dataset = SocialDataset {
            name: "yahoo-answers-synthetic".to_string(),
            items,
            consumers,
            // Questions have no quality signal: uniform capacities.
            item_quality: vec![1; self.num_questions],
            consumer_activity,
            item_capacity_policy: ItemCapacityPolicy::Uniform,
        };
        debug_assert!(dataset.validate().is_ok());
        dataset
    }

    /// Generates the dataset straight into `store`, streaming the
    /// documents to disk under `{prefix}/items` and `{prefix}/consumers`
    /// (see [`FlickrGenerator::generate_to_store`] — same contract:
    /// loading the handle back yields exactly what [`generate`] produces).
    ///
    /// [`FlickrGenerator::generate_to_store`]: crate::flickr::FlickrGenerator::generate_to_store
    /// [`generate`]: AnswersGenerator::generate
    pub fn generate_to_store(
        &self,
        store: &DatasetStore,
        prefix: &str,
    ) -> Result<StreamedDataset, StorageError> {
        let mut items = StoreDocumentSink::create(store, format!("{prefix}/items"));
        let mut consumers = StoreDocumentSink::create(store, format!("{prefix}/consumers"));
        let consumer_activity = self.generate_into(&mut items, &mut consumers)?;
        Ok(StreamedDataset {
            name: "yahoo-answers-synthetic".to_string(),
            items: format!("{prefix}/items"),
            consumers: format!("{prefix}/consumers"),
            num_items: items.finish()?,
            num_consumers: consumers.finish()?,
            item_quality: vec![1; self.num_questions],
            consumer_activity,
            item_capacity_policy: ItemCapacityPolicy::Uniform,
        })
    }

    /// The generation core: emits question documents into `items` and user
    /// documents into `consumers` (both one at a time, in id order),
    /// returning `consumer_activity`.
    pub fn generate_into(
        &self,
        items: &mut dyn DocumentSink,
        consumers: &mut dyn DocumentSink,
    ) -> Result<Vec<u64>, StorageError> {
        assert!(self.num_questions > 0 && self.num_users > 0);
        assert!(self.num_topics > 0 && self.vocabulary >= self.num_topics);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let words_per_topic = self.vocabulary / self.num_topics;
        let topic_sampler = ZipfSampler::new(self.num_topics, 1.0);
        let word_sampler = ZipfSampler::new(words_per_topic.max(1), self.word_exponent);
        let background_sampler = ZipfSampler::new(self.vocabulary, self.word_exponent);
        let activity_sampler = PowerLawSampler::new(self.max_activity, self.activity_exponent);

        let draw_word = |rng: &mut StdRng, topic: usize| -> usize {
            if rng.gen::<f64>() < self.topicality {
                topic * words_per_topic + word_sampler.sample(rng)
            } else {
                background_sampler.sample(rng)
            }
        };

        // Questions: one topic each, streamed out as they are drawn.
        for q in 0..self.num_questions {
            let topic = topic_sampler.sample(&mut rng);
            let words: Vec<String> = (0..self.words_per_question)
                .map(|_| format!("word{}", draw_word(&mut rng, topic)))
                .collect();
            items.push(Document::new(format!("question-{q}"), words.join(" ")))?;
        }

        // Users: a couple of preferred topics; their document accumulates
        // the words of the answers they wrote.  One user document is in
        // flight at a time.
        let mut consumer_activity = Vec::with_capacity(self.num_users);
        for u in 0..self.num_users {
            let answers = activity_sampler.sample(&mut rng);
            consumer_activity.push(answers);
            let favourite_topics: Vec<usize> =
                (0..2).map(|_| topic_sampler.sample(&mut rng)).collect();
            let mut words = Vec::new();
            // Cap the document length so highly active users do not
            // produce megabyte-sized profiles.
            let effective_answers = answers.min(40);
            for _ in 0..effective_answers.max(1) {
                let topic = favourite_topics[rng.gen_range(0..favourite_topics.len())];
                for _ in 0..self.words_per_answer {
                    words.push(format!("word{}", draw_word(&mut rng, topic)));
                }
            }
            consumers.push(Document::new(format!("user-{u}"), words.join(" ")))?;
        }

        Ok(consumer_activity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AnswersGenerator {
        AnswersGenerator {
            num_questions: 50,
            num_users: 20,
            vocabulary: 120,
            num_topics: 6,
            seed: 5,
            ..AnswersGenerator::default()
        }
    }

    #[test]
    fn generates_a_valid_uniform_capacity_dataset() {
        let d = small().generate();
        assert_eq!(d.num_items(), 50);
        assert_eq!(d.num_consumers(), 20);
        assert!(d.validate().is_ok());
        assert_eq!(d.item_capacity_policy, ItemCapacityPolicy::Uniform);
        let caps = d.capacities(1.0);
        // All questions get the same capacity.
        let first = caps.item_capacities()[0];
        assert!(caps.item_capacities().iter().all(|&c| c == first));
    }

    #[test]
    fn generation_is_reproducible() {
        let a = small().generate();
        let b = small().generate();
        assert_eq!(a.items, b.items);
        assert_eq!(a.consumers, b.consumers);
    }

    #[test]
    fn questions_and_users_share_topical_words() {
        let d = small().generate();
        let overlap = d.items.iter().any(|q| {
            d.consumers.iter().any(|u| {
                q.text
                    .split_whitespace()
                    .any(|w| u.text.split_whitespace().any(|uw| uw == w))
            })
        });
        assert!(
            overlap,
            "questions and user profiles should overlap in words"
        );
    }

    #[test]
    fn activity_distribution_is_skewed() {
        let d = AnswersGenerator {
            num_users: 500,
            num_questions: 100,
            seed: 9,
            ..AnswersGenerator::default()
        }
        .generate();
        let ones = d.consumer_activity.iter().filter(|&&a| a == 1).count();
        assert!(ones > d.num_consumers() / 3);
        assert!(*d.consumer_activity.iter().max().unwrap() > 10);
    }

    #[test]
    fn streamed_generation_matches_in_memory() {
        let root = std::env::temp_dir().join(format!("smr-answers-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = DatasetStore::open(root).unwrap();
        let streamed = small().generate_to_store(&store, "answers").unwrap();
        let loaded = streamed.load(&store).unwrap();
        let in_memory = small().generate();
        assert_eq!(loaded.items, in_memory.items);
        assert_eq!(loaded.consumers, in_memory.consumers);
        assert_eq!(loaded.item_quality, in_memory.item_quality);
        assert_eq!(loaded.consumer_activity, in_memory.consumer_activity);
        assert_eq!(loaded.item_capacity_policy, in_memory.item_capacity_policy);
    }

    #[test]
    fn user_documents_are_bounded_in_length() {
        let d = small().generate();
        for doc in &d.consumers {
            assert!(doc.text.split_whitespace().count() <= 40 * 8);
        }
    }
}
