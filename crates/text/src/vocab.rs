//! Term dictionary: string terms to dense ids, with document frequencies.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use smr_storage::impl_codec_newtype;

/// Dense identifier of a term in a [`Vocabulary`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TermId(pub u32);

impl_codec_newtype!(TermId(u32));

impl TermId {
    /// The dense index of this term.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A growable term dictionary.
///
/// Besides interning terms it tracks document frequencies, which both the
/// tf·idf weighting and the prefix-filtering term ordering (rarest-first)
/// of the similarity join rely on.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    terms: Vec<String>,
    index: HashMap<String, TermId>,
    doc_freq: Vec<u32>,
    num_documents: u32,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Interns `term`, returning its id (existing or fresh).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.index.get(term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term.to_string());
        self.index.insert(term.to_string(), id);
        self.doc_freq.push(0);
        id
    }

    /// Looks up a term without interning it.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.index.get(term).copied()
    }

    /// The string form of a term id.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id.index()]
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Registers one document's terms: every *distinct* term's document
    /// frequency is incremented and the document counter advances.
    pub fn observe_document<'a>(&mut self, terms: impl IntoIterator<Item = &'a str>) {
        let mut seen: Vec<TermId> = terms.into_iter().map(|t| self.intern(t)).collect();
        seen.sort_unstable();
        seen.dedup();
        for id in seen {
            self.doc_freq[id.index()] += 1;
        }
        self.num_documents += 1;
    }

    /// Document frequency of a term.
    pub fn doc_freq(&self, id: TermId) -> u32 {
        self.doc_freq[id.index()]
    }

    /// Number of documents observed.
    pub fn num_documents(&self) -> u32 {
        self.num_documents
    }

    /// Inverse document frequency `ln((N + 1) / (df + 1)) + 1` (smoothed so
    /// unseen and ubiquitous terms still get a positive weight).
    pub fn idf(&self, id: TermId) -> f64 {
        let n = self.num_documents as f64;
        let df = self.doc_freq(id) as f64;
        ((n + 1.0) / (df + 1.0)).ln() + 1.0
    }

    /// All term ids ordered by *increasing* document frequency (ties broken
    /// by id).  This is the canonical term order used by prefix filtering:
    /// putting the rarest terms first makes prefixes maximally selective.
    pub fn rarest_first_order(&self) -> Vec<TermId> {
        let mut ids: Vec<TermId> = (0..self.terms.len() as u32).map(TermId).collect();
        ids.sort_by_key(|id| (self.doc_freq(*id), id.0));
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a1 = v.intern("apple");
        let b = v.intern("banana");
        let a2 = v.intern("apple");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(v.len(), 2);
        assert_eq!(v.term(a1), "apple");
        assert_eq!(v.get("banana"), Some(b));
        assert_eq!(v.get("cherry"), None);
    }

    #[test]
    fn document_frequencies_count_distinct_terms_per_document() {
        let mut v = Vocabulary::new();
        v.observe_document(["a", "b", "a"]);
        v.observe_document(["b", "c"]);
        assert_eq!(v.num_documents(), 2);
        assert_eq!(v.doc_freq(v.get("a").unwrap()), 1);
        assert_eq!(v.doc_freq(v.get("b").unwrap()), 2);
        assert_eq!(v.doc_freq(v.get("c").unwrap()), 1);
    }

    #[test]
    fn idf_decreases_with_document_frequency() {
        let mut v = Vocabulary::new();
        v.observe_document(["rare", "common"]);
        v.observe_document(["common"]);
        v.observe_document(["common"]);
        let rare = v.get("rare").unwrap();
        let common = v.get("common").unwrap();
        assert!(v.idf(rare) > v.idf(common));
        assert!(v.idf(common) > 0.0);
    }

    #[test]
    fn rarest_first_order_sorts_by_doc_freq() {
        let mut v = Vocabulary::new();
        v.observe_document(["x", "y"]);
        v.observe_document(["y", "z"]);
        v.observe_document(["y"]);
        let order = v.rarest_first_order();
        let names: Vec<&str> = order.iter().map(|&id| v.term(id)).collect();
        // x and z have df 1 (tie broken by id: x interned before z), y has df 3.
        assert_eq!(names, vec!["x", "z", "y"]);
    }

    #[test]
    fn empty_vocabulary_behaves() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        assert_eq!(v.num_documents(), 0);
        assert!(v.rarest_first_order().is_empty());
    }
}
