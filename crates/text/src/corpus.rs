//! Document corpus: documents, vocabulary and vectors in one place.

use serde::{Deserialize, Serialize};
use smr_storage::impl_codec_struct;

use crate::sparse::SparseVector;
use crate::tfidf::{TfIdf, Weighting};
use crate::tokenize::{Tokenizer, TokenizerConfig};
use crate::vocab::Vocabulary;

/// A raw document: an external identifier plus its text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    /// External identifier (photo id, question id, user id, …).
    pub id: String,
    /// The raw text (or space-separated tag list).
    pub text: String,
}

impl_codec_struct!(Document { id, text });

impl Document {
    /// Creates a document.
    pub fn new(id: impl Into<String>, text: impl Into<String>) -> Self {
        Document {
            id: id.into(),
            text: text.into(),
        }
    }
}

/// A vectorized corpus: the documents, the shared vocabulary and one sparse
/// vector per document.
#[derive(Debug, Clone)]
pub struct Corpus {
    documents: Vec<Document>,
    vocab: Vocabulary,
    vectors: Vec<SparseVector>,
}

impl Corpus {
    /// Tokenizes and vectorizes `documents` with tf·idf weighting and L2
    /// normalization (so dot products are cosine similarities in `[0, 1]`).
    pub fn build(documents: Vec<Document>, tokenizer_config: &TokenizerConfig) -> Self {
        Corpus::build_weighted(documents, tokenizer_config, Weighting::TfIdf, true)
    }

    /// Tokenizes and vectorizes with an explicit weighting scheme.
    pub fn build_weighted(
        documents: Vec<Document>,
        tokenizer_config: &TokenizerConfig,
        weighting: Weighting,
        normalize: bool,
    ) -> Self {
        let tokenizer = Tokenizer::new(tokenizer_config.clone());
        let token_streams: Vec<Vec<String>> = documents
            .iter()
            .map(|d| tokenizer.tokenize(&d.text))
            .collect();
        let mut vocab = Vocabulary::new();
        for tokens in &token_streams {
            vocab.observe_document(tokens.iter().map(|s| s.as_str()));
        }
        let weigher = TfIdf::new(&vocab, weighting, normalize);
        let vectors: Vec<SparseVector> = token_streams
            .iter()
            .map(|tokens| weigher.vectorize(tokens))
            .collect();
        Corpus {
            documents,
            vocab,
            vectors,
        }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// The document at `index`.
    pub fn document(&self, index: usize) -> &Document {
        &self.documents[index]
    }

    /// The vector of the document at `index`.
    pub fn vector(&self, index: usize) -> &SparseVector {
        &self.vectors[index]
    }

    /// All vectors, in document order.
    pub fn vectors(&self) -> &[SparseVector] {
        &self.vectors
    }

    /// The shared vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Dot-product similarity between two documents of the corpus.
    pub fn similarity(&self, a: usize, b: usize) -> f64 {
        self.vectors[a].dot(&self.vectors[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Corpus {
        Corpus::build(
            vec![
                Document::new("d0", "bread baking tips for sourdough bread"),
                Document::new("d1", "sourdough starter and bread flour"),
                Document::new("d2", "vintage car restoration"),
            ],
            &TokenizerConfig::default(),
        )
    }

    #[test]
    fn corpus_vectorizes_every_document() {
        let c = sample();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.document(0).id, "d0");
        assert!(!c.vector(0).is_empty());
        assert_eq!(c.vectors().len(), 3);
        assert!(c.vocabulary().len() >= 5);
    }

    #[test]
    fn related_documents_are_more_similar_than_unrelated() {
        let c = sample();
        let related = c.similarity(0, 1);
        let unrelated = c.similarity(0, 2);
        assert!(related > unrelated);
        assert!(related > 0.0);
        assert!(unrelated.abs() < 1e-9);
    }

    #[test]
    fn normalized_vectors_have_self_similarity_one() {
        let c = sample();
        for i in 0..c.len() {
            let s = c.similarity(i, i);
            assert!((s - 1.0).abs() < 1e-9, "self similarity of doc {i} was {s}");
        }
    }

    #[test]
    fn binary_weighting_can_be_selected() {
        let c = Corpus::build_weighted(
            vec![
                Document::new("tagged-1", "beach sunset beach"),
                Document::new("tagged-2", "beach mountain"),
            ],
            &TokenizerConfig::tags_only(),
            Weighting::Binary,
            false,
        );
        let beach = c.vocabulary().get("beach").unwrap();
        assert_eq!(c.vector(0).weight(beach), 1.0);
        assert_eq!(c.vector(1).weight(beach), 1.0);
    }

    #[test]
    fn empty_corpus_is_fine() {
        let c = Corpus::build(vec![], &TokenizerConfig::default());
        assert!(c.is_empty());
        assert_eq!(c.vocabulary().len(), 0);
    }
}
