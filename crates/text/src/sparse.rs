//! Sparse term vectors.
//!
//! Items and consumers are points in the term vector space; the edge weight
//! of the bipartite graph is the dot product of the two vectors (Section 4).
//! Vectors are stored as `(TermId, weight)` pairs sorted by term id so the
//! dot product is a linear merge.

use serde::{Deserialize, Serialize};
use smr_storage::impl_codec_struct;

use crate::vocab::TermId;

/// A sparse vector over the term space, sorted by term id.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseVector {
    entries: Vec<(TermId, f64)>,
}

impl_codec_struct!(SparseVector { entries });

impl SparseVector {
    /// Creates an empty vector.
    pub fn new() -> Self {
        SparseVector::default()
    }

    /// Builds a vector from arbitrary (possibly unsorted, possibly
    /// duplicated) entries; duplicate term weights are summed and
    /// zero-weight entries dropped.
    pub fn from_entries(entries: impl IntoIterator<Item = (TermId, f64)>) -> Self {
        let mut entries: Vec<(TermId, f64)> = entries.into_iter().collect();
        entries.sort_by_key(|(t, _)| *t);
        let mut merged: Vec<(TermId, f64)> = Vec::with_capacity(entries.len());
        for (t, w) in entries {
            match merged.last_mut() {
                Some((last_t, last_w)) if *last_t == t => *last_w += w,
                _ => merged.push((t, w)),
            }
        }
        merged.retain(|(_, w)| *w != 0.0);
        SparseVector { entries: merged }
    }

    /// The entries, sorted by term id.
    pub fn entries(&self) -> &[(TermId, f64)] {
        &self.entries
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector is all zeros.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The weight of a term (zero when absent).
    pub fn weight(&self, term: TermId) -> f64 {
        self.entries
            .binary_search_by_key(&term, |(t, _)| *t)
            .map(|i| self.entries[i].1)
            .unwrap_or(0.0)
    }

    /// Dot product with another sparse vector.
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (mut i, mut j) = (0, 0);
        let mut sum = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    sum += self.entries[i].1 * other.entries[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        sum
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|(_, w)| w * w).sum::<f64>().sqrt()
    }

    /// Sum of weights (L1 mass); useful for prefix-filtering bounds on
    /// dot-product similarity.
    pub fn l1(&self) -> f64 {
        self.entries.iter().map(|(_, w)| w.abs()).sum()
    }

    /// Maximum absolute weight of any entry (zero for an empty vector).
    pub fn max_weight(&self) -> f64 {
        self.entries
            .iter()
            .map(|(_, w)| w.abs())
            .fold(0.0, f64::max)
    }

    /// Cosine similarity with another vector (zero if either is empty).
    pub fn cosine(&self, other: &SparseVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    /// Returns a copy scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> SparseVector {
        SparseVector {
            entries: self.entries.iter().map(|&(t, w)| (t, w * factor)).collect(),
        }
    }

    /// Returns a copy normalized to unit L2 norm (unchanged if zero).
    pub fn normalized(&self) -> SparseVector {
        let n = self.norm();
        if n == 0.0 {
            self.clone()
        } else {
            self.scaled(1.0 / n)
        }
    }

    /// The term ids of this vector in the given global order (used to take
    /// prefixes for the similarity join).  Terms of the vector that are
    /// missing from `order_rank` keep their relative id order at the end.
    pub fn terms_in_order(&self, order_rank: &[u32]) -> Vec<TermId> {
        let mut terms: Vec<TermId> = self.entries.iter().map(|(t, _)| *t).collect();
        terms.sort_by_key(|t| order_rank.get(t.index()).copied().unwrap_or(u32::MAX));
        terms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(entries: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_entries(entries.iter().map(|&(t, w)| (TermId(t), w)))
    }

    #[test]
    fn from_entries_sorts_merges_and_drops_zeros() {
        let vec = v(&[(3, 1.0), (1, 2.0), (3, 0.5), (2, 0.0)]);
        assert_eq!(vec.entries(), &[(TermId(1), 2.0), (TermId(3), 1.5)]);
        assert_eq!(vec.len(), 2);
        assert_eq!(vec.weight(TermId(3)), 1.5);
        assert_eq!(vec.weight(TermId(7)), 0.0);
    }

    #[test]
    fn dot_product_merges_sorted_entries() {
        let a = v(&[(0, 1.0), (2, 2.0), (5, 3.0)]);
        let b = v(&[(2, 4.0), (5, 1.0), (9, 10.0)]);
        assert!((a.dot(&b) - 11.0).abs() < 1e-12);
        assert_eq!(a.dot(&SparseVector::new()), 0.0);
    }

    #[test]
    fn dot_product_is_symmetric() {
        let a = v(&[(1, 0.3), (4, 0.7)]);
        let b = v(&[(1, 0.5), (3, 0.5), (4, 0.2)]);
        assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-15);
    }

    #[test]
    fn norms_and_cosine() {
        let a = v(&[(0, 3.0), (1, 4.0)]);
        assert!((a.norm() - 5.0).abs() < 1e-12);
        assert!((a.l1() - 7.0).abs() < 1e-12);
        assert_eq!(a.max_weight(), 4.0);
        let b = v(&[(0, 3.0), (1, 4.0)]);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-12);
        let orth = v(&[(2, 1.0)]);
        assert_eq!(a.cosine(&orth), 0.0);
        assert_eq!(SparseVector::new().cosine(&a), 0.0);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let a = v(&[(0, 2.0), (3, 2.0), (8, 1.0)]);
        let n = a.normalized();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        // Direction is preserved.
        assert!((n.cosine(&a) - 1.0).abs() < 1e-12);
        // Normalizing the zero vector is a no-op.
        assert!(SparseVector::new().normalized().is_empty());
    }

    #[test]
    fn scaled_multiplies_every_entry() {
        let a = v(&[(0, 1.0), (1, -2.0)]);
        let s = a.scaled(3.0);
        assert_eq!(s.weight(TermId(0)), 3.0);
        assert_eq!(s.weight(TermId(1)), -6.0);
    }

    #[test]
    fn terms_in_order_respects_global_rank() {
        let a = v(&[(0, 1.0), (1, 1.0), (2, 1.0)]);
        // Global rank: term 2 is rarest (rank 0), then 0, then 1.
        let rank = vec![1, 2, 0];
        let ordered = a.terms_in_order(&rank);
        assert_eq!(ordered, vec![TermId(2), TermId(0), TermId(1)]);
    }
}
