//! Vector-space text substrate.
//!
//! Section 4 of the paper represents items and consumers as term vectors
//! (tags for flickr, tf·idf-weighted words for Yahoo! Answers) and defines
//! the edge weight `w(t, c)` as the dot product of the two vectors.  This
//! crate implements that substrate:
//!
//! * [`tokenize`] — lower-casing, punctuation stripping, stop-word removal
//!   and a light suffix stemmer, mirroring the preprocessing the paper
//!   applies to Yahoo! Answers text,
//! * [`vocab`] — a term dictionary mapping terms to dense ids and document
//!   frequencies,
//! * [`sparse`] — sparse vectors sorted by term id, with dot product,
//!   norms and cosine similarity,
//! * [`tfidf`] — tf·idf weighting of a document corpus,
//! * [`corpus`] — a small container tying documents, vocabulary and
//!   vectors together for the similarity join.
//!
//! # Example
//!
//! ```
//! use smr_text::prelude::*;
//!
//! let docs = vec![
//!     Document::new("q1", "How do I bake sourdough bread at home?"),
//!     Document::new("u1", "I answer lots of baking and bread questions."),
//! ];
//! let corpus = Corpus::build(docs, &TokenizerConfig::default());
//! let sim = corpus.vector(0).dot(corpus.vector(1));
//! assert!(sim > 0.0, "both documents talk about bread/baking");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod corpus;
pub mod sparse;
pub mod tfidf;
pub mod tokenize;
pub mod vocab;

pub use corpus::{Corpus, Document};
pub use sparse::SparseVector;
pub use tfidf::{TfIdf, Weighting};
pub use tokenize::{Tokenizer, TokenizerConfig};
pub use vocab::{TermId, Vocabulary};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::corpus::{Corpus, Document};
    pub use crate::sparse::SparseVector;
    pub use crate::tfidf::{TfIdf, Weighting};
    pub use crate::tokenize::{Tokenizer, TokenizerConfig};
    pub use crate::vocab::{TermId, Vocabulary};
}
