//! Tokenization: lower-casing, punctuation removal, stop-words and a light
//! suffix stemmer.
//!
//! The paper preprocesses Yahoo! Answers text by removing punctuation and
//! stop-words, stemming, and applying tf·idf weighting.  The stemmer here
//! is a small rule-based suffix stripper (a subset of Porter's rules) —
//! enough to conflate the morphological variants that matter for similarity
//! scores without pulling in an external dependency.

/// Common English stop-words removed before vectorization.
pub const STOP_WORDS: &[&str] = &[
    "a", "about", "after", "all", "also", "an", "and", "any", "are", "as", "at", "be", "because",
    "been", "but", "by", "can", "could", "did", "do", "does", "for", "from", "had", "has", "have",
    "he", "her", "him", "his", "how", "i", "if", "in", "into", "is", "it", "its", "just", "like",
    "me", "more", "most", "my", "no", "not", "of", "on", "one", "only", "or", "other", "our",
    "out", "over", "she", "should", "so", "some", "such", "than", "that", "the", "their", "them",
    "then", "there", "these", "they", "this", "to", "up", "us", "was", "we", "were", "what",
    "when", "where", "which", "who", "why", "will", "with", "would", "you", "your",
];

/// Configuration of the tokenizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenizerConfig {
    /// Remove stop-words.
    pub remove_stop_words: bool,
    /// Apply the suffix stemmer.
    pub stem: bool,
    /// Drop tokens shorter than this (after stemming).
    pub min_token_len: usize,
}

impl Default for TokenizerConfig {
    fn default() -> Self {
        TokenizerConfig {
            remove_stop_words: true,
            stem: true,
            min_token_len: 2,
        }
    }
}

impl TokenizerConfig {
    /// A configuration that only lower-cases and splits (used for tag
    /// vocabularies such as flickr tags, which are already normalized).
    pub fn tags_only() -> Self {
        TokenizerConfig {
            remove_stop_words: false,
            stem: false,
            min_token_len: 1,
        }
    }
}

/// A reusable tokenizer.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    config: TokenizerConfig,
}

impl Tokenizer {
    /// Creates a tokenizer with the given configuration.
    pub fn new(config: TokenizerConfig) -> Self {
        Tokenizer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TokenizerConfig {
        &self.config
    }

    /// Tokenizes `text` into normalized terms.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        text.split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(|t| t.to_lowercase())
            .filter(|t| !self.config.remove_stop_words || !is_stop_word(t))
            .map(|t| if self.config.stem { stem(&t) } else { t })
            .filter(|t| t.len() >= self.config.min_token_len)
            .collect()
    }
}

impl Default for Tokenizer {
    fn default() -> Self {
        Tokenizer::new(TokenizerConfig::default())
    }
}

/// Whether `token` (already lower-cased) is a stop-word.
pub fn is_stop_word(token: &str) -> bool {
    STOP_WORDS.binary_search(&token).is_ok()
}

/// A light rule-based suffix stemmer (subset of Porter's step-1 rules plus
/// a few common derivational suffixes).
///
/// The goal is stable conflation of plural and inflected forms
/// ("questions" → "question", "baking" → "bake", "answered" → "answer"),
/// not linguistic perfection.
pub fn stem(token: &str) -> String {
    let t = token;
    if t.len() <= 3 {
        return t.to_string();
    }
    // Order matters: try longer suffixes first.
    let rules: &[(&str, &str)] = &[
        ("ations", "ate"),
        ("ization", "ize"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("iveness", "ive"),
        ("ation", "ate"),
        ("ement", "e"),
        ("ments", "ment"),
        ("ingly", ""),
        ("edly", ""),
        ("iness", "y"),
        ("ness", ""),
        ("ing", "e"),
        ("ies", "y"),
        ("ied", "y"),
        ("est", ""),
        ("ers", "er"),
        ("ed", ""),
        ("ly", ""),
        ("es", "e"),
        ("s", ""),
    ];
    for (suffix, replacement) in rules {
        if let Some(stemmed) = apply_rule(t, suffix, replacement) {
            return stemmed;
        }
    }
    t.to_string()
}

/// Applies one suffix rule if the stem it would leave is long enough.
fn apply_rule(token: &str, suffix: &str, replacement: &str) -> Option<String> {
    if !token.ends_with(suffix) {
        return None;
    }
    let stem_len = token.len() - suffix.len();
    // Keep at least three characters of stem so that words like "this" or
    // "class" are not mangled into nonsense.
    if stem_len < 3 {
        return None;
    }
    // Do not strip "s" from words ending in "ss" ("class", "less").
    if suffix == "s" && token.ends_with("ss") {
        return None;
    }
    let mut out = String::with_capacity(stem_len + replacement.len());
    out.push_str(&token[..stem_len]);
    out.push_str(replacement);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_word_table_is_sorted_for_binary_search() {
        let mut sorted = STOP_WORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOP_WORDS, "STOP_WORDS must stay sorted");
    }

    #[test]
    fn stop_words_are_recognized() {
        assert!(is_stop_word("the"));
        assert!(is_stop_word("and"));
        assert!(!is_stop_word("bread"));
    }

    #[test]
    fn stemmer_conflates_common_inflections() {
        assert_eq!(stem("questions"), "question");
        assert_eq!(stem("baking"), "bake");
        assert_eq!(stem("answered"), "answer");
        assert_eq!(stem("photos"), "photo");
        assert_eq!(stem("cities"), "city");
        assert_eq!(stem("organization"), "organize");
    }

    #[test]
    fn stemmer_leaves_short_and_awkward_words_alone() {
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("cat"), "cat");
        assert_eq!(stem("class"), "class");
        assert_eq!(stem("less"), "less");
    }

    #[test]
    fn tokenizer_default_pipeline() {
        let t = Tokenizer::default();
        let tokens = t.tokenize("The quick, brown foxes were JUMPING over the lazy dogs!");
        assert_eq!(
            tokens,
            vec!["quick", "brown", "foxe", "jumpe", "lazy", "dog"]
        );
    }

    #[test]
    fn tokenizer_tags_only_keeps_everything() {
        let t = Tokenizer::new(TokenizerConfig::tags_only());
        let tokens = t.tokenize("The Sunset beach SUNSET");
        assert_eq!(tokens, vec!["the", "sunset", "beach", "sunset"]);
    }

    #[test]
    fn tokenizer_strips_punctuation_and_numbers_boundaries() {
        let t = Tokenizer::new(TokenizerConfig {
            remove_stop_words: false,
            stem: false,
            min_token_len: 1,
        });
        assert_eq!(
            t.tokenize("hello,world! 42 a-b"),
            vec!["hello", "world", "42", "a", "b"]
        );
    }

    #[test]
    fn empty_and_symbol_only_input_yields_no_tokens() {
        let t = Tokenizer::default();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("!!! ... ***").is_empty());
    }
}
