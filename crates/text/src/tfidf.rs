//! tf·idf weighting of token streams.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::sparse::SparseVector;
use crate::vocab::Vocabulary;

/// Term-weighting schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Weighting {
    /// Raw term frequency.
    TermFrequency,
    /// `tf · idf` with the smoothed idf of [`Vocabulary::idf`] (the paper's
    /// choice for Yahoo! Answers).
    #[default]
    TfIdf,
    /// Binary presence weights (the natural choice for tag sets such as
    /// flickr tags).
    Binary,
}

/// A weighting engine bound to a vocabulary.
#[derive(Debug, Clone)]
pub struct TfIdf<'a> {
    vocab: &'a Vocabulary,
    weighting: Weighting,
    normalize: bool,
}

impl<'a> TfIdf<'a> {
    /// Creates a weighting engine.  When `normalize` is set, vectors are
    /// scaled to unit L2 norm so that dot products are cosine similarities.
    pub fn new(vocab: &'a Vocabulary, weighting: Weighting, normalize: bool) -> Self {
        TfIdf {
            vocab,
            weighting,
            normalize,
        }
    }

    /// Vectorizes a token stream (tokens must already be interned in the
    /// vocabulary; unknown tokens are skipped).
    pub fn vectorize(&self, tokens: &[String]) -> SparseVector {
        let mut counts: HashMap<crate::vocab::TermId, f64> = HashMap::new();
        for t in tokens {
            if let Some(id) = self.vocab.get(t) {
                *counts.entry(id).or_insert(0.0) += 1.0;
            }
        }
        let entries = counts.into_iter().map(|(id, tf)| {
            let w = match self.weighting {
                Weighting::TermFrequency => tf,
                Weighting::TfIdf => tf * self.vocab.idf(id),
                Weighting::Binary => 1.0,
            };
            (id, w)
        });
        let v = SparseVector::from_entries(entries);
        if self.normalize {
            v.normalized()
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    fn vocab_from(docs: &[&[&str]]) -> Vocabulary {
        let mut v = Vocabulary::new();
        for d in docs {
            v.observe_document(d.iter().copied());
        }
        v
    }

    #[test]
    fn term_frequency_counts_occurrences() {
        let vocab = vocab_from(&[&["a", "b"]]);
        let tf = TfIdf::new(&vocab, Weighting::TermFrequency, false);
        let v = tf.vectorize(&toks(&["a", "a", "b"]));
        assert_eq!(v.weight(vocab.get("a").unwrap()), 2.0);
        assert_eq!(v.weight(vocab.get("b").unwrap()), 1.0);
    }

    #[test]
    fn binary_weights_ignore_repetition() {
        let vocab = vocab_from(&[&["a", "b"]]);
        let tf = TfIdf::new(&vocab, Weighting::Binary, false);
        let v = tf.vectorize(&toks(&["a", "a", "a", "b"]));
        assert_eq!(v.weight(vocab.get("a").unwrap()), 1.0);
        assert_eq!(v.weight(vocab.get("b").unwrap()), 1.0);
    }

    #[test]
    fn tfidf_downweights_common_terms() {
        // "common" appears in all three documents, "rare" in one.
        let vocab = vocab_from(&[&["common", "rare"], &["common"], &["common"]]);
        let tf = TfIdf::new(&vocab, Weighting::TfIdf, false);
        let v = tf.vectorize(&toks(&["common", "rare"]));
        assert!(
            v.weight(vocab.get("rare").unwrap()) > v.weight(vocab.get("common").unwrap()),
            "rare terms must get larger tf·idf weight"
        );
    }

    #[test]
    fn unknown_tokens_are_skipped() {
        let vocab = vocab_from(&[&["known"]]);
        let tf = TfIdf::new(&vocab, Weighting::TfIdf, false);
        let v = tf.vectorize(&toks(&["unknown", "known"]));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn normalization_yields_unit_vectors() {
        let vocab = vocab_from(&[&["a", "b", "c"]]);
        let tf = TfIdf::new(&vocab, Weighting::TfIdf, true);
        let v = tf.vectorize(&toks(&["a", "b", "c", "c"]));
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_token_stream_gives_empty_vector() {
        let vocab = vocab_from(&[&["a"]]);
        let tf = TfIdf::new(&vocab, Weighting::TfIdf, true);
        assert!(tf.vectorize(&[]).is_empty());
    }
}
