//! Property tests locking the out-of-core matching rounds byte-identical
//! to the in-memory round path.
//!
//! The tentpole invariant of the disk-backed round state: for any
//! instance, any engine memory budget (unlimited, 4 KiB, or a pathological
//! 64 B that spills every run) and any thread count, GreedyMR and StackMR
//! produce exactly the same matching, the same round count, the same
//! any-time value trace and the same shuffle volume whether the
//! inter-round state lives on disk (`RoundStateMode::DiskBacked`, the
//! default) or in memory (`RoundStateMode::InMemory`, the historical
//! behaviour).

use proptest::prelude::*;

use smr_graph::{BipartiteGraph, Capacities, ConsumerId, Edge, ItemId};
use smr_mapreduce::{FlowContext, JobConfig, RoundStateMode};
use smr_matching::{GreedyMr, GreedyMrConfig, MatchingRun, StackMr, StackMrConfig};

/// A random small b-matching instance: a bipartite graph with up to
/// 6 × 6 nodes, random edges with positive weights, and random capacities.
fn instance_strategy() -> impl Strategy<Value = (BipartiteGraph, Capacities)> {
    (2usize..6, 2usize..6)
        .prop_flat_map(|(items, consumers)| {
            let edge_strategy = proptest::collection::vec(
                (0..items as u32, 0..consumers as u32, 0.01f64..1.0),
                1..(items * consumers + 1),
            );
            let item_caps = proptest::collection::vec(1u64..4, items);
            let consumer_caps = proptest::collection::vec(1u64..4, consumers);
            (
                Just(items),
                Just(consumers),
                edge_strategy,
                item_caps,
                consumer_caps,
            )
        })
        .prop_map(|(items, consumers, raw_edges, item_caps, consumer_caps)| {
            // Deduplicate parallel edges; the raw vector is non-empty, so
            // the graph always keeps at least one edge.
            let mut seen = std::collections::HashSet::new();
            let edges: Vec<Edge> = raw_edges
                .into_iter()
                .filter(|(t, c, _)| seen.insert((*t, *c)))
                .map(|(t, c, w)| Edge::new(ItemId(t), ConsumerId(c), w))
                .collect();
            let graph = BipartiteGraph::from_edges(items, consumers, edges);
            let caps = Capacities::from_vectors(item_caps, consumer_caps);
            (graph, caps)
        })
}

/// The budget × thread grid every equivalence case sweeps: unlimited,
/// a realistic 4 KiB and a pathological 64 B budget, single-threaded and
/// heavily parallel.
fn configs() -> Vec<(Option<u64>, usize)> {
    let mut grid = Vec::new();
    for budget in [None, Some(4 * 1024), Some(64)] {
        for threads in [1usize, 8] {
            grid.push((budget, threads));
        }
    }
    grid
}

fn job(name: &str, budget: Option<u64>, threads: usize) -> JobConfig {
    JobConfig::named(name)
        .with_threads(threads)
        .with_memory_budget(budget)
}

fn assert_equivalent(disk: &MatchingRun, memory: &MatchingRun, context: &str) {
    assert_eq!(
        disk.matching.to_edge_vec(),
        memory.matching.to_edge_vec(),
        "{context}: matchings diverged"
    );
    assert_eq!(disk.rounds, memory.rounds, "{context}: rounds diverged");
    assert_eq!(
        disk.mr_jobs, memory.mr_jobs,
        "{context}: job counts diverged"
    );
    assert_eq!(
        disk.value_per_round, memory.value_per_round,
        "{context}: any-time traces diverged"
    );
    assert_eq!(
        disk.total_shuffled_records(),
        memory.total_shuffled_records(),
        "{context}: shuffle volumes diverged"
    );
    // Only the disk-backed run reports a round-state footprint.
    assert!(disk.max_round_state_bytes > 0, "{context}: no round state");
    assert_eq!(memory.max_round_state_bytes, 0, "{context}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn greedy_mr_disk_rounds_match_in_memory_rounds_at_any_budget(
        (graph, caps) in instance_strategy()
    ) {
        for (budget, threads) in configs() {
            let run_with = |mode: RoundStateMode| {
                let job = job("greedy-equiv", budget, threads);
                GreedyMr::new(
                    GreedyMrConfig::default()
                        .with_job(job.clone())
                        .with_round_state(mode),
                )
                .run(&graph, &caps, &FlowContext::new(job))
            };
            let disk = run_with(RoundStateMode::DiskBacked);
            let memory = run_with(RoundStateMode::InMemory);
            assert_equivalent(
                &disk,
                &memory,
                &format!("GreedyMR budget={budget:?} threads={threads}"),
            );
        }
    }

    #[test]
    fn stack_mr_disk_rounds_match_in_memory_rounds_at_any_budget(
        (graph, caps) in instance_strategy(),
        seed in 0u64..1000
    ) {
        for (budget, threads) in configs() {
            let run_with = |mode: RoundStateMode| {
                let job = job("stack-equiv", budget, threads);
                StackMr::new(
                    StackMrConfig::default()
                        .with_seed(seed)
                        .with_job(job.clone())
                        .with_round_state(mode),
                )
                .run(&graph, &caps, &FlowContext::new(job))
            };
            let disk = run_with(RoundStateMode::DiskBacked);
            let memory = run_with(RoundStateMode::InMemory);
            assert_equivalent(
                &disk,
                &memory,
                &format!("StackMR budget={budget:?} threads={threads}"),
            );
        }
    }
}
