//! Determinism regression tests for the streaming shuffle engine.
//!
//! The executor's work-stealing map tasks must not leak scheduling
//! nondeterminism into algorithm output: the same GreedyMR job, run many
//! times under different thread counts, has to produce the identical
//! matching *and* the identical `records_shuffled` counter every time
//! (the per-task combine/spill schedule depends only on task content, so
//! even the engine counters are scheduling-invariant).

use smr_graph::{BipartiteGraph, Capacities, ConsumerId, GraphBuilder, ItemId};
use smr_mapreduce::{FlowContext, JobConfig};
use smr_matching::{GreedyMr, GreedyMrConfig, StackMr, StackMrConfig};

/// A dense-ish deterministic instance with plenty of equal-capacity
/// contention so every round has real work to schedule.
fn instance() -> (BipartiteGraph, Capacities) {
    let mut builder = GraphBuilder::new();
    let items: Vec<ItemId> = (0..9).map(|i| builder.add_item(format!("t{i}"))).collect();
    let consumers: Vec<ConsumerId> = (0..11)
        .map(|i| builder.add_consumer(format!("c{i}")))
        .collect();
    let mut weight = 0.137_f64;
    for (ti, &item) in items.iter().enumerate() {
        for (ci, &consumer) in consumers.iter().enumerate() {
            if (ti * 5 + ci * 7) % 4 != 0 {
                weight = (weight * 757.31 + 0.191).fract().max(0.01);
                builder.add_edge(item, consumer, weight);
            }
        }
    }
    let graph = builder.build();
    let caps = Capacities::uniform(&graph, 3, 2);
    (graph, caps)
}

#[test]
fn greedy_mr_is_deterministic_across_20_runs_with_varying_thread_counts() {
    let (graph, caps) = instance();
    let thread_counts = [1usize, 2, 3, 4, 8];
    let run_with = |threads: usize| {
        let job = JobConfig::named("determinism").with_threads(threads);
        GreedyMr::new(GreedyMrConfig::default().with_job(job.clone())).run(
            &graph,
            &caps,
            &FlowContext::new(job),
        )
    };
    let baseline = run_with(1);
    assert!(!baseline.matching.is_empty());
    for i in 0..20 {
        let threads = thread_counts[i % thread_counts.len()];
        let run = run_with(threads);
        assert_eq!(
            run.matching.to_edge_vec(),
            baseline.matching.to_edge_vec(),
            "matching diverged on run {i} with {threads} threads"
        );
        assert_eq!(
            run.total_shuffled_records(),
            baseline.total_shuffled_records(),
            "records_shuffled diverged on run {i} with {threads} threads"
        );
        assert_eq!(run.rounds, baseline.rounds);
        assert_eq!(run.mr_jobs, baseline.mr_jobs);
    }
}

#[test]
fn greedy_mr_per_round_shuffle_counters_are_budget_invariant() {
    // Round-by-round, a run that spills every few records to disk must
    // report exactly the record flow of the unlimited-memory run — and
    // the identical matching (GreedyMR runs no combiner, so the spill
    // path moves bytes without changing a single record).
    let (graph, caps) = instance();
    // The flow's JobConfig governs the rounds, so the budget override
    // (beating any SMR_MEMORY_BUDGET ambient in the environment) has to
    // live there, not only on the matcher config.
    let unlimited = JobConfig::named("ab")
        .with_threads(4)
        .with_memory_budget(None);
    let in_memory = GreedyMr::new(GreedyMrConfig::default().with_job(unlimited.clone())).run(
        &graph,
        &caps,
        &FlowContext::new(unlimited),
    );
    let budgeted = JobConfig::named("ab")
        .with_threads(4)
        .with_memory_budget(Some(512));
    let spilled = GreedyMr::new(GreedyMrConfig::default().with_job(budgeted.clone())).run(
        &graph,
        &caps,
        &FlowContext::new(budgeted),
    );
    assert_eq!(
        spilled.matching.to_edge_vec(),
        in_memory.matching.to_edge_vec()
    );
    assert_eq!(spilled.job_metrics.len(), in_memory.job_metrics.len());
    let mut disk_runs = 0;
    for (round, (s, m)) in spilled
        .job_metrics
        .iter()
        .zip(in_memory.job_metrics.iter())
        .enumerate()
    {
        assert_eq!(s.shuffle_records, m.shuffle_records, "round {round}");
        assert_eq!(s.map_output_records, m.map_output_records, "round {round}");
        assert_eq!(s.shuffle_bytes, m.shuffle_bytes, "round {round}");
        assert_eq!(m.disk_runs, 0, "round {round}");
        disk_runs += s.disk_runs;
    }
    assert!(disk_runs > 0, "a 512-byte budget must spill");
}

#[test]
fn seeded_stack_mr_is_deterministic_across_thread_counts() {
    let (graph, caps) = instance();
    let run_with = |threads: usize| {
        let job = JobConfig::named("determinism-stack").with_threads(threads);
        StackMr::new(StackMrConfig::default().with_seed(99).with_job(job.clone())).run(
            &graph,
            &caps,
            &FlowContext::new(job),
        )
    };
    let baseline = run_with(1);
    for threads in [2usize, 4, 8] {
        let run = run_with(threads);
        assert_eq!(
            run.matching.to_edge_vec(),
            baseline.matching.to_edge_vec(),
            "StackMR matching diverged with {threads} threads"
        );
        assert_eq!(
            run.total_shuffled_records(),
            baseline.total_shuffled_records()
        );
    }
}
