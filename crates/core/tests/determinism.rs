//! Determinism regression tests for the streaming shuffle engine.
//!
//! The executor's work-stealing map tasks must not leak scheduling
//! nondeterminism into algorithm output: the same GreedyMR job, run many
//! times under different thread counts, has to produce the identical
//! matching *and* the identical `records_shuffled` counter every time
//! (the per-task combine/spill schedule depends only on task content, so
//! even the engine counters are scheduling-invariant).

use smr_graph::{BipartiteGraph, Capacities, ConsumerId, GraphBuilder, ItemId};
use smr_mapreduce::{JobConfig, ShuffleMode};
use smr_matching::{GreedyMr, GreedyMrConfig, StackMr, StackMrConfig};

/// A dense-ish deterministic instance with plenty of equal-capacity
/// contention so every round has real work to schedule.
fn instance() -> (BipartiteGraph, Capacities) {
    let mut builder = GraphBuilder::new();
    let items: Vec<ItemId> = (0..9).map(|i| builder.add_item(format!("t{i}"))).collect();
    let consumers: Vec<ConsumerId> = (0..11)
        .map(|i| builder.add_consumer(format!("c{i}")))
        .collect();
    let mut weight = 0.137_f64;
    for (ti, &item) in items.iter().enumerate() {
        for (ci, &consumer) in consumers.iter().enumerate() {
            if (ti * 5 + ci * 7) % 4 != 0 {
                weight = (weight * 757.31 + 0.191).fract().max(0.01);
                builder.add_edge(item, consumer, weight);
            }
        }
    }
    let graph = builder.build();
    let caps = Capacities::uniform(&graph, 3, 2);
    (graph, caps)
}

#[test]
fn greedy_mr_is_deterministic_across_20_runs_with_varying_thread_counts() {
    let (graph, caps) = instance();
    let thread_counts = [1usize, 2, 3, 4, 8];
    let run_with = |threads: usize| {
        GreedyMr::new(
            GreedyMrConfig::default()
                .with_job(JobConfig::named("determinism").with_threads(threads)),
        )
        .run(&graph, &caps)
    };
    let baseline = run_with(1);
    assert!(!baseline.matching.is_empty());
    for i in 0..20 {
        let threads = thread_counts[i % thread_counts.len()];
        let run = run_with(threads);
        assert_eq!(
            run.matching.to_edge_vec(),
            baseline.matching.to_edge_vec(),
            "matching diverged on run {i} with {threads} threads"
        );
        assert_eq!(
            run.total_shuffled_records(),
            baseline.total_shuffled_records(),
            "records_shuffled diverged on run {i} with {threads} threads"
        );
        assert_eq!(run.rounds, baseline.rounds);
        assert_eq!(run.mr_jobs, baseline.mr_jobs);
    }
}

#[test]
#[allow(deprecated)]
fn greedy_mr_per_round_shuffle_counters_match_the_legacy_engine() {
    // Round-by-round, the streaming engine must report exactly the record
    // flow the legacy engine reported (GreedyMR runs no combiner).
    let (graph, caps) = instance();
    let streaming =
        GreedyMr::new(GreedyMrConfig::default().with_job(JobConfig::named("ab").with_threads(4)))
            .run(&graph, &caps);
    let legacy = GreedyMr::new(
        GreedyMrConfig::default()
            .with_job(JobConfig::named("ab").with_threads(4))
            .with_shuffle_mode(ShuffleMode::LegacySort),
    )
    .run(&graph, &caps);
    assert_eq!(streaming.job_metrics.len(), legacy.job_metrics.len());
    for (round, (s, l)) in streaming
        .job_metrics
        .iter()
        .zip(legacy.job_metrics.iter())
        .enumerate()
    {
        assert_eq!(s.shuffle_records, l.shuffle_records, "round {round}");
        assert_eq!(s.map_output_records, l.map_output_records, "round {round}");
        assert_eq!(s.shuffle_bytes, l.shuffle_bytes, "round {round}");
    }
}

#[test]
fn seeded_stack_mr_is_deterministic_across_thread_counts() {
    let (graph, caps) = instance();
    let run_with = |threads: usize| {
        StackMr::new(
            StackMrConfig::default()
                .with_seed(99)
                .with_job(JobConfig::named("determinism-stack").with_threads(threads)),
        )
        .run(&graph, &caps)
    };
    let baseline = run_with(1);
    for threads in [2usize, 4, 8] {
        let run = run_with(threads);
        assert_eq!(
            run.matching.to_edge_vec(),
            baseline.matching.to_edge_vec(),
            "StackMR matching diverged with {threads} threads"
        );
        assert_eq!(
            run.total_shuffled_records(),
            baseline.total_shuffled_records()
        );
    }
}
