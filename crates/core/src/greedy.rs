//! The centralized greedy algorithm (Section 5.4).
//!
//! Edges are processed in order of decreasing weight; an edge `(u, v)` is
//! included if both endpoints still have residual capacity, in which case
//! both residuals are decremented.  The result is always feasible and is a
//! ½-approximation of the maximum-weight b-matching (Theorem 2); the
//! triangle instance in the paper's appendix shows the bound is tight.

use smr_graph::{BipartiteGraph, Capacities, Matching, NodeId};

/// Runs the centralized greedy algorithm.
///
/// Ties between equal-weight edges are broken by edge id so the result is
/// deterministic.
pub fn greedy_matching(graph: &BipartiteGraph, caps: &Capacities) -> Matching {
    assert!(
        caps.matches(graph),
        "capacities were built for a different graph"
    );
    let mut order: Vec<usize> = (0..graph.num_edges()).collect();
    order.sort_by(|&a, &b| {
        graph
            .edge(b)
            .weight
            .partial_cmp(&graph.edge(a).weight)
            .expect("edge weights are finite")
            .then(a.cmp(&b))
    });

    let mut item_residual: Vec<u64> = caps.item_capacities().to_vec();
    let mut consumer_residual: Vec<u64> = caps.consumer_capacities().to_vec();
    let mut matching = Matching::new(graph.num_edges());

    for e in order {
        let edge = graph.edge(e);
        let ti = edge.item.index();
        let ci = edge.consumer.index();
        if item_residual[ti] > 0 && consumer_residual[ci] > 0 {
            item_residual[ti] -= 1;
            consumer_residual[ci] -= 1;
            matching.insert(e);
        }
    }
    matching
}

/// Runs the centralized greedy algorithm and also reports, for every node,
/// how much of its capacity was used.  Useful for diagnostics and tests.
pub fn greedy_matching_with_usage(
    graph: &BipartiteGraph,
    caps: &Capacities,
) -> (Matching, Vec<(NodeId, u64)>) {
    let matching = greedy_matching(graph, caps);
    let usage = graph
        .nodes()
        .map(|v| (v, matching.degree(graph, v) as u64))
        .collect();
    (matching, usage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_graph::{ConsumerId, Edge, ItemId};

    /// The tightness example from the paper's appendix, adapted to a
    /// bipartite setting: greedy picks the single heaviest edge and blocks
    /// the two unit edges that together are worth more.
    ///
    /// Items {t0}, consumers {c0, c1} cannot express the triangle exactly,
    /// so we use a path: t0–c0 (1+δ), t0–c1 (1.0), t1–c0 (1.0) with
    /// b(t0)=2, b(c0)=1, b(t1)=1, b(c1)=1.  Greedy takes t0–c0 first, then
    /// t0–c1; optimal takes t0–c0? Let's check in the test body instead.
    fn path_graph(delta: f64) -> (BipartiteGraph, Capacities) {
        let g = BipartiteGraph::from_edges(
            2,
            2,
            vec![
                Edge::new(ItemId(0), ConsumerId(0), 1.0 + delta),
                Edge::new(ItemId(0), ConsumerId(1), 1.0),
                Edge::new(ItemId(1), ConsumerId(0), 1.0),
            ],
        );
        let caps = Capacities::from_vectors(vec![1, 1], vec![1, 1]);
        (g, caps)
    }

    #[test]
    fn greedy_is_feasible_and_deterministic() {
        let (g, caps) = path_graph(0.1);
        let m1 = greedy_matching(&g, &caps);
        let m2 = greedy_matching(&g, &caps);
        assert_eq!(m1, m2);
        assert!(m1.is_feasible(&g, &caps));
    }

    #[test]
    fn greedy_takes_the_heaviest_edge_first() {
        let (g, caps) = path_graph(0.5);
        let m = greedy_matching(&g, &caps);
        // Heaviest edge (t0, c0) is taken; it blocks (t0, c1)? No:
        // b(t0) = 1, so after taking edge 0, t0 is saturated and c0 is
        // saturated; edge 1 (t0) and edge 2 (c0) are both blocked.
        assert_eq!(m.to_edge_vec(), vec![0]);
        assert!((m.value(&g) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn greedy_matches_everything_when_capacities_allow() {
        let (g, caps0) = path_graph(0.5);
        let caps = Capacities::from_vectors(vec![2, 1], caps0.consumer_capacities().to_vec());
        let m = greedy_matching(&g, &caps);
        assert_eq!(m.len(), 2);
        assert!(m.is_feasible(&g, &caps));
    }

    #[test]
    fn tie_breaking_is_by_edge_id() {
        let g = BipartiteGraph::from_edges(
            1,
            2,
            vec![
                Edge::new(ItemId(0), ConsumerId(0), 1.0),
                Edge::new(ItemId(0), ConsumerId(1), 1.0),
            ],
        );
        let caps = Capacities::from_vectors(vec![1], vec![1, 1]);
        let m = greedy_matching(&g, &caps);
        assert_eq!(m.to_edge_vec(), vec![0]);
    }

    #[test]
    fn empty_graph_yields_empty_matching() {
        let g = BipartiteGraph::from_edges(2, 2, vec![]);
        let caps = Capacities::uniform(&g, 1, 1);
        let m = greedy_matching(&g, &caps);
        assert!(m.is_empty());
    }

    #[test]
    fn usage_report_matches_degrees() {
        let (g, caps) = path_graph(0.2);
        let (m, usage) = greedy_matching_with_usage(&g, &caps);
        for (node, used) in usage {
            assert_eq!(used, m.degree(&g, node) as u64);
            assert!(used <= caps.of(node));
        }
    }

    #[test]
    fn greedy_never_exceeds_half_pessimism_on_small_instances() {
        // On the worst-case style instance greedy still achieves at least
        // half of the best possible value (checked here against the obvious
        // optimum of the small instance).
        let (g, caps) = path_graph(0.01);
        let m = greedy_matching(&g, &caps);
        let optimal = 2.0; // edges 1 and 2 (both weight 1.0)
        assert!(m.value(&g) >= 0.5 * optimal - 1e-12);
    }
}
