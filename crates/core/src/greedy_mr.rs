//! GreedyMR: the MapReduce adaptation of the greedy algorithm
//! (Section 5.4, Algorithm 3).
//!
//! Every round is one MapReduce job over the node-centric graph
//! representation:
//!
//! * **map** — every node `v` proposes its `b(v)` heaviest live edges and
//!   sends, for every live incident edge, its view of that edge (proposal
//!   flag and residual capacity) to both endpoints;
//! * **reduce** — every node unifies the two views of each incident edge:
//!   edges proposed by *both* endpoints enter the solution, the node's
//!   residual capacity is decreased accordingly, matched edges and edges
//!   towards saturated neighbours are dropped from the adjacency, and the
//!   updated node record is emitted for the next round.
//!
//! The algorithm stops when no live edge remains.  The solution grows
//! monotonically and is feasible after every round, which is the *any-time*
//! property highlighted in the paper (Figure 5): the run can be stopped at
//! any round and still return a valid b-matching.
//!
//! Execution is structured as an [`IterativeJob`] driven by the
//! [`IterativeDriver`], with every round's MapReduce job built through a
//! [`FlowContext`] — so the driver's round accounting and the flow's
//! per-job metrics describe the same jobs, and the caller-provided flow
//! of [`GreedyMr::run`] folds the rounds into a larger pipeline's
//! [`smr_mapreduce::FlowReport`].  Between rounds the surviving node
//! records live in a [`RoundState`] (disk-backed by default), so the
//! run never retains the full candidate edge list in memory.

use serde::{Deserialize, Serialize};
use smr_graph::{BipartiteGraph, Capacities, EdgeId, Matching, NodeId};
use smr_mapreduce::flow::FlowContext;
use smr_mapreduce::{
    Emitter, IterativeDriver, IterativeJob, JobMetrics, Mapper, Reducer, RoundOutcome, RoundState,
    RunSummary,
};
use smr_storage::impl_codec_struct;

use crate::config::GreedyMrConfig;
use crate::result::{AlgorithmKind, MatchingRun};
use crate::state::{build_node_records, AdjEdge, NodeRecord};

/// A message exchanged between the two endpoints of an edge during one
/// GreedyMR round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeView {
    /// The edge this message describes.
    pub edge: EdgeId,
    /// The node that sent this view.
    pub sender: NodeId,
    /// The node the message is about to reach (the other endpoint, or the
    /// sender itself for the self-addressed copy).
    pub other: NodeId,
    /// Edge weight.
    pub weight: f64,
    /// Residual capacity of the sender at the start of the round.
    pub sender_capacity: u64,
    /// Whether the sender proposes this edge (it is among the sender's
    /// `b(v)` heaviest live edges).
    pub proposed: bool,
}

impl_codec_struct!(EdgeView {
    edge,
    sender,
    other,
    weight,
    sender_capacity,
    proposed
});

/// Output of one reducer invocation: the node's updated record plus the
/// edges it matched this round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GreedyRoundOutput {
    /// The updated node record (empty adjacency when the node is done).
    pub record: NodeRecord,
    /// Edges newly matched this round (each matched edge is reported by
    /// both endpoints; the driver deduplicates).
    pub matched: Vec<EdgeId>,
}

impl_codec_struct!(GreedyRoundOutput { record, matched });

/// The map function of a GreedyMR round.
struct ProposeMapper;

impl Mapper for ProposeMapper {
    type InKey = NodeId;
    type InValue = NodeRecord;
    type OutKey = NodeId;
    type OutValue = EdgeView;

    fn map(&self, node: &NodeId, record: &NodeRecord, out: &mut Emitter<NodeId, EdgeView>) {
        debug_assert_eq!(*node, record.node);
        // Determine the proposals: the b(v) heaviest live edges.
        let proposal_count = (record.capacity as usize).min(record.adjacency.len());
        let proposed_idx = record.heaviest_edges(proposal_count);
        let mut proposed = vec![false; record.adjacency.len()];
        for idx in proposed_idx {
            proposed[idx] = true;
        }
        for (idx, adj) in record.adjacency.iter().enumerate() {
            let view = EdgeView {
                edge: adj.edge,
                sender: record.node,
                other: adj.other,
                weight: adj.weight,
                sender_capacity: record.capacity,
                proposed: proposed[idx] && record.capacity > 0,
            };
            // Both endpoints must learn the sender's view: the neighbour to
            // compute the proposal intersection, the sender itself so that
            // its reducer has its own proposals and capacity available.
            out.emit(adj.other, view.clone());
            out.emit(record.node, view);
        }
    }
}

/// The reduce function of a GreedyMR round.
struct IntersectReducer;

impl Reducer for IntersectReducer {
    type Key = NodeId;
    type InValue = EdgeView;
    type OutKey = NodeId;
    type OutValue = GreedyRoundOutput;

    fn reduce(
        &self,
        node: &NodeId,
        views: &[EdgeView],
        out: &mut Emitter<NodeId, GreedyRoundOutput>,
    ) {
        // Split the incoming views into the node's own views and the
        // neighbours' views, indexed by edge.
        let own: Vec<&EdgeView> = views.iter().filter(|m| m.sender == *node).collect();
        if own.is_empty() {
            // The node emitted nothing this round (it had disappeared
            // earlier); nothing to output.
            return;
        }
        let capacity = own[0].sender_capacity;
        let neighbour_views: std::collections::HashMap<EdgeId, &EdgeView> = views
            .iter()
            .filter(|m| m.sender != *node)
            .map(|m| (m.edge, m))
            .collect();

        let mut matched: Vec<EdgeId> = Vec::new();
        let mut next_adjacency: Vec<AdjEdge> = Vec::new();
        for own_view in &own {
            let neighbour_view = neighbour_views.get(&own_view.edge).copied();
            match neighbour_view {
                Some(nv) => {
                    if own_view.proposed && nv.proposed {
                        matched.push(own_view.edge);
                    } else if nv.sender_capacity == 0 || capacity == 0 {
                        // The neighbour (or this node) is saturated: the
                        // edge can never be matched, drop it.
                    } else {
                        next_adjacency.push(AdjEdge::new(
                            own_view.edge,
                            own_view.other,
                            own_view.weight,
                        ));
                    }
                }
                None => {
                    // The neighbour no longer exists; drop the edge.
                }
            }
        }
        matched.sort_unstable();
        matched.dedup();
        let new_capacity = capacity - matched.len() as u64;
        // A node whose capacity reached zero drops all remaining edges: its
        // neighbours do the same in this very round because they see the
        // capacity in the messages (or will see capacity 0 next round if it
        // became zero only now).
        let adjacency = if new_capacity == 0 {
            Vec::new()
        } else {
            next_adjacency
        };
        out.emit(
            *node,
            GreedyRoundOutput {
                record: NodeRecord::new(*node, new_capacity, adjacency),
                matched,
            },
        );
    }
}

/// The GreedyMR algorithm.
#[derive(Debug, Clone, Default)]
pub struct GreedyMr {
    config: GreedyMrConfig,
}

impl GreedyMr {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: GreedyMrConfig) -> Self {
        GreedyMr { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GreedyMrConfig {
        &self.config
    }

    /// Runs GreedyMR with every round's job built through `flow`: the
    /// flow's `JobConfig` governs the engine (threads, shuffle mode,
    /// reduce tasks) and every round reports into the flow's
    /// [`smr_mapreduce::FlowReport`], unified with whatever other jobs the
    /// surrounding pipeline ran.
    ///
    /// Between rounds the surviving node records live in a
    /// [`RoundState`] — on disk in the flow's side store by default
    /// ([`crate::GreedyMrConfig::round_state`]), with matched-out nodes
    /// retired via tombstones instead of a rewritten survivor list — so
    /// no stage of the run holds the full candidate edge list in memory.
    pub fn run(
        &self,
        graph: &BipartiteGraph,
        caps: &Capacities,
        flow: &FlowContext,
    ) -> MatchingRun {
        let mut state: RoundState<NodeId, GreedyRoundOutput> =
            flow.round_state("greedy-rounds", self.config.round_state);
        state.seed(
            build_node_records(graph, caps)
                .into_iter()
                .map(|(node, record)| {
                    (
                        node,
                        GreedyRoundOutput {
                            record,
                            matched: Vec::new(),
                        },
                    )
                })
                .collect(),
        );
        let mut rounds = GreedyRounds {
            flow,
            graph,
            state,
            matching: Matching::new(graph.num_edges()),
            value_per_round: Vec::new(),
        };
        // An edgeless graph runs zero rounds (and zero jobs), exactly like
        // the pre-flow driver loop.
        let summary = if rounds.state.is_empty() {
            RunSummary::default()
        } else {
            IterativeDriver::new(self.config.max_rounds).run(&mut rounds)
        };

        MatchingRun {
            algorithm: AlgorithmKind::GreedyMr,
            matching: rounds.matching,
            mr_jobs: summary.jobs,
            rounds: summary.rounds,
            value_per_round: rounds.value_per_round,
            job_metrics: summary.job_metrics,
            max_round_state_bytes: rounds.state.max_state_bytes(),
        }
    }
}

/// The per-round state of a GreedyMR run, driven by [`IterativeDriver`].
/// The records surviving between rounds live in `state` (disk-backed by
/// default), not in this struct.
struct GreedyRounds<'a> {
    flow: &'a FlowContext,
    graph: &'a BipartiteGraph,
    state: RoundState<NodeId, GreedyRoundOutput>,
    matching: Matching,
    value_per_round: Vec<f64>,
}

impl IterativeJob for GreedyRounds<'_> {
    fn run_round(&mut self, round: usize) -> (RoundOutcome, Vec<JobMetrics>) {
        self.flow.mark_round();
        let jobs_before = self.flow.num_jobs();
        let output = self
            .state
            .dataset_with(|node, out| (node, out.record))
            .map_with(ProposeMapper)
            .named(format!("round-{round}"))
            .reduce_with(IntersectReducer)
            .collect();
        let metrics = self.flow.jobs_from(jobs_before);

        // Absorb the round output: matched edges land in the matching,
        // matched-out (isolated) nodes are retired from the next round's
        // input.  Progress is guaranteed: the globally heaviest live edge
        // is the heaviest live edge of both of its endpoints, so both
        // propose it and it is matched — every round either matches an
        // edge or runs on an already-empty graph.
        let matching = &mut self.matching;
        self.state.absorb(output, |_, out| {
            for &e in &out.matched {
                matching.insert(e);
            }
            !out.record.is_isolated()
        });
        self.value_per_round.push(self.matching.value(self.graph));
        if self.state.is_empty() {
            (RoundOutcome::Converged, metrics)
        } else {
            (RoundOutcome::Continue, metrics)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::optimal_matching;
    use crate::greedy::greedy_matching;
    use smr_graph::{ConsumerId, Edge, GraphBuilder, ItemId};
    use smr_mapreduce::JobConfig;

    fn config() -> GreedyMrConfig {
        GreedyMrConfig::default().with_job(JobConfig::named("greedy-mr-test").with_threads(2))
    }

    /// Test helper: run under a throwaway flow built from the config's job.
    fn run(alg: GreedyMr, g: &BipartiteGraph, caps: &Capacities) -> MatchingRun {
        let flow = FlowContext::new(alg.config.job.clone());
        alg.run(g, caps, &flow)
    }

    fn small_instance() -> (BipartiteGraph, Capacities) {
        let g = BipartiteGraph::from_edges(
            2,
            2,
            vec![
                Edge::new(ItemId(0), ConsumerId(0), 1.0),
                Edge::new(ItemId(0), ConsumerId(1), 2.0),
                Edge::new(ItemId(1), ConsumerId(0), 3.0),
                Edge::new(ItemId(1), ConsumerId(1), 1.0),
            ],
        );
        let caps = Capacities::uniform(&g, 1, 1);
        (g, caps)
    }

    #[test]
    fn greedy_mr_finds_the_same_value_as_centralized_greedy_on_unique_weights() {
        let (g, caps) = small_instance();
        let run = run(GreedyMr::new(config()), &g, &caps);
        let centralized = greedy_matching(&g, &caps);
        assert!(run.matching.is_feasible(&g, &caps));
        // With all-distinct weights both algorithms pick the same edges.
        assert_eq!(run.matching.to_edge_vec(), centralized.to_edge_vec());
        assert!((run.value(&g) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_mr_is_feasible_and_half_optimal_on_a_larger_instance() {
        let mut b = GraphBuilder::new();
        let items: Vec<ItemId> = (0..6).map(|i| b.add_item(format!("t{i}"))).collect();
        let consumers: Vec<ConsumerId> = (0..8).map(|i| b.add_consumer(format!("c{i}"))).collect();
        // Deterministic pseudo-random weights.
        let mut w = 0.37_f64;
        for (ti, &t) in items.iter().enumerate() {
            for (ci, &c) in consumers.iter().enumerate() {
                if (ti + ci) % 3 != 0 {
                    w = (w * 997.0 + 0.123).fract().max(0.01);
                    b.add_edge(t, c, w);
                }
            }
        }
        let g = b.build();
        let caps = Capacities::uniform(&g, 3, 2);
        let run = run(GreedyMr::new(config()), &g, &caps);
        assert!(run.matching.is_feasible(&g, &caps));
        let opt = optimal_matching(&g, &caps);
        assert!(
            run.value(&g) >= 0.5 * opt.value(&g) - 1e-9,
            "GreedyMR value {} below half of optimal {}",
            run.value(&g),
            opt.value(&g)
        );
    }

    #[test]
    fn value_trace_is_monotone_and_any_time() {
        let (g, caps) = small_instance();
        let run = run(GreedyMr::new(config()), &g, &caps);
        assert!(!run.value_per_round.is_empty());
        for pair in run.value_per_round.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-12, "value decreased across rounds");
        }
        assert!((run.value_per_round.last().unwrap() - run.value(&g)).abs() < 1e-12);
    }

    #[test]
    fn rounds_and_jobs_are_counted() {
        let (g, caps) = small_instance();
        let run = run(GreedyMr::new(config()), &g, &caps);
        assert!(run.rounds >= 1);
        assert_eq!(run.mr_jobs, run.rounds);
        assert_eq!(run.job_metrics.len(), run.mr_jobs);
        assert!(run.total_shuffled_records() > 0);
    }

    #[test]
    fn empty_graph_finishes_without_rounds() {
        let g = BipartiteGraph::from_edges(3, 3, vec![]);
        let caps = Capacities::uniform(&g, 1, 1);
        let run = run(GreedyMr::new(config()), &g, &caps);
        assert_eq!(run.rounds, 0);
        assert!(run.matching.is_empty());
    }

    #[test]
    fn increasing_weight_path_needs_many_rounds() {
        // The worst-case instance of Section 5.4: a path with increasing
        // weights causes a chain of cascading updates.
        let n = 12usize;
        let mut builder = GraphBuilder::new();
        let items: Vec<ItemId> = (0..n).map(|i| builder.add_item(format!("t{i}"))).collect();
        let consumers: Vec<ConsumerId> = (0..n)
            .map(|i| builder.add_consumer(format!("c{i}")))
            .collect();
        // Path t0 - c0 - t1 - c1 - t2 ... with strictly increasing weights.
        let mut weight = 1.0;
        for i in 0..n {
            builder.add_edge(items[i], consumers[i], weight);
            weight += 1.0;
            if i + 1 < n {
                builder.add_edge(items[i + 1], consumers[i], weight);
                weight += 1.0;
            }
        }
        let g = builder.build();
        let caps = Capacities::uniform(&g, 1, 1);
        let run = run(GreedyMr::new(config()), &g, &caps);
        assert!(run.matching.is_feasible(&g, &caps));
        // The number of rounds grows with the path length (not O(1)).
        assert!(
            run.rounds >= n / 2,
            "expected at least {} rounds on the adversarial path, got {}",
            n / 2,
            run.rounds
        );
    }

    #[test]
    fn shared_flow_reports_every_round_of_the_run() {
        use smr_mapreduce::flow::FlowContext;
        let (g, caps) = small_instance();
        let baseline = run(GreedyMr::new(config()), &g, &caps);

        let flow = FlowContext::new(JobConfig::named("greedy-mr-test").with_threads(2));
        let run = GreedyMr::new(config()).run(&g, &caps, &flow);

        // Same result as the self-contained entry point…
        assert_eq!(run.matching.to_edge_vec(), baseline.matching.to_edge_vec());
        assert_eq!(run.rounds, baseline.rounds);
        assert_eq!(
            run.total_shuffled_records(),
            baseline.total_shuffled_records()
        );
        // …and every round's job visible in the shared flow report.
        let report = flow.report();
        assert_eq!(report.num_jobs(), run.mr_jobs);
        assert_eq!(
            report.total_shuffled_records(),
            run.total_shuffled_records()
        );
        assert_eq!(report.jobs[0].job_name, "greedy-mr-test-round-0");
    }

    #[test]
    fn spilled_and_in_memory_runs_agree_on_the_matching() {
        let (g, caps) = small_instance();
        let in_memory = run(GreedyMr::new(config().with_memory_budget(None)), &g, &caps);
        let spilled = run(
            GreedyMr::new(config().with_memory_budget(Some(256))),
            &g,
            &caps,
        );
        assert_eq!(
            spilled.matching.to_edge_vec(),
            in_memory.matching.to_edge_vec()
        );
        assert_eq!(spilled.rounds, in_memory.rounds);
        assert_eq!(
            spilled.total_shuffled_records(),
            in_memory.total_shuffled_records(),
            "GreedyMR has no combiner, so spilling must not change the record flow"
        );
        assert!(
            spilled.job_metrics.iter().map(|m| m.disk_runs).sum::<u64>() > 0,
            "a 256-byte budget must force disk runs"
        );
    }

    #[test]
    fn respects_round_budget() {
        let (g, caps) = small_instance();
        let run = run(GreedyMr::new(config().with_max_rounds(1)), &g, &caps);
        assert_eq!(run.rounds, 1);
        // Still feasible (any-time property).
        assert!(run.matching.is_feasible(&g, &caps));
    }

    #[test]
    fn capacities_above_degree_match_every_edge() {
        let (g, _) = small_instance();
        let caps = Capacities::uniform(&g, 10, 10);
        let run = run(GreedyMr::new(config()), &g, &caps);
        assert_eq!(run.matching.len(), g.num_edges());
    }
}
