//! Algorithm configuration.

use serde::{Deserialize, Serialize};
use smr_mapreduce::{JobConfig, RoundStateMode};

/// How the marking stage of the maximal b-matching subroutine chooses the
/// edges a node proposes to its neighbours (Section 6, "Variants").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MarkingStrategy {
    /// Mark edges chosen uniformly at random — the StackMR default.
    #[default]
    Random,
    /// Mark the heaviest edges — the StackGreedyMR variant.
    HeaviestFirst,
    /// Mark edges randomly with probability proportional to their weight —
    /// the third variant mentioned (and dismissed) in the paper.
    WeightProportional,
}

/// Configuration of [`crate::GreedyMr`].
#[derive(Debug, Clone)]
pub struct GreedyMrConfig {
    /// MapReduce job configuration used for every round.
    pub job: JobConfig,
    /// Safety bound on the number of rounds (the algorithm may need a
    /// number of rounds linear in `|E|` in the worst case).
    pub max_rounds: usize,
    /// Where the surviving node records live between rounds: on disk in
    /// the flow's side store (the default), or in RAM (the reference the
    /// disk path is property-tested against).  Both modes produce
    /// byte-identical matchings.
    pub round_state: RoundStateMode,
}

impl Default for GreedyMrConfig {
    fn default() -> Self {
        GreedyMrConfig {
            job: JobConfig::named("greedy-mr"),
            max_rounds: 100_000,
            round_state: RoundStateMode::DiskBacked,
        }
    }
}

impl GreedyMrConfig {
    /// Sets the MapReduce job configuration.
    pub fn with_job(mut self, job: JobConfig) -> Self {
        self.job = job;
        self
    }

    /// Sets the engine memory budget every round runs under (`None` =
    /// unlimited) — a passthrough to [`JobConfig::with_memory_budget`]
    /// used by the `spill` bench experiment to A/B whole algorithm runs.
    pub fn with_memory_budget(mut self, bytes: Option<u64>) -> Self {
        self.job = self.job.with_memory_budget(bytes);
        self
    }

    /// Sets the directory spilled runs are written under — a passthrough
    /// to [`JobConfig::with_spill_dir`].
    pub fn with_spill_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.job = self.job.with_spill_dir(dir);
        self
    }

    /// Sets the round budget.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Selects where the inter-round state lives (see
    /// [`RoundStateMode`]).
    pub fn with_round_state(mut self, mode: RoundStateMode) -> Self {
        self.round_state = mode;
        self
    }
}

/// Configuration of [`crate::StackMr`].
#[derive(Debug, Clone)]
pub struct StackMrConfig {
    /// The slackness parameter ε: capacities may be violated by a factor of
    /// at most (1+ε) and the approximation guarantee is 1/(6+ε).  The
    /// paper's experiments use ε = 1.
    pub epsilon: f64,
    /// Edge-selection strategy of the marking stage ([`MarkingStrategy`]):
    /// `Random` gives StackMR, `HeaviestFirst` gives StackGreedyMR.
    pub marking: MarkingStrategy,
    /// Seed of the pseudo-random generator used by the randomized maximal
    /// b-matching subroutine; runs with equal seeds are reproducible.
    pub seed: u64,
    /// MapReduce job configuration used for every job of every phase.
    pub job: JobConfig,
    /// Safety bound on push rounds (the theoretical bound is
    /// `O(log³n/ε² · log(w_max/w_min))` w.h.p.).
    pub max_push_rounds: usize,
    /// Safety bound on the iterations of one maximal-matching computation
    /// (the expected number is `O(log³ n)`).
    pub max_maximal_iterations: usize,
    /// Where the surviving records of the push rounds and the maximal
    /// subroutine live between rounds (see
    /// [`GreedyMrConfig::round_state`]).
    pub round_state: RoundStateMode,
}

impl Default for StackMrConfig {
    fn default() -> Self {
        StackMrConfig {
            epsilon: 1.0,
            marking: MarkingStrategy::Random,
            seed: 42,
            job: JobConfig::named("stack-mr"),
            max_push_rounds: 10_000,
            max_maximal_iterations: 10_000,
            round_state: RoundStateMode::DiskBacked,
        }
    }
}

impl StackMrConfig {
    /// The StackGreedyMR variant of the configuration (heaviest-first
    /// marking), leaving everything else unchanged.
    pub fn stack_greedy(mut self) -> Self {
        self.marking = MarkingStrategy::HeaviestFirst;
        self
    }

    /// Sets ε.
    ///
    /// # Panics
    /// Panics if `epsilon` is not strictly positive.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        self.epsilon = epsilon;
        self
    }

    /// Sets the marking strategy.
    pub fn with_marking(mut self, marking: MarkingStrategy) -> Self {
        self.marking = marking;
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the MapReduce job configuration.
    pub fn with_job(mut self, job: JobConfig) -> Self {
        self.job = job;
        self
    }

    /// Sets the engine memory budget used by every job of every phase
    /// (see [`GreedyMrConfig::with_memory_budget`]).
    pub fn with_memory_budget(mut self, bytes: Option<u64>) -> Self {
        self.job = self.job.with_memory_budget(bytes);
        self
    }

    /// Sets the directory spilled runs are written under (see
    /// [`GreedyMrConfig::with_spill_dir`]).
    pub fn with_spill_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.job = self.job.with_spill_dir(dir);
        self
    }

    /// Selects where the inter-round state lives (see
    /// [`RoundStateMode`]).
    pub fn with_round_state(mut self, mode: RoundStateMode) -> Self {
        self.round_state = mode;
        self
    }

    /// Per-node capacity used for the layers of the stack:
    /// `max(1, ⌈ε·b(v)⌉)`.
    ///
    /// With ε = 1 (the paper's experimental setting) a layer may contain up
    /// to `b(v)` edges per node; smaller ε yields thinner layers, lower
    /// capacity violations and more push rounds.
    pub fn layer_capacity(&self, b: u64) -> u64 {
        ((self.epsilon * b as f64).ceil() as u64).max(1)
    }

    /// The weak-coverage factor `1/(3 + 2ε)` of Definition 1.
    pub fn weak_coverage_factor(&self) -> f64 {
        1.0 / (3.0 + 2.0 * self.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_papers_experimental_setting() {
        let c = StackMrConfig::default();
        assert_eq!(c.epsilon, 1.0);
        assert_eq!(c.marking, MarkingStrategy::Random);
        assert!((c.weak_coverage_factor() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn stack_greedy_flips_only_the_marking_strategy() {
        let base = StackMrConfig::default().with_seed(7);
        let greedy = base.clone().stack_greedy();
        assert_eq!(greedy.marking, MarkingStrategy::HeaviestFirst);
        assert_eq!(greedy.seed, 7);
        assert_eq!(greedy.epsilon, base.epsilon);
    }

    #[test]
    fn layer_capacity_scales_with_epsilon() {
        let full = StackMrConfig::default().with_epsilon(1.0);
        assert_eq!(full.layer_capacity(10), 10);
        let half = StackMrConfig::default().with_epsilon(0.5);
        assert_eq!(half.layer_capacity(10), 5);
        assert_eq!(half.layer_capacity(1), 1);
        let tiny = StackMrConfig::default().with_epsilon(0.01);
        assert_eq!(tiny.layer_capacity(10), 1);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_is_rejected() {
        StackMrConfig::default().with_epsilon(0.0);
    }

    #[test]
    fn greedy_config_builder() {
        let c = GreedyMrConfig::default()
            .with_max_rounds(5)
            .with_job(JobConfig::named("x").with_threads(1));
        assert_eq!(c.max_rounds, 5);
        assert_eq!(c.job.name, "x");
    }

    #[test]
    fn round_state_defaults_to_disk_and_is_configurable() {
        assert_eq!(
            GreedyMrConfig::default().round_state,
            RoundStateMode::DiskBacked
        );
        assert_eq!(
            StackMrConfig::default().round_state,
            RoundStateMode::DiskBacked
        );
        let g = GreedyMrConfig::default().with_round_state(RoundStateMode::InMemory);
        assert_eq!(g.round_state, RoundStateMode::InMemory);
        let s = StackMrConfig::default().with_round_state(RoundStateMode::InMemory);
        assert_eq!(s.round_state, RoundStateMode::InMemory);
    }

    #[test]
    fn memory_budget_passthrough_reaches_the_job_config() {
        let greedy = GreedyMrConfig::default()
            .with_memory_budget(Some(4096))
            .with_spill_dir("/tmp/greedy-spills");
        assert_eq!(greedy.job.memory_budget, Some(4096));
        assert_eq!(
            greedy.job.spill_dir,
            Some(std::path::PathBuf::from("/tmp/greedy-spills"))
        );
        let stack = StackMrConfig::default()
            .with_memory_budget(Some(4096))
            .with_spill_dir("/tmp/stack-spills");
        assert_eq!(stack.job.memory_budget, Some(4096));
        assert_eq!(
            stack.job.spill_dir,
            Some(std::path::PathBuf::from("/tmp/stack-spills"))
        );
    }
}
