//! A small façade for running any of the algorithms by name.
//!
//! The experiment harness sweeps algorithms × datasets × parameters; this
//! module gives it (and the examples) a single entry point.

use smr_graph::{BipartiteGraph, Capacities};
use smr_mapreduce::flow::FlowContext;

use crate::config::{GreedyMrConfig, StackMrConfig};
use crate::exact::optimal_matching;
use crate::greedy::greedy_matching;
use crate::greedy_mr::GreedyMr;
use crate::result::{AlgorithmKind, MatchingRun};
use crate::stack::stack_matching;
use crate::stack_mr::StackMr;

/// Parameters shared by [`run_algorithm`].
#[derive(Debug, Clone, Default)]
pub struct RunnerConfig {
    /// Configuration of GreedyMR runs.
    pub greedy_mr: GreedyMrConfig,
    /// Configuration of StackMR / StackGreedyMR runs.
    pub stack_mr: StackMrConfig,
}

/// Runs the requested algorithm with every MapReduce job built through
/// `flow` (see [`GreedyMr::run`] / [`StackMr::run`]): the flow's
/// `JobConfig` governs the engine and the whole run reports into the
/// flow's [`smr_mapreduce::FlowReport`].  Centralized algorithms run no
/// jobs and leave the flow untouched.
///
/// For the centralized algorithms the `MatchingRun` has `mr_jobs == 0`; for
/// `StackGreedyMr` the stack configuration's marking strategy is overridden
/// to heaviest-first.
pub fn run_algorithm(
    algorithm: AlgorithmKind,
    graph: &BipartiteGraph,
    caps: &Capacities,
    config: &RunnerConfig,
    flow: &FlowContext,
) -> MatchingRun {
    match algorithm {
        AlgorithmKind::GreedyMr => GreedyMr::new(config.greedy_mr.clone()).run(graph, caps, flow),
        AlgorithmKind::StackMr => StackMr::new(config.stack_mr.clone()).run(graph, caps, flow),
        AlgorithmKind::StackGreedyMr => {
            StackMr::new(config.stack_mr.clone().stack_greedy()).run(graph, caps, flow)
        }
        centralized => run_centralized(centralized, graph, caps, config),
    }
}

fn run_centralized(
    algorithm: AlgorithmKind,
    graph: &BipartiteGraph,
    caps: &Capacities,
    config: &RunnerConfig,
) -> MatchingRun {
    match algorithm {
        AlgorithmKind::Greedy => {
            let m = greedy_matching(graph, caps);
            let value = m.value(graph);
            MatchingRun::centralized(AlgorithmKind::Greedy, m, value)
        }
        AlgorithmKind::Stack => {
            let m = stack_matching(graph, caps, config.stack_mr.epsilon);
            let value = m.value(graph);
            MatchingRun::centralized(AlgorithmKind::Stack, m, value)
        }
        AlgorithmKind::Exact => {
            let m = optimal_matching(graph, caps);
            let value = m.value(graph);
            MatchingRun::centralized(AlgorithmKind::Exact, m, value)
        }
        mapreduce => unreachable!("{mapreduce} is not a centralized algorithm"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_graph::{ConsumerId, Edge, ItemId};
    use smr_mapreduce::JobConfig;

    fn instance() -> (BipartiteGraph, Capacities) {
        let g = BipartiteGraph::from_edges(
            3,
            3,
            vec![
                Edge::new(ItemId(0), ConsumerId(0), 2.0),
                Edge::new(ItemId(0), ConsumerId(1), 1.0),
                Edge::new(ItemId(1), ConsumerId(1), 3.0),
                Edge::new(ItemId(1), ConsumerId(2), 1.5),
                Edge::new(ItemId(2), ConsumerId(2), 2.5),
                Edge::new(ItemId(2), ConsumerId(0), 0.5),
            ],
        );
        let caps = Capacities::uniform(&g, 1, 1);
        (g, caps)
    }

    /// Test helper: run under a throwaway flow built from the algorithm's
    /// own `JobConfig`.
    fn run(
        algorithm: AlgorithmKind,
        g: &BipartiteGraph,
        caps: &Capacities,
        config: &RunnerConfig,
    ) -> MatchingRun {
        let job = match algorithm {
            AlgorithmKind::GreedyMr => config.greedy_mr.job.clone(),
            _ => config.stack_mr.job.clone(),
        };
        let flow = FlowContext::new(job);
        run_algorithm(algorithm, g, caps, config, &flow)
    }

    fn runner_config() -> RunnerConfig {
        RunnerConfig {
            greedy_mr: GreedyMrConfig::default()
                .with_job(JobConfig::named("runner-greedy").with_threads(1)),
            stack_mr: StackMrConfig::default()
                .with_seed(4)
                .with_job(JobConfig::named("runner-stack").with_threads(1)),
        }
    }

    #[test]
    fn every_algorithm_produces_a_nonempty_matching() {
        let (g, caps) = instance();
        let config = runner_config();
        for algorithm in [
            AlgorithmKind::Greedy,
            AlgorithmKind::Stack,
            AlgorithmKind::Exact,
            AlgorithmKind::GreedyMr,
            AlgorithmKind::StackMr,
            AlgorithmKind::StackGreedyMr,
        ] {
            let run = run(algorithm, &g, &caps, &config);
            assert_eq!(run.algorithm, algorithm, "{algorithm}");
            assert!(!run.matching.is_empty(), "{algorithm} matched nothing");
            assert!(run.value(&g) > 0.0);
        }
    }

    #[test]
    fn centralized_algorithms_report_zero_mapreduce_jobs() {
        let (g, caps) = instance();
        let config = runner_config();
        for algorithm in [
            AlgorithmKind::Greedy,
            AlgorithmKind::Stack,
            AlgorithmKind::Exact,
        ] {
            let run = run(algorithm, &g, &caps, &config);
            assert_eq!(run.mr_jobs, 0);
        }
        let mr = run(AlgorithmKind::GreedyMr, &g, &caps, &config);
        assert!(mr.mr_jobs > 0);
    }

    #[test]
    fn exact_dominates_the_approximations() {
        let (g, caps) = instance();
        let config = runner_config();
        let exact = run(AlgorithmKind::Exact, &g, &caps, &config);
        for algorithm in [
            AlgorithmKind::Greedy,
            AlgorithmKind::GreedyMr,
            AlgorithmKind::Stack,
        ] {
            let run = run(algorithm, &g, &caps, &config);
            assert!(
                run.value(&g) <= exact.value(&g) + 1e-9,
                "{algorithm} exceeded the optimum"
            );
        }
    }
}
