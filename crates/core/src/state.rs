//! The node-centric graph representation shared by the MapReduce
//! algorithms (Section 5.3 of the paper).
//!
//! Every record is keyed by a node and carries that node's local view of
//! the graph: its residual capacity and the list of incident edges it still
//! considers live.  Map functions make decisions locally to a node; reduce
//! functions receive both endpoints' views of every edge and unify them,
//! yielding a consistent graph representation as output.

use serde::{Deserialize, Serialize};
use smr_graph::{BipartiteGraph, Capacities, EdgeId, NodeId};
use smr_storage::impl_codec_struct;

/// One entry of a node's adjacency list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdjEdge {
    /// Global edge identifier.
    pub edge: EdgeId,
    /// The other endpoint.
    pub other: NodeId,
    /// Edge weight.
    pub weight: f64,
}

impl_codec_struct!(AdjEdge {
    edge,
    other,
    weight
});

impl AdjEdge {
    /// Creates an adjacency entry.
    pub fn new(edge: EdgeId, other: NodeId, weight: f64) -> Self {
        AdjEdge {
            edge,
            other,
            weight,
        }
    }
}

/// A node's view of the current graph state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeRecord {
    /// The node this record describes.
    pub node: NodeId,
    /// Remaining capacity of the node.
    pub capacity: u64,
    /// Incident edges the node still considers live.
    pub adjacency: Vec<AdjEdge>,
}

impl_codec_struct!(NodeRecord {
    node,
    capacity,
    adjacency
});

impl NodeRecord {
    /// Creates a record.
    pub fn new(node: NodeId, capacity: u64, adjacency: Vec<AdjEdge>) -> Self {
        NodeRecord {
            node,
            capacity,
            adjacency,
        }
    }

    /// Whether the node has no live incident edges.
    pub fn is_isolated(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// The indices (into `adjacency`) of the node's `k` heaviest live
    /// edges, ties broken by edge id so that the choice is deterministic.
    pub fn heaviest_edges(&self, k: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.adjacency.len()).collect();
        order.sort_by(|&a, &b| {
            let ea = &self.adjacency[a];
            let eb = &self.adjacency[b];
            eb.weight
                .partial_cmp(&ea.weight)
                .expect("edge weights are finite")
                .then(ea.edge.cmp(&eb.edge))
        });
        order.truncate(k);
        order
    }
}

/// Builds the initial node-centric representation of a graph: one record
/// per non-isolated node, keyed by the node id.
pub fn build_node_records(graph: &BipartiteGraph, caps: &Capacities) -> Vec<(NodeId, NodeRecord)> {
    assert!(
        caps.matches(graph),
        "capacities were built for a different graph"
    );
    graph
        .nodes()
        .filter(|&v| graph.degree(v) > 0)
        .map(|v| {
            let adjacency = graph
                .incident_edges(v)
                .iter()
                .map(|&e| {
                    let edge = graph.edge(e);
                    AdjEdge::new(e, edge.other_endpoint(v), edge.weight)
                })
                .collect();
            (v, NodeRecord::new(v, caps.of(v), adjacency))
        })
        .collect()
}

/// Total number of live edges across records.  Every edge is listed by both
/// of its endpoints while both are present, so this is `2|E|` for a fully
/// consistent state; it reaches zero exactly when no record lists any edge.
pub fn total_live_edge_entries(records: &[(NodeId, NodeRecord)]) -> usize {
    records.iter().map(|(_, r)| r.adjacency.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_graph::{ConsumerId, Edge, ItemId};

    fn graph() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            2,
            2,
            vec![
                Edge::new(ItemId(0), ConsumerId(0), 1.0),
                Edge::new(ItemId(0), ConsumerId(1), 3.0),
                Edge::new(ItemId(1), ConsumerId(1), 2.0),
            ],
        )
    }

    #[test]
    fn build_node_records_covers_non_isolated_nodes() {
        let g = graph();
        let caps = Capacities::uniform(&g, 2, 1);
        let records = build_node_records(&g, &caps);
        assert_eq!(records.len(), 4);
        let (key, item0) = records.iter().find(|(k, _)| *k == NodeId::item(0)).unwrap();
        assert_eq!(*key, item0.node);
        assert_eq!(item0.capacity, 2);
        assert_eq!(item0.adjacency.len(), 2);
        assert_eq!(item0.adjacency[0].other, NodeId::consumer(0));
        assert_eq!(total_live_edge_entries(&records), 6); // 2 * |E|
    }

    #[test]
    fn isolated_nodes_get_no_record() {
        let g = BipartiteGraph::from_edges(2, 1, vec![Edge::new(ItemId(0), ConsumerId(0), 1.0)]);
        let caps = Capacities::uniform(&g, 1, 1);
        let records = build_node_records(&g, &caps);
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|(k, _)| *k != NodeId::item(1)));
    }

    #[test]
    fn heaviest_edges_orders_by_weight_then_id() {
        let g = graph();
        let caps = Capacities::uniform(&g, 2, 2);
        let records = build_node_records(&g, &caps);
        let (_, c1) = records
            .iter()
            .find(|(k, _)| *k == NodeId::consumer(1))
            .unwrap();
        // Consumer 1 has edges 1 (w=3.0) and 2 (w=2.0).
        let top = c1.heaviest_edges(1);
        assert_eq!(c1.adjacency[top[0]].edge, 1);
        let both = c1.heaviest_edges(5);
        assert_eq!(both.len(), 2);
        assert_eq!(c1.adjacency[both[0]].edge, 1);
        assert_eq!(c1.adjacency[both[1]].edge, 2);
    }

    #[test]
    fn heaviest_edges_breaks_weight_ties_by_edge_id() {
        let g = BipartiteGraph::from_edges(
            1,
            3,
            vec![
                Edge::new(ItemId(0), ConsumerId(0), 1.0),
                Edge::new(ItemId(0), ConsumerId(1), 1.0),
                Edge::new(ItemId(0), ConsumerId(2), 1.0),
            ],
        );
        let caps = Capacities::uniform(&g, 2, 1);
        let records = build_node_records(&g, &caps);
        let (_, t0) = records.iter().find(|(k, _)| *k == NodeId::item(0)).unwrap();
        let picks = t0.heaviest_edges(2);
        assert_eq!(t0.adjacency[picks[0]].edge, 0);
        assert_eq!(t0.adjacency[picks[1]].edge, 1);
    }

    #[test]
    #[should_panic(expected = "different graph")]
    fn mismatched_capacities_are_rejected() {
        let g = graph();
        let caps = Capacities::from_vectors(vec![1], vec![1]);
        build_node_records(&g, &caps);
    }
}
