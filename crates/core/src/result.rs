//! Results reported by every algorithm run.

use serde::{Deserialize, Serialize};
use smr_graph::{BipartiteGraph, Capacities, Matching};
use smr_mapreduce::JobMetrics;

/// Which algorithm produced a run (used by the experiment harness when
/// tabulating results).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// Centralized sequential greedy.
    Greedy,
    /// Centralized sequential stack (primal-dual).
    Stack,
    /// The MapReduce greedy algorithm.
    GreedyMr,
    /// The MapReduce stack algorithm with random marking.
    StackMr,
    /// The MapReduce stack algorithm with heaviest-first marking.
    StackGreedyMr,
    /// The exact min-cost-flow solver.
    Exact,
}

impl AlgorithmKind {
    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::Greedy => "Greedy",
            AlgorithmKind::Stack => "Stack",
            AlgorithmKind::GreedyMr => "GreedyMR",
            AlgorithmKind::StackMr => "StackMR",
            AlgorithmKind::StackGreedyMr => "StackGreedyMR",
            AlgorithmKind::Exact => "Exact",
        }
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The outcome of one algorithm run on one instance.
#[derive(Debug, Clone)]
pub struct MatchingRun {
    /// Which algorithm ran.
    pub algorithm: AlgorithmKind,
    /// The matching produced (possibly violating capacities for StackMR,
    /// within the (1+ε) bound).
    pub matching: Matching,
    /// Number of MapReduce jobs executed (0 for centralized algorithms).
    /// This is the "number of iterations" the paper reports in Figures
    /// 1–3.
    pub mr_jobs: usize,
    /// Number of algorithm-level rounds (GreedyMR rounds, StackMR push +
    /// pop rounds); one round may run several MapReduce jobs.
    pub rounds: usize,
    /// The b-matching value after each round — the any-time trace of
    /// Figure 5.  Centralized algorithms record a single final value.
    pub value_per_round: Vec<f64>,
    /// Metrics of every MapReduce job in execution order.
    pub job_metrics: Vec<JobMetrics>,
    /// Largest on-disk inter-round state the run held at any point, in
    /// bytes — what the in-memory round path would have kept resident
    /// between rounds.  Zero for centralized algorithms and for runs in
    /// [`smr_mapreduce::RoundStateMode::InMemory`] mode.
    pub max_round_state_bytes: u64,
}

impl MatchingRun {
    /// Creates a run result for a centralized (non-MapReduce) algorithm.
    pub fn centralized(algorithm: AlgorithmKind, matching: Matching, value: f64) -> Self {
        MatchingRun {
            algorithm,
            matching,
            mr_jobs: 0,
            rounds: 1,
            value_per_round: vec![value],
            job_metrics: Vec::new(),
            max_round_state_bytes: 0,
        }
    }

    /// The final b-matching value.
    pub fn value(&self, graph: &BipartiteGraph) -> f64 {
        self.matching.value(graph)
    }

    /// Total records shuffled across all MapReduce jobs (the communication
    /// cost of the run).
    pub fn total_shuffled_records(&self) -> u64 {
        self.job_metrics.iter().map(|m| m.shuffle_records).sum()
    }

    /// The paper's average capacity violation ε′ of the produced matching.
    pub fn average_violation(&self, graph: &BipartiteGraph, caps: &Capacities) -> f64 {
        self.matching.average_violation(graph, caps)
    }

    /// The earliest round (1-based) whose value reaches `fraction` of the
    /// final value, together with that round's fraction of the total round
    /// count.  This is the "GreedyMR reaches 95% of its final value within
    /// X% of its iterations" measure of Figure 5.
    ///
    /// Returns `None` when the final value is zero or no rounds were
    /// recorded.
    pub fn rounds_to_reach_fraction(&self, fraction: f64) -> Option<(usize, f64)> {
        let final_value = *self.value_per_round.last()?;
        if final_value <= 0.0 {
            return None;
        }
        let target = fraction * final_value;
        let round = self.value_per_round.iter().position(|&v| v >= target)? + 1;
        Some((round, round as f64 / self.value_per_round.len() as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_graph::{ConsumerId, Edge, ItemId};

    fn graph() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            1,
            2,
            vec![
                Edge::new(ItemId(0), ConsumerId(0), 1.0),
                Edge::new(ItemId(0), ConsumerId(1), 2.0),
            ],
        )
    }

    #[test]
    fn algorithm_names_match_the_paper() {
        assert_eq!(AlgorithmKind::GreedyMr.name(), "GreedyMR");
        assert_eq!(AlgorithmKind::StackMr.to_string(), "StackMR");
        assert_eq!(AlgorithmKind::StackGreedyMr.name(), "StackGreedyMR");
    }

    #[test]
    fn centralized_run_records_one_round() {
        let g = graph();
        let m = Matching::from_edges(2, [1]);
        let run = MatchingRun::centralized(AlgorithmKind::Greedy, m, 2.0);
        assert_eq!(run.rounds, 1);
        assert_eq!(run.mr_jobs, 0);
        assert_eq!(run.value(&g), 2.0);
        assert_eq!(run.total_shuffled_records(), 0);
    }

    #[test]
    fn rounds_to_reach_fraction_finds_the_anytime_point() {
        let run = MatchingRun {
            algorithm: AlgorithmKind::GreedyMr,
            matching: Matching::new(2),
            mr_jobs: 4,
            rounds: 4,
            value_per_round: vec![1.0, 5.0, 9.0, 10.0],
            job_metrics: Vec::new(),
            max_round_state_bytes: 0,
        };
        // 95% of 10.0 = 9.5 is first reached at round 4.
        assert_eq!(run.rounds_to_reach_fraction(0.95), Some((4, 1.0)));
        // 50% of 10.0 = 5.0 is first reached at round 2 (= 50% of rounds).
        assert_eq!(run.rounds_to_reach_fraction(0.5), Some((2, 0.5)));
    }

    #[test]
    fn rounds_to_reach_fraction_handles_empty_and_zero_runs() {
        let empty = MatchingRun {
            algorithm: AlgorithmKind::GreedyMr,
            matching: Matching::new(0),
            mr_jobs: 0,
            rounds: 0,
            value_per_round: vec![],
            job_metrics: Vec::new(),
            max_round_state_bytes: 0,
        };
        assert_eq!(empty.rounds_to_reach_fraction(0.95), None);
        let zero = MatchingRun {
            value_per_round: vec![0.0, 0.0],
            ..empty
        };
        assert_eq!(zero.rounds_to_reach_fraction(0.95), None);
    }
}
