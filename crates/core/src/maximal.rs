//! Maximal b-matching (the subroutine of StackMR).
//!
//! StackMR needs, in every push round, a *maximal* b-matching of the
//! remaining graph: a b-matching not properly contained in any other
//! b-matching (note: maximal, not maximum).  The paper uses the randomized
//! parallel algorithm of Garrido, Jarominek, Lingas and Rytter, which runs
//! in `O(log³ n)` rounds in expectation.  Each iteration has four stages,
//! each of which is one MapReduce job here (Section 5.3):
//!
//! 1. **marking** — every node `v` marks `⌈c(v)/2⌉` of its incident edges
//!    (uniformly at random for StackMR, heaviest-first for StackGreedyMR,
//!    or weight-proportional for the third variant);
//! 2. **selection** — every node selects up to `max(⌊c(v)/2⌋, 1)` edges
//!    among those marked by its *neighbours*; selected edges form the set
//!    `F`;
//! 3. **matching** — a node with capacity 1 and two incident edges in `F`
//!    drops one of them, making `F` a valid b-matching;
//! 4. **cleanup** — `F` is added to the result and removed from the
//!    working graph, capacities are decreased, and saturated nodes are
//!    removed together with their incident edges.
//!
//! The iteration repeats until the working graph has no edges left.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use smr_graph::{EdgeId, NodeId};
use smr_mapreduce::flow::FlowContext;
use smr_mapreduce::{Emitter, JobConfig, JobMetrics, Mapper, Reducer, RoundState, RoundStateMode};
use smr_storage::impl_codec_struct;

use crate::config::MarkingStrategy;
use crate::state::{AdjEdge, NodeRecord};

/// A per-edge annotation inside the working records of the matcher.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkEdge {
    /// Global edge id.
    pub edge: EdgeId,
    /// The other endpoint.
    pub other: NodeId,
    /// Edge weight.
    pub weight: f64,
    /// Whether this node marked the edge in the current iteration.
    pub marked_by_self: bool,
    /// Whether the other endpoint marked the edge in the current iteration.
    pub marked_by_other: bool,
    /// Whether the edge is currently in the candidate set `F`.
    pub in_f: bool,
}

impl_codec_struct!(WorkEdge {
    edge,
    other,
    weight,
    marked_by_self,
    marked_by_other,
    in_f
});

impl WorkEdge {
    fn from_adj(adj: &AdjEdge) -> Self {
        WorkEdge {
            edge: adj.edge,
            other: adj.other,
            weight: adj.weight,
            marked_by_self: false,
            marked_by_other: false,
            in_f: false,
        }
    }
}

/// The working record of one node during the maximal-matching computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkRecord {
    /// The node.
    pub node: NodeId,
    /// Remaining capacity `c(v)` inside this computation.
    pub capacity: u64,
    /// Live edges of the working graph.
    pub edges: Vec<WorkEdge>,
}

impl_codec_struct!(WorkRecord {
    node,
    capacity,
    edges
});

/// The message exchanged by all four stage jobs: one endpoint's view of one
/// edge, plus a per-node heartbeat (edge = `usize::MAX`) so records survive
/// rounds in which a node has nothing to say.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageMsg {
    /// The edge the flag refers to (`usize::MAX` for heartbeats).
    pub edge: EdgeId,
    /// The sender of the message.
    pub sender: NodeId,
    /// Stage-specific flag (marked / selected / keep / in-F).
    pub flag: bool,
    /// The sender's working record, attached only to the self-addressed
    /// heartbeat so that the reducer has its own state available.
    pub record: Option<WorkRecord>,
}

impl_codec_struct!(StageMsg {
    edge,
    sender,
    flag,
    record
});

impl StageMsg {
    fn heartbeat(record: WorkRecord) -> (NodeId, StageMsg) {
        (
            record.node,
            StageMsg {
                edge: usize::MAX,
                sender: record.node,
                flag: false,
                record: Some(record),
            },
        )
    }
}

/// Result of one maximal b-matching computation.
#[derive(Debug, Clone, Default)]
pub struct MaximalResult {
    /// The edges of the maximal b-matching.
    pub edges: Vec<EdgeId>,
    /// Number of Garrido-style iterations executed.
    pub iterations: usize,
    /// Number of MapReduce jobs executed (four per iteration).
    pub jobs: usize,
    /// Metrics of every job in order.
    pub job_metrics: Vec<JobMetrics>,
    /// Largest on-disk inter-iteration state (zero in `InMemory` mode).
    pub max_round_state_bytes: u64,
}

/// Deterministic per-node RNG: the same `(seed, iteration, node)` triple
/// always produces the same stream, which makes the randomized algorithm
/// reproducible and independent of scheduling.
fn node_rng(seed: u64, iteration: u64, node: NodeId) -> StdRng {
    let node_code = match node {
        NodeId::Item(t) => (t.0 as u64) << 1,
        NodeId::Consumer(c) => ((c.0 as u64) << 1) | 1,
    };
    StdRng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ iteration.wrapping_mul(0xD1B5_4A32_D192_ED03)
            ^ node_code.wrapping_mul(0x94D0_49BB_1331_11EB),
    )
}

/// Picks `k` indices out of `candidates` according to the strategy.
fn pick_edges(
    strategy: MarkingStrategy,
    rng: &mut StdRng,
    candidates: &[(usize, f64)],
    k: usize,
) -> Vec<usize> {
    if k == 0 || candidates.is_empty() {
        return Vec::new();
    }
    let k = k.min(candidates.len());
    match strategy {
        MarkingStrategy::Random => {
            let mut idx: Vec<usize> = candidates.iter().map(|&(i, _)| i).collect();
            idx.shuffle(rng);
            idx.truncate(k);
            idx
        }
        MarkingStrategy::HeaviestFirst => {
            let mut ordered: Vec<(usize, f64)> = candidates.to_vec();
            ordered.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("edge weights are finite")
                    .then(a.0.cmp(&b.0))
            });
            ordered.into_iter().take(k).map(|(i, _)| i).collect()
        }
        MarkingStrategy::WeightProportional => {
            // Efraimidis–Spirakis weighted sampling without replacement:
            // key = u^(1/w), take the k largest keys.
            let mut keyed: Vec<(usize, f64)> = candidates
                .iter()
                .map(|&(i, w)| {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    (i, u.powf(1.0 / w.max(1e-12)))
                })
                .collect();
            keyed.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("keys are finite"));
            keyed.into_iter().take(k).map(|(i, _)| i).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Stage 1: marking
// ---------------------------------------------------------------------------

struct MarkMapper {
    strategy: MarkingStrategy,
    seed: u64,
    iteration: u64,
}

impl Mapper for MarkMapper {
    type InKey = NodeId;
    type InValue = WorkRecord;
    type OutKey = NodeId;
    type OutValue = StageMsg;

    fn map(&self, _node: &NodeId, record: &WorkRecord, out: &mut Emitter<NodeId, StageMsg>) {
        let mut rng = node_rng(self.seed, self.iteration, record.node);
        let to_mark = ((record.capacity as f64 / 2.0).ceil() as usize).max(1);
        let candidates: Vec<(usize, f64)> = record
            .edges
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.weight))
            .collect();
        let marked = pick_edges(self.strategy, &mut rng, &candidates, to_mark);
        let marked_set: Vec<bool> = {
            let mut v = vec![false; record.edges.len()];
            for i in marked {
                v[i] = true;
            }
            v
        };
        for (i, e) in record.edges.iter().enumerate() {
            out.emit(
                e.other,
                StageMsg {
                    edge: e.edge,
                    sender: record.node,
                    flag: marked_set[i],
                    record: None,
                },
            );
        }
        // Self heartbeat with own marks recorded in the attached record.
        let mut own = record.clone();
        for (i, e) in own.edges.iter_mut().enumerate() {
            e.marked_by_self = marked_set[i];
        }
        let (k, v) = StageMsg::heartbeat(own);
        out.emit(k, v);
    }
}

struct MarkReducer;

impl Reducer for MarkReducer {
    type Key = NodeId;
    type InValue = StageMsg;
    type OutKey = NodeId;
    type OutValue = WorkRecord;

    fn reduce(&self, node: &NodeId, msgs: &[StageMsg], out: &mut Emitter<NodeId, WorkRecord>) {
        let Some(mut record) = own_record(msgs) else {
            return;
        };
        let neighbour_flags = neighbour_flag_map(msgs, *node);
        for e in &mut record.edges {
            e.marked_by_other = neighbour_flags.get(&e.edge).copied().unwrap_or(false);
        }
        out.emit(*node, record);
    }
}

// ---------------------------------------------------------------------------
// Stage 2: selection
// ---------------------------------------------------------------------------

struct SelectMapper {
    seed: u64,
    iteration: u64,
}

impl Mapper for SelectMapper {
    type InKey = NodeId;
    type InValue = WorkRecord;
    type OutKey = NodeId;
    type OutValue = StageMsg;

    fn map(&self, _node: &NodeId, record: &WorkRecord, out: &mut Emitter<NodeId, StageMsg>) {
        let mut rng = node_rng(
            self.seed,
            self.iteration.wrapping_add(0x5e1ec7),
            record.node,
        );
        let quota = ((record.capacity / 2) as usize).max(1);
        let candidates: Vec<(usize, f64)> = record
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.marked_by_other)
            .map(|(i, e)| (i, e.weight))
            .collect();
        // The selection stage of Garrido et al. picks uniformly at random
        // among the neighbour-marked edges regardless of the marking
        // strategy.
        let selected = pick_edges(MarkingStrategy::Random, &mut rng, &candidates, quota);
        let selected_set: Vec<bool> = {
            let mut v = vec![false; record.edges.len()];
            for i in selected {
                v[i] = true;
            }
            v
        };
        for (i, e) in record.edges.iter().enumerate() {
            out.emit(
                e.other,
                StageMsg {
                    edge: e.edge,
                    sender: record.node,
                    flag: selected_set[i],
                    record: None,
                },
            );
        }
        let mut own = record.clone();
        for (i, e) in own.edges.iter_mut().enumerate() {
            // An edge enters F if this node selected it (it was marked by
            // the neighbour); the neighbour's selections arrive as messages.
            e.in_f = selected_set[i];
        }
        let (k, v) = StageMsg::heartbeat(own);
        out.emit(k, v);
    }
}

struct SelectReducer;

impl Reducer for SelectReducer {
    type Key = NodeId;
    type InValue = StageMsg;
    type OutKey = NodeId;
    type OutValue = WorkRecord;

    fn reduce(&self, node: &NodeId, msgs: &[StageMsg], out: &mut Emitter<NodeId, WorkRecord>) {
        let Some(mut record) = own_record(msgs) else {
            return;
        };
        let neighbour_flags = neighbour_flag_map(msgs, *node);
        for e in &mut record.edges {
            let selected_by_other = neighbour_flags.get(&e.edge).copied().unwrap_or(false);
            e.in_f = e.in_f || selected_by_other;
        }
        out.emit(*node, record);
    }
}

// ---------------------------------------------------------------------------
// Stage 3: matching (capacity-1 conflict resolution)
// ---------------------------------------------------------------------------

struct MatchFixMapper {
    seed: u64,
    iteration: u64,
}

impl Mapper for MatchFixMapper {
    type InKey = NodeId;
    type InValue = WorkRecord;
    type OutKey = NodeId;
    type OutValue = StageMsg;

    fn map(&self, _node: &NodeId, record: &WorkRecord, out: &mut Emitter<NodeId, StageMsg>) {
        let mut rng = node_rng(
            self.seed,
            self.iteration.wrapping_add(0xf1f1f1),
            record.node,
        );
        let f_indices: Vec<usize> = record
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.in_f)
            .map(|(i, _)| i)
            .collect();
        // A node of capacity 1 may keep only one F edge; it drops the rest.
        let mut dropped = vec![false; record.edges.len()];
        if record.capacity == 1 && f_indices.len() > 1 {
            let keep = f_indices[rng.gen_range(0..f_indices.len())];
            for &i in &f_indices {
                if i != keep {
                    dropped[i] = true;
                }
            }
        }
        for (i, e) in record.edges.iter().enumerate() {
            if e.in_f {
                out.emit(
                    e.other,
                    StageMsg {
                        edge: e.edge,
                        sender: record.node,
                        flag: dropped[i],
                        record: None,
                    },
                );
            }
        }
        let mut own = record.clone();
        for (i, e) in own.edges.iter_mut().enumerate() {
            if dropped[i] {
                e.in_f = false;
            }
        }
        let (k, v) = StageMsg::heartbeat(own);
        out.emit(k, v);
    }
}

struct MatchFixReducer;

impl Reducer for MatchFixReducer {
    type Key = NodeId;
    type InValue = StageMsg;
    type OutKey = NodeId;
    type OutValue = WorkRecord;

    fn reduce(&self, node: &NodeId, msgs: &[StageMsg], out: &mut Emitter<NodeId, WorkRecord>) {
        let Some(mut record) = own_record(msgs) else {
            return;
        };
        // flag == true means "the sender dropped this edge from F".
        let neighbour_drops = neighbour_flag_map(msgs, *node);
        for e in &mut record.edges {
            if neighbour_drops.get(&e.edge).copied().unwrap_or(false) {
                e.in_f = false;
            }
        }
        out.emit(*node, record);
    }
}

// ---------------------------------------------------------------------------
// Stage 4: cleanup
// ---------------------------------------------------------------------------

struct CleanupMapper;

impl Mapper for CleanupMapper {
    type InKey = NodeId;
    type InValue = WorkRecord;
    type OutKey = NodeId;
    type OutValue = StageMsg;

    fn map(&self, _node: &NodeId, record: &WorkRecord, out: &mut Emitter<NodeId, StageMsg>) {
        let matched = record.edges.iter().filter(|e| e.in_f).count() as u64;
        let new_capacity = record.capacity.saturating_sub(matched);
        for e in &record.edges {
            // flag == true means "this edge survives at my end": it is not
            // in F and I am not saturated after this iteration.
            let survives = !e.in_f && new_capacity > 0;
            out.emit(
                e.other,
                StageMsg {
                    edge: e.edge,
                    sender: record.node,
                    flag: survives,
                    record: None,
                },
            );
        }
        let (k, v) = StageMsg::heartbeat(record.clone());
        out.emit(k, v);
    }
}

/// The cleanup reducer's output: the updated working record plus the edges
/// this node saw entering the matching this iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CleanupOutput {
    /// Updated working record (possibly with an empty edge list).
    pub record: WorkRecord,
    /// Edges added to the maximal matching this iteration.
    pub matched: Vec<EdgeId>,
}

impl_codec_struct!(CleanupOutput { record, matched });

struct CleanupReducer;

impl Reducer for CleanupReducer {
    type Key = NodeId;
    type InValue = StageMsg;
    type OutKey = NodeId;
    type OutValue = CleanupOutput;

    fn reduce(&self, node: &NodeId, msgs: &[StageMsg], out: &mut Emitter<NodeId, CleanupOutput>) {
        let Some(record) = own_record(msgs) else {
            return;
        };
        let neighbour_survives = neighbour_flag_map(msgs, *node);
        let matched: Vec<EdgeId> = record
            .edges
            .iter()
            .filter(|e| e.in_f)
            .map(|e| e.edge)
            .collect();
        let new_capacity = record.capacity.saturating_sub(matched.len() as u64);
        let surviving_edges: Vec<WorkEdge> = if new_capacity == 0 {
            Vec::new()
        } else {
            record
                .edges
                .iter()
                .filter(|e| !e.in_f && neighbour_survives.get(&e.edge).copied().unwrap_or(false))
                .map(|e| WorkEdge {
                    marked_by_self: false,
                    marked_by_other: false,
                    in_f: false,
                    ..*e
                })
                .collect()
        };
        out.emit(
            *node,
            CleanupOutput {
                record: WorkRecord {
                    node: *node,
                    capacity: new_capacity,
                    edges: surviving_edges,
                },
                matched,
            },
        );
    }
}

// ---------------------------------------------------------------------------
// Shared reducer helpers
// ---------------------------------------------------------------------------

/// Extracts the node's own record from the heartbeat message.
fn own_record(msgs: &[StageMsg]) -> Option<WorkRecord> {
    msgs.iter().find_map(|m| m.record.clone())
}

/// Builds an edge → flag map from the neighbours' messages.
fn neighbour_flag_map(msgs: &[StageMsg], node: NodeId) -> HashMap<EdgeId, bool> {
    let mut map = HashMap::new();
    for m in msgs {
        if m.sender != node && m.edge != usize::MAX {
            // If both endpoints somehow message about the same edge the
            // flag is OR-ed, which is the conservative choice for every
            // stage that uses it.
            let entry = map.entry(m.edge).or_insert(false);
            *entry = *entry || m.flag;
        }
    }
    map
}

// ---------------------------------------------------------------------------
// The matcher driver
// ---------------------------------------------------------------------------

/// Computes maximal b-matchings with the four-stage MapReduce algorithm.
#[derive(Debug, Clone)]
pub struct MaximalMatcher {
    /// Edge-selection strategy of the marking stage.
    pub strategy: MarkingStrategy,
    /// Seed for the per-node pseudo-random generators.
    pub seed: u64,
    /// MapReduce job configuration for every stage job.
    pub job: JobConfig,
    /// Safety bound on the number of iterations.
    pub max_iterations: usize,
    /// Where the working records live between Garrido iterations
    /// (disk-backed in the flow's side store by default).
    pub round_state: RoundStateMode,
}

impl MaximalMatcher {
    /// Creates a matcher.
    pub fn new(strategy: MarkingStrategy, seed: u64, job: JobConfig) -> Self {
        MaximalMatcher {
            strategy,
            seed,
            job,
            max_iterations: 10_000,
            round_state: RoundStateMode::default(),
        }
    }

    /// Computes a maximal b-matching of the subgraph described by
    /// `records` (node, capacity `c(v)`, live adjacency), with every
    /// iteration's four stage jobs chained through `flow` — one lazy
    /// `Dataset` chain per iteration (mark → select → match → cleanup),
    /// records moving between the stages by value.  Between iterations
    /// the working records live in a [`RoundState`] (disk-backed by
    /// default), with finished nodes retired via tombstones.
    /// `stage_prefix` namespaces the job names when the matcher runs
    /// inside a larger flow (StackMR passes `maximal-{push_round}`); an
    /// empty prefix names jobs `{flow}-mark-{i}` etc.
    pub fn compute(
        &self,
        records: &[(NodeId, NodeRecord)],
        flow: &FlowContext,
        stage_prefix: &str,
    ) -> MaximalResult {
        let stage = |name: &str, iteration: u64| -> String {
            if stage_prefix.is_empty() {
                format!("{name}-{iteration}")
            } else {
                format!("{stage_prefix}-{name}-{iteration}")
            }
        };

        let mut state: RoundState<NodeId, CleanupOutput> =
            flow.round_state("maximal-work", self.round_state);
        state.seed(
            records
                .iter()
                .filter(|(_, r)| !r.adjacency.is_empty() && r.capacity > 0)
                .map(|(n, r)| {
                    (
                        *n,
                        CleanupOutput {
                            record: WorkRecord {
                                node: r.node,
                                capacity: r.capacity,
                                edges: r.adjacency.iter().map(WorkEdge::from_adj).collect(),
                            },
                            matched: Vec::new(),
                        },
                    )
                })
                .collect(),
        );

        let jobs_start = flow.num_jobs();
        let mut result = MaximalResult::default();
        while !state.is_empty() && result.iterations < self.max_iterations {
            let iteration = result.iterations as u64;
            // One Garrido iteration = one four-job chain.
            let cleaned = state
                .dataset_with(|node, out| (node, out.record))
                .map_with(MarkMapper {
                    strategy: self.strategy,
                    seed: self.seed,
                    iteration,
                })
                .named(stage("mark", iteration))
                .reduce_with(MarkReducer)
                .map_with(SelectMapper {
                    seed: self.seed,
                    iteration,
                })
                .named(stage("select", iteration))
                .reduce_with(SelectReducer)
                .map_with(MatchFixMapper {
                    seed: self.seed,
                    iteration,
                })
                .named(stage("match", iteration))
                .reduce_with(MatchFixReducer)
                .map_with(CleanupMapper)
                .named(stage("cleanup", iteration))
                .reduce_with(CleanupReducer)
                .collect();

            result.jobs += 4;
            result.iterations += 1;

            // Matched edges land in the result; saturated and edgeless
            // nodes are retired from the next iteration's input.
            let edges = &mut result.edges;
            state.absorb(cleaned, |_, output| {
                edges.extend(output.matched.iter().copied());
                !output.record.edges.is_empty() && output.record.capacity > 0
            });
        }
        result.job_metrics = flow.jobs_from(jobs_start);
        result.max_round_state_bytes = state.max_state_bytes();
        result.edges.sort_unstable();
        result.edges.dedup();
        result
    }
}

/// A simple centralized maximal b-matching (greedy scan) used as a
/// reference in tests: scan the live edges in id order and keep an edge
/// whenever both endpoints still have residual capacity.
pub fn maximal_b_matching_centralized(records: &[(NodeId, NodeRecord)]) -> Vec<EdgeId> {
    let mut residual: HashMap<NodeId, u64> =
        records.iter().map(|(n, r)| (*n, r.capacity)).collect();
    // Gather every live edge exactly once (it appears in both endpoint
    // records).
    let mut edges: Vec<(EdgeId, NodeId, NodeId)> = Vec::new();
    for (node, record) in records {
        for adj in &record.adjacency {
            if *node < adj.other {
                edges.push((adj.edge, *node, adj.other));
            }
        }
    }
    edges.sort_unstable_by_key(|(e, _, _)| *e);
    let mut matched = Vec::new();
    for (e, u, v) in edges {
        let ru = residual.get(&u).copied().unwrap_or(0);
        let rv = residual.get(&v).copied().unwrap_or(0);
        if ru > 0 && rv > 0 {
            residual.insert(u, ru - 1);
            residual.insert(v, rv - 1);
            matched.push(e);
        }
    }
    matched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::build_node_records;
    use smr_graph::{BipartiteGraph, Capacities, ConsumerId, Edge, ItemId, Matching};

    fn grid_graph(items: usize, consumers: usize) -> BipartiteGraph {
        let mut edges = Vec::new();
        let mut w = 0.11_f64;
        for t in 0..items {
            for c in 0..consumers {
                if (t + c) % 2 == 0 {
                    w = (w * 31.7 + 0.7).fract().max(0.05);
                    edges.push(Edge::new(ItemId(t as u32), ConsumerId(c as u32), w));
                }
            }
        }
        BipartiteGraph::from_edges(items, consumers, edges)
    }

    /// Maximality check: every live edge must have at least one saturated
    /// endpoint, and no node may exceed its capacity.
    fn assert_maximal(graph: &BipartiteGraph, caps: &Capacities, matched_edges: &[EdgeId]) {
        let matching = Matching::from_edges(graph.num_edges(), matched_edges.iter().copied());
        for v in graph.nodes() {
            assert!(
                matching.degree(graph, v) as u64 <= caps.of(v),
                "node {v} exceeds its capacity"
            );
        }
        for e in 0..graph.num_edges() {
            if matching.contains(e) {
                continue;
            }
            let edge = graph.edge(e);
            let item_full =
                matching.degree(graph, NodeId::Item(edge.item)) as u64 >= caps.item(edge.item);
            let consumer_full = matching.degree(graph, NodeId::Consumer(edge.consumer)) as u64
                >= caps.consumer(edge.consumer);
            assert!(
                item_full || consumer_full,
                "edge {e} could still be added: the matching is not maximal"
            );
        }
    }

    fn matcher(strategy: MarkingStrategy, seed: u64) -> MaximalMatcher {
        MaximalMatcher::new(
            strategy,
            seed,
            JobConfig::named("maximal-test").with_threads(2),
        )
    }

    /// Test helper: run under a throwaway flow built from the matcher's job.
    fn compute(m: &MaximalMatcher, records: &[(NodeId, NodeRecord)]) -> MaximalResult {
        let flow = FlowContext::new(m.job.clone());
        m.compute(records, &flow, "")
    }

    #[test]
    fn produces_a_maximal_matching_with_unit_capacities() {
        let g = grid_graph(6, 6);
        let caps = Capacities::uniform(&g, 1, 1);
        let records = build_node_records(&g, &caps);
        let result = compute(&matcher(MarkingStrategy::Random, 1), &records);
        assert_maximal(&g, &caps, &result.edges);
        assert!(result.iterations >= 1);
        assert_eq!(result.jobs, result.iterations * 4);
    }

    #[test]
    fn produces_a_maximal_matching_with_larger_capacities() {
        let g = grid_graph(5, 7);
        let caps = Capacities::uniform(&g, 3, 2);
        let records = build_node_records(&g, &caps);
        let result = compute(&matcher(MarkingStrategy::Random, 7), &records);
        assert_maximal(&g, &caps, &result.edges);
    }

    #[test]
    fn heaviest_first_marking_also_yields_maximal_matchings() {
        let g = grid_graph(6, 5);
        let caps = Capacities::uniform(&g, 2, 2);
        let records = build_node_records(&g, &caps);
        let result = compute(&matcher(MarkingStrategy::HeaviestFirst, 3), &records);
        assert_maximal(&g, &caps, &result.edges);
    }

    #[test]
    fn weight_proportional_marking_also_yields_maximal_matchings() {
        let g = grid_graph(4, 6);
        let caps = Capacities::uniform(&g, 2, 1);
        let records = build_node_records(&g, &caps);
        let result = compute(&matcher(MarkingStrategy::WeightProportional, 11), &records);
        assert_maximal(&g, &caps, &result.edges);
    }

    #[test]
    fn runs_are_reproducible_for_a_fixed_seed() {
        let g = grid_graph(6, 6);
        let caps = Capacities::uniform(&g, 2, 2);
        let records = build_node_records(&g, &caps);
        let a = compute(&matcher(MarkingStrategy::Random, 99), &records);
        let b = compute(&matcher(MarkingStrategy::Random, 99), &records);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.iterations, b.iterations);
        let c = compute(&matcher(MarkingStrategy::Random, 100), &records);
        // A different seed is allowed to (and almost surely does) produce a
        // different maximal matching, but both must be maximal.
        assert_maximal(&g, &caps, &c.edges);
    }

    #[test]
    fn empty_input_terminates_immediately() {
        let result = compute(&matcher(MarkingStrategy::Random, 0), &[]);
        assert!(result.edges.is_empty());
        assert_eq!(result.iterations, 0);
        assert_eq!(result.jobs, 0);
    }

    #[test]
    fn centralized_reference_is_maximal_too() {
        let g = grid_graph(6, 6);
        let caps = Capacities::uniform(&g, 2, 2);
        let records = build_node_records(&g, &caps);
        let edges = maximal_b_matching_centralized(&records);
        assert_maximal(&g, &caps, &edges);
    }

    #[test]
    fn pick_edges_respects_the_quota_for_every_strategy() {
        let mut rng = node_rng(1, 2, NodeId::item(3));
        let candidates: Vec<(usize, f64)> = (0..10).map(|i| (i, (i + 1) as f64)).collect();
        for strategy in [
            MarkingStrategy::Random,
            MarkingStrategy::HeaviestFirst,
            MarkingStrategy::WeightProportional,
        ] {
            let picked = pick_edges(strategy, &mut rng, &candidates, 4);
            assert_eq!(picked.len(), 4, "{strategy:?}");
            let picked_all = pick_edges(strategy, &mut rng, &candidates, 100);
            assert_eq!(picked_all.len(), 10, "{strategy:?}");
            assert!(pick_edges(strategy, &mut rng, &candidates, 0).is_empty());
            assert!(pick_edges(strategy, &mut rng, &[], 3).is_empty());
        }
    }

    #[test]
    fn heaviest_first_picks_the_heaviest_edges() {
        let mut rng = node_rng(5, 5, NodeId::consumer(1));
        let candidates = vec![(0, 1.0), (1, 5.0), (2, 3.0)];
        let picked = pick_edges(MarkingStrategy::HeaviestFirst, &mut rng, &candidates, 2);
        assert_eq!(picked, vec![1, 2]);
    }

    #[test]
    fn node_rng_is_deterministic_and_node_dependent() {
        let a: u64 = node_rng(1, 2, NodeId::item(3)).gen();
        let b: u64 = node_rng(1, 2, NodeId::item(3)).gen();
        let c: u64 = node_rng(1, 2, NodeId::consumer(3)).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
