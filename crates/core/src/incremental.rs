//! Incremental b-matching assignment: the serving-time companion to the
//! batch algorithms.
//!
//! The batch algorithms ([`GreedyMr`][crate::GreedyMr], centralized
//! [`greedy_matching`][crate::greedy_matching]) see the whole candidate
//! graph at once.  At serving time items arrive one at a time (or in
//! micro-batches) with their candidate edges — found by a point query
//! against the standing similarity index — and the assignment must be
//! updated without re-running the batch job.
//!
//! [`IncrementalMatcher`] maintains the b-matching invariants online, in
//! the *free-disposal* model: every consumer holds at most `b(c)` assigned
//! edges at all times, and when a new edge meets a saturated consumer it
//! may *preempt* the lightest currently-assigned edge there — but only
//! when strictly heavier, so churn never trades weight away.  Preempted
//! items get their capacity back (they may still be assigned elsewhere by
//! later arrivals at shared consumers), and a dropped edge is simply
//! forgone, which is exactly the free-disposal assumption of online ad
//! allocation; greedy-with-preemption is ½-competitive there, the same
//! guarantee envelope as the batch greedy's ½-approximation.
//!
//! **Replay equivalence.**  Edges are offered heaviest-first with the
//! batch tie order (weight descending, then `(item, consumer)` ascending).
//! Feeding the entire candidate graph to [`IncrementalMatcher::arrive_batch`]
//! as one batch therefore offers edges in exactly the centralized greedy
//! order, preemption never fires (every earlier edge at a consumer is at
//! least as heavy), and the result *equals*
//! [`greedy_matching`][crate::greedy_matching] — locked by tests below.
//! Arrival-by-arrival replay of the same graph stays within the shared
//! ½ envelope, locked against [`GreedyMr`][crate::GreedyMr].

use smr_graph::Capacities;

/// One edge currently held by a consumer.
#[derive(Debug, Clone, Copy)]
struct Assigned {
    item: usize,
    weight: f64,
    /// Arrival sequence number: among equally-light victims the most
    /// recent is preempted first, so earlier assignments are sticky —
    /// the online analogue of greedy's lowest-edge-id-wins tie break.
    seq: u64,
}

/// An online b-matching under item and consumer capacities, updated as
/// items arrive with their candidate edges.
///
/// See the [module docs][self] for the preemption rule and the guarantee.
#[derive(Debug, Clone, Default)]
pub struct IncrementalMatcher {
    item_residual: Vec<u64>,
    consumer_residual: Vec<u64>,
    /// Edges currently assigned, grouped by consumer (each inner vec holds
    /// at most the consumer's capacity).
    per_consumer: Vec<Vec<Assigned>>,
    len: usize,
    total_weight: f64,
    preemptions: u64,
    seq: u64,
}

impl IncrementalMatcher {
    /// An empty matcher over the given per-node capacities.
    pub fn new(item_capacities: Vec<u64>, consumer_capacities: Vec<u64>) -> Self {
        let per_consumer = consumer_capacities.iter().map(|_| Vec::new()).collect();
        IncrementalMatcher {
            item_residual: item_capacities,
            consumer_residual: consumer_capacities,
            per_consumer,
            ..IncrementalMatcher::default()
        }
    }

    /// An empty matcher sized for the same node sets as `caps` (the
    /// starting point for replaying a batch instance incrementally).
    pub fn from_capacities(caps: &Capacities) -> Self {
        Self::new(
            caps.item_capacities().to_vec(),
            caps.consumer_capacities().to_vec(),
        )
    }

    /// Registers a new item (e.g. a piece of content entering the system),
    /// returning its dense index.
    pub fn add_item(&mut self, capacity: u64) -> usize {
        self.item_residual.push(capacity);
        self.item_residual.len() - 1
    }

    /// Registers a new consumer, returning its dense index.
    pub fn add_consumer(&mut self, capacity: u64) -> usize {
        self.consumer_residual.push(capacity);
        self.per_consumer.push(Vec::new());
        self.consumer_residual.len() - 1
    }

    /// Offers one edge to the matching.  Returns `true` if the edge is now
    /// assigned (possibly after preempting a strictly lighter edge at a
    /// saturated consumer), `false` if it was rejected.
    ///
    /// # Panics
    /// Panics if either endpoint is unregistered or the weight is not
    /// finite.
    pub fn offer(&mut self, item: usize, consumer: usize, weight: f64) -> bool {
        assert!(weight.is_finite(), "edge weights must be finite");
        assert!(item < self.item_residual.len(), "unregistered item {item}");
        assert!(
            consumer < self.consumer_residual.len(),
            "unregistered consumer {consumer}"
        );
        if self.item_residual[item] == 0 {
            return false;
        }
        if self.consumer_residual[consumer] > 0 {
            self.consumer_residual[consumer] -= 1;
            self.accept(item, consumer, weight);
            return true;
        }
        // Consumer saturated: preempt its lightest edge, but only for a
        // strictly heavier arrival.
        let Some(slot) = self.lightest_slot(consumer) else {
            return false; // zero-capacity consumer
        };
        if weight <= self.per_consumer[consumer][slot].weight {
            return false;
        }
        self.evict(consumer, slot);
        self.preemptions += 1;
        self.accept(item, consumer, weight);
        true
    }

    /// The slot of the consumer's lightest held edge (ties: latest arrival
    /// first) — the victim order of preemption and capacity shrinking.
    fn lightest_slot(&self, consumer: usize) -> Option<usize> {
        self.per_consumer[consumer]
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.weight
                    .partial_cmp(&b.weight)
                    .expect("assigned weights are finite")
                    .then(b.seq.cmp(&a.seq))
            })
            .map(|(slot, _)| slot)
    }

    /// Removes the edge in `slot` at `consumer`, restoring the item's
    /// capacity (but **not** the consumer's residual — callers decide what
    /// the freed slot becomes).  Returns the freed item.
    fn evict(&mut self, consumer: usize, slot: usize) -> usize {
        let evicted = self.per_consumer[consumer].swap_remove(slot);
        self.item_residual[evicted.item] += 1;
        self.total_weight -= evicted.weight;
        self.len -= 1;
        evicted.item
    }

    fn accept(&mut self, item: usize, consumer: usize, weight: f64) {
        self.item_residual[item] -= 1;
        self.per_consumer[consumer].push(Assigned {
            item,
            weight,
            seq: self.seq,
        });
        self.seq += 1;
        self.total_weight += weight;
        self.len += 1;
    }

    /// One item arrives with its candidate edges (`(consumer, weight)`
    /// pairs, e.g. a serving-index point query result).  Edges are offered
    /// heaviest first (ties toward the lower consumer index) until the
    /// item's capacity is filled; returns the consumers the item was
    /// assigned to (later arrivals may still preempt them).
    pub fn arrive(&mut self, item: usize, candidates: &[(usize, f64)]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by(|&a, &b| {
            candidates[b]
                .1
                .partial_cmp(&candidates[a].1)
                .expect("edge weights are finite")
                .then(candidates[a].0.cmp(&candidates[b].0))
        });
        order
            .into_iter()
            .filter(|&i| self.offer(item, candidates[i].0, candidates[i].1))
            .map(|i| candidates[i].0)
            .collect()
    }

    /// A micro-batch of edges arrives at once.  The batch is offered in
    /// the batch-greedy order — weight descending, ties by `(item,
    /// consumer)` ascending — so feeding the whole candidate graph as one
    /// batch reproduces [`greedy_matching`][crate::greedy_matching]
    /// exactly.  Returns how many edges were assigned.
    pub fn arrive_batch(&mut self, edges: &[(usize, usize, f64)]) -> usize {
        let mut order: Vec<usize> = (0..edges.len()).collect();
        order.sort_by(|&a, &b| {
            edges[b]
                .2
                .partial_cmp(&edges[a].2)
                .expect("edge weights are finite")
                .then((edges[a].0, edges[a].1).cmp(&(edges[b].0, edges[b].1)))
        });
        order
            .into_iter()
            .filter(|&i| self.offer(edges[i].0, edges[i].1, edges[i].2))
            .count()
    }

    /// The consumer leaves the system: every edge it holds is released —
    /// the items get their capacity back, so later arrivals (or re-offers
    /// of the freed items' edges) can assign them elsewhere — and the
    /// consumer's capacity drops to zero, rejecting all future offers.
    /// Returns the freed items, ascending.
    ///
    /// # Panics
    /// Panics if the consumer is unregistered.
    pub fn depart(&mut self, consumer: usize) -> Vec<usize> {
        assert!(
            consumer < self.consumer_residual.len(),
            "unregistered consumer {consumer}"
        );
        self.consumer_residual[consumer] = 0;
        let mut freed = Vec::new();
        while !self.per_consumer[consumer].is_empty() {
            freed.push(self.evict(consumer, 0));
        }
        freed.sort_unstable();
        freed
    }

    /// Re-sizes a consumer's capacity to `b` (its *total* capacity: held
    /// edges plus residual).  Raising it frees residual for future offers;
    /// lowering it first absorbs unused residual and then, when the
    /// consumer still holds more than `b` edges, evicts the lightest held
    /// edges (ties: latest arrival first, the preemption victim order),
    /// restoring the evicted items' capacity.  Returns the evicted items
    /// in eviction order (empty when nothing had to go).
    ///
    /// # Panics
    /// Panics if the consumer is unregistered.
    pub fn set_capacity(&mut self, consumer: usize, b: u64) -> Vec<usize> {
        assert!(
            consumer < self.consumer_residual.len(),
            "unregistered consumer {consumer}"
        );
        let held = self.per_consumer[consumer].len() as u64;
        if b >= held {
            self.consumer_residual[consumer] = b - held;
            return Vec::new();
        }
        self.consumer_residual[consumer] = 0;
        let mut evicted = Vec::new();
        while self.per_consumer[consumer].len() as u64 > b {
            let slot = self
                .lightest_slot(consumer)
                .expect("shrinking a non-empty hold");
            evicted.push(self.evict(consumer, slot));
        }
        evicted
    }

    /// The current assignment as `(item, consumer, weight)` triples,
    /// sorted by `(item, consumer)`.
    pub fn assignment(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(self.len);
        for (consumer, held) in self.per_consumer.iter().enumerate() {
            for edge in held {
                out.push((edge.item, consumer, edge.weight));
            }
        }
        out.sort_by_key(|&(item, consumer, _)| (item, consumer));
        out
    }

    /// Total weight of the current assignment.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Number of edges currently assigned.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no edge is currently assigned.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// How many assignments have been preempted by heavier arrivals.
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// The item's remaining capacity.
    pub fn item_residual(&self, item: usize) -> u64 {
        self.item_residual[item]
    }

    /// The consumer's remaining capacity.
    pub fn consumer_residual(&self, consumer: usize) -> u64 {
        self.consumer_residual[consumer]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GreedyMrConfig;
    use crate::greedy::greedy_matching;
    use crate::greedy_mr::GreedyMr;
    use smr_graph::{BipartiteGraph, ConsumerId, Edge, ItemId};
    use smr_mapreduce::{FlowContext, JobConfig};

    /// A deterministic pseudo-random bipartite instance with deliberate
    /// weight ties, edges listed in `(item, consumer)` order so edge ids
    /// follow the incremental tie order.
    fn lcg_instance(
        items: usize,
        consumers: usize,
        seed: u64,
    ) -> (BipartiteGraph, Capacities, Vec<(usize, usize, f64)>) {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut edges = Vec::new();
        let mut triples = Vec::new();
        for t in 0..items {
            for c in 0..consumers {
                if next() % 100 < 40 {
                    // Coarse weights on purpose: ties are common.
                    let weight = f64::from(next() % 8 + 1) / 8.0;
                    edges.push(Edge::new(ItemId(t as u32), ConsumerId(c as u32), weight));
                    triples.push((t, c, weight));
                }
            }
        }
        let graph = BipartiteGraph::from_edges(items, consumers, edges);
        let item_caps = (0..items).map(|t| 1 + (t as u64 % 3)).collect();
        let consumer_caps = (0..consumers).map(|c| 1 + (c as u64 % 2)).collect();
        (
            graph,
            Capacities::from_vectors(item_caps, consumer_caps),
            triples,
        )
    }

    fn matching_triples(
        graph: &BipartiteGraph,
        matching: &smr_graph::Matching,
    ) -> Vec<(usize, usize, f64)> {
        let mut out: Vec<(usize, usize, f64)> = matching
            .to_edge_vec()
            .into_iter()
            .map(|e| {
                let edge = graph.edge(e);
                (edge.item.index(), edge.consumer.index(), edge.weight)
            })
            .collect();
        out.sort_by_key(|&(item, consumer, _)| (item, consumer));
        out
    }

    #[test]
    fn whole_graph_as_one_batch_equals_centralized_greedy() {
        for seed in [3, 7, 42] {
            let (graph, caps, triples) = lcg_instance(12, 9, seed);
            let batch = greedy_matching(&graph, &caps);

            let mut inc = IncrementalMatcher::from_capacities(&caps);
            inc.arrive_batch(&triples);
            assert_eq!(
                inc.assignment(),
                matching_triples(&graph, &batch),
                "seed {seed}"
            );
            assert_eq!(inc.preemptions(), 0, "descending offers never preempt");
            assert!((inc.total_weight() - batch.value(&graph)).abs() < 1e-9);
        }
    }

    #[test]
    fn arrival_by_arrival_replay_stays_in_the_greedy_envelope() {
        for seed in [5, 11] {
            let (graph, caps, triples) = lcg_instance(14, 8, seed);
            let flow = FlowContext::new(JobConfig::named("inc-envelope").with_threads(2));
            let batch = GreedyMr::new(GreedyMrConfig::default()).run(&graph, &caps, &flow);
            let batch_value = batch.matching.value(&graph);

            let mut inc = IncrementalMatcher::from_capacities(&caps);
            for t in 0..graph.num_items() {
                let candidates: Vec<(usize, f64)> = triples
                    .iter()
                    .filter(|(item, _, _)| *item == t)
                    .map(|&(_, c, w)| (c, w))
                    .collect();
                inc.arrive(t, &candidates);
            }

            // Feasibility invariants hold throughout (checked at the end:
            // residuals never went negative because they are unsigned and
            // every accept decrements through them).
            for (c, held) in inc.per_consumer.iter().enumerate() {
                assert!(held.len() as u64 <= caps.consumer_capacities()[c]);
            }
            let mut item_degree = vec![0u64; graph.num_items()];
            for (t, _, _) in inc.assignment() {
                item_degree[t] += 1;
            }
            for (t, d) in item_degree.iter().enumerate() {
                assert!(*d <= caps.item_capacities()[t]);
            }

            // The shared ½ guarantee envelope: the online value is at
            // least half of what the batch algorithm achieves.
            assert!(
                inc.total_weight() >= 0.5 * batch_value - 1e-9,
                "seed {seed}: online {} vs batch {batch_value}",
                inc.total_weight()
            );
        }
    }

    #[test]
    fn heavier_arrivals_preempt_saturated_consumers() {
        let mut inc = IncrementalMatcher::new(vec![1, 1, 1], vec![1]);
        assert!(inc.offer(0, 0, 0.5));
        assert!(!inc.offer(1, 0, 0.5), "equal weight never preempts");
        assert!(inc.offer(2, 0, 0.9), "strictly heavier preempts");
        assert_eq!(inc.assignment(), vec![(2, 0, 0.9)]);
        assert_eq!(inc.preemptions(), 1);
        assert_eq!(inc.item_residual(0), 1, "preempted item gets capacity back");
        assert_eq!(inc.consumer_residual(0), 0);
        assert!((inc.total_weight() - 0.9).abs() < 1e-12);
        assert_eq!(inc.len(), 1);
    }

    #[test]
    fn arrivals_respect_item_capacity_and_prefer_heavy_edges() {
        let mut inc = IncrementalMatcher::new(vec![2], vec![1, 1, 1]);
        let assigned = inc.arrive(0, &[(0, 0.2), (1, 0.8), (2, 0.5)]);
        assert_eq!(assigned, vec![1, 2], "heaviest edges first");
        assert_eq!(inc.assignment(), vec![(0, 1, 0.8), (0, 2, 0.5)]);
        assert_eq!(inc.item_residual(0), 0);
    }

    #[test]
    fn zero_capacity_consumers_never_match() {
        let mut inc = IncrementalMatcher::new(vec![1], vec![0]);
        assert!(!inc.offer(0, 0, 1.0));
        assert!(inc.is_empty());
    }

    #[test]
    fn departure_frees_item_capacity_for_re_offers() {
        let mut inc = IncrementalMatcher::new(vec![1, 1], vec![2, 1]);
        assert!(inc.offer(0, 0, 0.8));
        assert!(inc.offer(1, 0, 0.6));
        assert!(
            !inc.offer(0, 1, 0.9),
            "item 0's capacity is spent while consumer 0 holds it"
        );

        let freed = inc.depart(0);
        assert_eq!(freed, vec![0, 1], "both held items are released");
        assert!(inc.is_empty());
        assert!((inc.total_weight() - 0.0).abs() < 1e-12);
        assert_eq!(inc.item_residual(0), 1);
        assert_eq!(inc.item_residual(1), 1);
        assert_eq!(inc.consumer_residual(0), 0, "a departed consumer is closed");

        // The freed capacity is immediately usable elsewhere...
        assert!(inc.offer(0, 1, 0.9), "freed item re-assigns to consumer 1");
        assert_eq!(inc.assignment(), vec![(0, 1, 0.9)]);
        // ...but the departed consumer rejects everything.
        assert!(!inc.offer(1, 0, 1.0));
        assert_eq!(inc.preemptions(), 0, "departure is not preemption");
    }

    #[test]
    fn raising_capacity_admits_previously_rejected_offers() {
        let mut inc = IncrementalMatcher::new(vec![1, 1], vec![1]);
        assert!(inc.offer(0, 0, 0.7));
        assert!(!inc.offer(1, 0, 0.5), "saturated and lighter: rejected");

        assert_eq!(inc.set_capacity(0, 2), Vec::<usize>::new());
        assert_eq!(inc.consumer_residual(0), 1);
        assert!(inc.offer(1, 0, 0.5), "the new slot admits the offer");
        assert_eq!(inc.assignment(), vec![(0, 0, 0.7), (1, 0, 0.5)]);
    }

    #[test]
    fn lowering_capacity_evicts_lightest_first_and_frees_the_items() {
        let mut inc = IncrementalMatcher::new(vec![1, 1, 1, 1], vec![3, 1]);
        assert!(inc.offer(0, 0, 0.9));
        assert!(inc.offer(1, 0, 0.3));
        assert!(inc.offer(2, 0, 0.6));

        let evicted = inc.set_capacity(0, 1);
        assert_eq!(evicted, vec![1, 2], "lightest first: 0.3 then 0.6");
        assert_eq!(
            inc.assignment(),
            vec![(0, 0, 0.9)],
            "the heaviest edge survives"
        );
        assert_eq!(inc.consumer_residual(0), 0);
        assert!((inc.total_weight() - 0.9).abs() < 1e-12);

        // The evicted items' capacity came back and re-offers elsewhere.
        assert!(inc.offer(1, 1, 0.4));
        assert_eq!(inc.item_residual(2), 1);

        // Absorbing only unused residual evicts nothing.
        let mut slack = IncrementalMatcher::new(vec![1], vec![5]);
        assert!(slack.offer(0, 0, 0.5));
        assert_eq!(slack.set_capacity(0, 1), Vec::<usize>::new());
        assert_eq!(slack.consumer_residual(0), 0);
        assert_eq!(slack.len(), 1);
    }

    #[test]
    fn capacity_shrink_ties_evict_the_latest_arrival_first() {
        let mut inc = IncrementalMatcher::new(vec![1, 1, 1], vec![3]);
        assert!(inc.offer(0, 0, 0.5));
        assert!(inc.offer(1, 0, 0.5));
        assert!(inc.offer(2, 0, 0.8));
        let evicted = inc.set_capacity(0, 1);
        assert_eq!(
            evicted,
            vec![1, 0],
            "equal weights: later arrivals go first"
        );
        assert_eq!(inc.assignment(), vec![(2, 0, 0.8)]);
    }

    #[test]
    fn registration_grows_both_sides() {
        let mut inc = IncrementalMatcher::new(vec![], vec![]);
        let t = inc.add_item(1);
        let c = inc.add_consumer(1);
        assert_eq!((t, c), (0, 0));
        assert!(inc.offer(t, c, 0.7));
        assert_eq!(inc.len(), 1);
        let c2 = inc.add_consumer(2);
        assert!(!inc.offer(t, c2, 0.4), "item capacity is spent");
    }
}
