//! The centralized stack (primal-dual) algorithm of Section 5.2.
//!
//! The algorithm maintains one dual variable `y_v` per node.  In the *push*
//! phase edges are pushed on a stack: pushing `e = (u, v)` raises both of
//! its dual variables by
//!
//! ```text
//! δ(e) = (w(e) − y_u/b(u) − y_v/b(v)) / 2
//! ```
//!
//! Edges whose dual constraint becomes (weakly) satisfied are deleted from
//! the graph; the push phase ends when no edge is left.  In the *pop* phase
//! edges are popped in reverse order and included in the solution whenever
//! feasibility is maintained, so the centralized algorithm never violates
//! capacities.
//!
//! The MapReduce variant ([`crate::stack_mr`]) pushes whole *layers*
//! (maximal b-matchings) instead of single edges and allows bounded
//! capacity violations; this sequential version is simpler, always
//! feasible, and is used as a reference implementation in tests.

use smr_graph::{BipartiteGraph, Capacities, Matching, NodeId};

/// Dual variables for every node of a bipartite graph.
#[derive(Debug, Clone)]
pub(crate) struct DualVariables {
    item_y: Vec<f64>,
    consumer_y: Vec<f64>,
}

impl DualVariables {
    pub(crate) fn new(graph: &BipartiteGraph) -> Self {
        DualVariables {
            item_y: vec![0.0; graph.num_items()],
            consumer_y: vec![0.0; graph.num_consumers()],
        }
    }

    pub(crate) fn get(&self, node: NodeId) -> f64 {
        match node {
            NodeId::Item(t) => self.item_y[t.index()],
            NodeId::Consumer(c) => self.consumer_y[c.index()],
        }
    }

    pub(crate) fn add(&mut self, node: NodeId, delta: f64) {
        match node {
            NodeId::Item(t) => self.item_y[t.index()] += delta,
            NodeId::Consumer(c) => self.consumer_y[c.index()] += delta,
        }
    }

    /// The left-hand side of the dual constraint of an edge:
    /// `y_u/b(u) + y_v/b(v)`.
    pub(crate) fn constraint_lhs(&self, caps: &Capacities, u: NodeId, v: NodeId) -> f64 {
        self.get(u) / caps.of(u) as f64 + self.get(v) / caps.of(v) as f64
    }

    /// Sum of all dual variables — an upper bound on the optimum primal
    /// value (weak duality), handy for approximation checks in tests.
    pub(crate) fn objective(&self) -> f64 {
        self.item_y.iter().sum::<f64>() + self.consumer_y.iter().sum::<f64>()
    }
}

/// The increment δ(e) applied to both dual variables when pushing an edge.
pub(crate) fn delta(weight: f64, lhs: f64) -> f64 {
    (weight - lhs) / 2.0
}

/// Whether an edge is weakly covered (Definition 1):
/// `y_u/b(u) + y_v/b(v) ≥ w(e) / (3 + 2ε)`.
pub(crate) fn is_weakly_covered(weight: f64, lhs: f64, epsilon: f64) -> bool {
    lhs >= weight / (3.0 + 2.0 * epsilon) - 1e-15
}

/// Runs the centralized stack algorithm.
///
/// `epsilon` plays the same role as in StackMR: it controls how quickly
/// edges become weakly covered during the push phase (larger ε ⇒ fewer
/// pushes).  The result is always feasible.
pub fn stack_matching(graph: &BipartiteGraph, caps: &Capacities, epsilon: f64) -> Matching {
    assert!(
        caps.matches(graph),
        "capacities were built for a different graph"
    );
    assert!(epsilon > 0.0, "epsilon must be positive");

    let mut duals = DualVariables::new(graph);
    let mut live: Vec<bool> = vec![true; graph.num_edges()];
    let mut live_count = graph.num_edges();
    let mut stack: Vec<usize> = Vec::new();

    // Push phase: sweep the live edges, pushing each and raising duals;
    // weakly covered edges leave the graph.  Every push raises the
    // constraint of the pushed edge by a constant fraction of its gap, so
    // the number of sweeps is O(b_max) in the worst case.
    while live_count > 0 {
        let mut removed_this_pass = 0usize;
        for (e, edge_live) in live.iter_mut().enumerate() {
            if !*edge_live {
                continue;
            }
            let edge = graph.edge(e);
            let u = NodeId::Item(edge.item);
            let v = NodeId::Consumer(edge.consumer);
            let lhs = duals.constraint_lhs(caps, u, v);
            if is_weakly_covered(edge.weight, lhs, epsilon) {
                *edge_live = false;
                removed_this_pass += 1;
                continue;
            }
            let d = delta(edge.weight, lhs);
            duals.add(u, d);
            duals.add(v, d);
            stack.push(e);
        }
        live_count -= removed_this_pass;
        // Nothing was removed in a full pass only if every remaining edge
        // was pushed; pushing strictly increases every pushed edge's
        // constraint so progress is guaranteed — but guard against float
        // stagnation anyway.
        if removed_this_pass == 0 && live_count > 0 && stack.len() > graph.num_edges() * 64 {
            // Extremely defensive: declare the remaining edges covered.
            live.fill(false);
            live_count = 0;
        }
    }

    // Pop phase: include edges popped from the stack whenever feasibility
    // is maintained.
    let mut item_residual: Vec<u64> = caps.item_capacities().to_vec();
    let mut consumer_residual: Vec<u64> = caps.consumer_capacities().to_vec();
    let mut matching = Matching::new(graph.num_edges());
    while let Some(e) = stack.pop() {
        if matching.contains(e) {
            continue;
        }
        let edge = graph.edge(e);
        let ti = edge.item.index();
        let ci = edge.consumer.index();
        if item_residual[ti] > 0 && consumer_residual[ci] > 0 {
            item_residual[ti] -= 1;
            consumer_residual[ci] -= 1;
            matching.insert(e);
        }
    }
    // Weak duality sanity check: scaling the duals by (3 + 2ε) makes them
    // feasible (every edge is at least weakly covered when it leaves the
    // graph), so (3 + 2ε)·Σy upper-bounds every feasible primal solution.
    debug_assert!(
        matching.value(graph) <= (3.0 + 2.0 * epsilon) * duals.objective() * (1.0 + 1e-9) + 1e-9
    );
    matching
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::optimal_matching;
    use smr_graph::{ConsumerId, Edge, ItemId};

    fn k33() -> (BipartiteGraph, Capacities) {
        let mut edges = Vec::new();
        let weights = [[3.0, 1.0, 1.0], [1.0, 2.0, 1.0], [1.0, 1.0, 4.0]];
        for (t, row) in weights.iter().enumerate() {
            for (c, &w) in row.iter().enumerate() {
                edges.push(Edge::new(ItemId(t as u32), ConsumerId(c as u32), w));
            }
        }
        let g = BipartiteGraph::from_edges(3, 3, edges);
        let caps = Capacities::uniform(&g, 1, 1);
        (g, caps)
    }

    #[test]
    fn stack_matching_is_feasible() {
        let (g, caps) = k33();
        let m = stack_matching(&g, &caps, 1.0);
        assert!(m.is_feasible(&g, &caps));
        assert!(!m.is_empty());
    }

    #[test]
    fn stack_matching_value_is_within_the_primal_dual_bound() {
        let (g, caps) = k33();
        let m = stack_matching(&g, &caps, 1.0);
        let opt = optimal_matching(&g, &caps);
        // The guarantee of the layered variant is 1/(6+ε); the sequential
        // variant does at least as well on these small instances.
        let ratio = m.value(&g) / opt.value(&g);
        assert!(
            ratio >= 1.0 / 7.0 - 1e-9,
            "approximation ratio {ratio} below guarantee"
        );
        assert!(ratio <= 1.0 + 1e-9);
    }

    #[test]
    fn duals_upper_bound_the_matching_value() {
        // Weak duality: the dual objective after the push phase bounds the
        // optimum, hence also the produced matching value.
        let (g, caps) = k33();
        let mut duals = DualVariables::new(&g);
        // Simulate a couple of pushes by hand.
        for e in 0..g.num_edges() {
            let edge = g.edge(e);
            let u = NodeId::Item(edge.item);
            let v = NodeId::Consumer(edge.consumer);
            let lhs = duals.constraint_lhs(&caps, u, v);
            if !is_weakly_covered(edge.weight, lhs, 1.0) {
                let d = delta(edge.weight, lhs);
                duals.add(u, d);
                duals.add(v, d);
            }
        }
        assert!(duals.objective() > 0.0);
    }

    #[test]
    fn weak_coverage_threshold_scales_with_epsilon() {
        // lhs = 0.25, weight 1.0: covered for ε=1 (threshold 0.2) but not
        // for ε small (threshold ≈ 1/3).
        assert!(is_weakly_covered(1.0, 0.25, 1.0));
        assert!(!is_weakly_covered(1.0, 0.25, 0.01));
    }

    #[test]
    fn delta_halves_the_remaining_gap() {
        assert!((delta(1.0, 0.0) - 0.5).abs() < 1e-12);
        assert!((delta(1.0, 0.5) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_returns_empty_matching() {
        let g = BipartiteGraph::from_edges(2, 2, vec![]);
        let caps = Capacities::uniform(&g, 1, 1);
        assert!(stack_matching(&g, &caps, 1.0).is_empty());
    }

    #[test]
    fn larger_capacities_allow_more_matched_edges() {
        let (g, caps1) = k33();
        let caps3 = Capacities::uniform(&g, 3, 3);
        let small = stack_matching(&g, &caps1, 1.0);
        let large = stack_matching(&g, &caps3, 1.0);
        assert!(large.len() >= small.len());
        assert!(large.value(&g) >= small.value(&g));
        assert!(large.is_feasible(&g, &caps3));
    }
}
