//! Exact maximum-weight b-matching via min-cost max-flow.
//!
//! The paper notes that weighted b-matching is solvable in polynomial time
//! with max-flow techniques but that exact algorithms do not scale to its
//! datasets.  This module provides such an exact solver for *small*
//! instances: it is the ground truth the test suite uses to verify the
//! approximation guarantees of the greedy and stack algorithms
//! empirically.
//!
//! The reduction is classical: a source is connected to every item with
//! capacity `b(t)`, every candidate edge becomes a unit-capacity arc with
//! cost `−w(e)`, and every consumer is connected to a sink with capacity
//! `b(c)`.  Successive shortest-path augmentations are performed while the
//! shortest source–sink path has negative cost; the arcs carrying flow at
//! termination form a maximum-weight b-matching.

use smr_graph::{BipartiteGraph, Capacities, Matching};

#[derive(Debug, Clone)]
struct Arc {
    to: usize,
    capacity: i64,
    cost: f64,
    /// Index of the reverse arc in the adjacency list of `to`.
    rev: usize,
}

/// A small min-cost-flow network specialised for the b-matching reduction.
#[derive(Debug, Clone)]
struct FlowNetwork {
    adjacency: Vec<Vec<Arc>>,
}

impl FlowNetwork {
    fn new(num_nodes: usize) -> Self {
        FlowNetwork {
            adjacency: vec![Vec::new(); num_nodes],
        }
    }

    /// Adds a directed arc and its residual reverse arc.  Returns the
    /// position of the forward arc so callers can inspect its final flow.
    fn add_arc(&mut self, from: usize, to: usize, capacity: i64, cost: f64) -> (usize, usize) {
        let fwd_pos = self.adjacency[from].len();
        let rev_pos = self.adjacency[to].len();
        self.adjacency[from].push(Arc {
            to,
            capacity,
            cost,
            rev: rev_pos,
        });
        self.adjacency[to].push(Arc {
            to: from,
            capacity: 0,
            cost: -cost,
            rev: fwd_pos,
        });
        (from, fwd_pos)
    }

    /// Shortest path from `source` by cost using SPFA (costs may be
    /// negative but the residual network of this reduction has no negative
    /// cycles).  Returns per-node distance and the arc used to reach it.
    fn shortest_path(&self, source: usize) -> (Vec<f64>, Vec<Option<(usize, usize)>>) {
        let n = self.adjacency.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; n];
        let mut in_queue = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        dist[source] = 0.0;
        queue.push_back(source);
        in_queue[source] = true;
        while let Some(u) = queue.pop_front() {
            in_queue[u] = false;
            let du = dist[u];
            for (idx, arc) in self.adjacency[u].iter().enumerate() {
                if arc.capacity <= 0 {
                    continue;
                }
                let nd = du + arc.cost;
                if nd + 1e-12 < dist[arc.to] {
                    dist[arc.to] = nd;
                    parent[arc.to] = Some((u, idx));
                    if !in_queue[arc.to] {
                        queue.push_back(arc.to);
                        in_queue[arc.to] = true;
                    }
                }
            }
        }
        (dist, parent)
    }

    /// Augments along shortest negative-cost paths until none remains.
    fn run_negative_cost_augmentation(&mut self, source: usize, sink: usize) {
        loop {
            let (dist, parent) = self.shortest_path(source);
            if !dist[sink].is_finite() || dist[sink] >= -1e-12 {
                break;
            }
            // Find the bottleneck along the path.
            let mut bottleneck = i64::MAX;
            let mut v = sink;
            while v != source {
                let (u, idx) = parent[v].expect("path exists");
                bottleneck = bottleneck.min(self.adjacency[u][idx].capacity);
                v = u;
            }
            // Apply the augmentation.
            let mut v = sink;
            while v != source {
                let (u, idx) = parent[v].expect("path exists");
                let rev = self.adjacency[u][idx].rev;
                self.adjacency[u][idx].capacity -= bottleneck;
                self.adjacency[v][rev].capacity += bottleneck;
                v = u;
            }
        }
    }
}

/// Computes a maximum-weight b-matching exactly.
///
/// Intended for instances up to a few thousand edges (the test and
/// calibration sizes); the running time is `O(F · E)` where `F` is the
/// total matched degree.
pub fn optimal_matching(graph: &BipartiteGraph, caps: &Capacities) -> Matching {
    assert!(
        caps.matches(graph),
        "capacities were built for a different graph"
    );
    let num_items = graph.num_items();
    let num_consumers = graph.num_consumers();
    // Node layout: 0 = source, 1..=items, items+1..=items+consumers, sink.
    let source = 0usize;
    let item_node = |t: usize| 1 + t;
    let consumer_node = |c: usize| 1 + num_items + c;
    let sink = 1 + num_items + num_consumers;

    let mut network = FlowNetwork::new(sink + 1);
    for t in 0..num_items {
        network.add_arc(source, item_node(t), caps.item_capacities()[t] as i64, 0.0);
    }
    for c in 0..num_consumers {
        network.add_arc(
            consumer_node(c),
            sink,
            caps.consumer_capacities()[c] as i64,
            0.0,
        );
    }
    let mut edge_arcs = Vec::with_capacity(graph.num_edges());
    for e in graph.edges() {
        let pos = network.add_arc(
            item_node(e.item.index()),
            consumer_node(e.consumer.index()),
            1,
            -e.weight,
        );
        edge_arcs.push(pos);
    }

    network.run_negative_cost_augmentation(source, sink);

    let mut matching = Matching::new(graph.num_edges());
    for (edge_id, (from, idx)) in edge_arcs.into_iter().enumerate() {
        // A unit arc with zero residual capacity carries one unit of flow,
        // i.e. the edge is matched.
        if network.adjacency[from][idx].capacity == 0 {
            matching.insert(edge_id);
        }
    }
    matching
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_graph::{ConsumerId, Edge, ItemId};

    fn caps(items: Vec<u64>, consumers: Vec<u64>) -> Capacities {
        Capacities::from_vectors(items, consumers)
    }

    #[test]
    fn picks_the_best_perfect_matching() {
        // 2x2 complete bipartite graph; the anti-diagonal is optimal.
        let g = BipartiteGraph::from_edges(
            2,
            2,
            vec![
                Edge::new(ItemId(0), ConsumerId(0), 1.0),
                Edge::new(ItemId(0), ConsumerId(1), 2.0),
                Edge::new(ItemId(1), ConsumerId(0), 3.0),
                Edge::new(ItemId(1), ConsumerId(1), 1.0),
            ],
        );
        let caps = caps(vec![1, 1], vec![1, 1]);
        let m = optimal_matching(&g, &caps);
        assert!(m.is_feasible(&g, &caps));
        assert!((m.value(&g) - 5.0).abs() < 1e-9);
        assert_eq!(m.to_edge_vec(), vec![1, 2]);
    }

    #[test]
    fn beats_greedy_on_the_tightness_instance() {
        // Greedy takes the (1+δ)-edge and is blocked; the optimum takes the
        // two unit edges.
        let g = BipartiteGraph::from_edges(
            2,
            2,
            vec![
                Edge::new(ItemId(0), ConsumerId(0), 1.1),
                Edge::new(ItemId(0), ConsumerId(1), 1.0),
                Edge::new(ItemId(1), ConsumerId(0), 1.0),
            ],
        );
        let c = caps(vec![1, 1], vec![1, 1]);
        let m = optimal_matching(&g, &c);
        assert!((m.value(&g) - 2.0).abs() < 1e-9);
        let greedy = crate::greedy::greedy_matching(&g, &c);
        assert!(m.value(&g) >= greedy.value(&g));
        assert!(greedy.value(&g) >= 0.5 * m.value(&g));
    }

    #[test]
    fn respects_capacities_larger_than_one() {
        // One popular item with capacity 2 can serve two consumers.
        let g = BipartiteGraph::from_edges(
            1,
            3,
            vec![
                Edge::new(ItemId(0), ConsumerId(0), 5.0),
                Edge::new(ItemId(0), ConsumerId(1), 4.0),
                Edge::new(ItemId(0), ConsumerId(2), 3.0),
            ],
        );
        let c = caps(vec![2], vec![1, 1, 1]);
        let m = optimal_matching(&g, &c);
        assert!(m.is_feasible(&g, &c));
        assert_eq!(m.len(), 2);
        assert!((m.value(&g) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn does_not_take_edges_that_force_worse_totals() {
        // Consumer capacity 1: only the heavier of the two incident edges
        // should be matched even though both have positive weight.
        let g = BipartiteGraph::from_edges(
            2,
            1,
            vec![
                Edge::new(ItemId(0), ConsumerId(0), 1.0),
                Edge::new(ItemId(1), ConsumerId(0), 10.0),
            ],
        );
        let c = caps(vec![1, 1], vec![1]);
        let m = optimal_matching(&g, &c);
        assert_eq!(m.to_edge_vec(), vec![1]);
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = BipartiteGraph::from_edges(1, 1, vec![]);
        let c = caps(vec![1], vec![1]);
        let m = optimal_matching(&g, &c);
        assert!(m.is_empty());
    }

    #[test]
    fn matches_every_edge_when_capacities_are_loose() {
        let g = BipartiteGraph::from_edges(
            2,
            2,
            vec![
                Edge::new(ItemId(0), ConsumerId(0), 0.5),
                Edge::new(ItemId(0), ConsumerId(1), 0.6),
                Edge::new(ItemId(1), ConsumerId(0), 0.7),
                Edge::new(ItemId(1), ConsumerId(1), 0.8),
            ],
        );
        let c = caps(vec![2, 2], vec![2, 2]);
        let m = optimal_matching(&g, &c);
        assert_eq!(m.len(), 4);
        assert!((m.value(&g) - 2.6).abs() < 1e-9);
    }
}
