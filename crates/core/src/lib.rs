//! The b-matching algorithms of "Social Content Matching in MapReduce"
//! (VLDB 2011).
//!
//! Given a weighted bipartite graph between items `T` and consumers `C`
//! and node capacities `b(v)`, the goal is a maximum-weight *b-matching*:
//! a subset of the edges with at most `b(v)` selected edges incident to
//! each node, of maximum total weight (Problem 1 of the paper).
//!
//! The crate implements both the paper's MapReduce algorithms and the
//! centralized algorithms they are derived from:
//!
//! | Algorithm | Module | Guarantee | Rounds |
//! |---|---|---|---|
//! | Centralized greedy | [`greedy`] | ½-approximation, feasible | — |
//! | GreedyMR | [`greedy_mr`] | ½-approximation, feasible, any-time | up to linear |
//! | Centralized stack | [`stack`] | primal-dual, feasible | — |
//! | StackMR | [`stack_mr`] | 1/(6+ε), capacities violated ≤ (1+ε) | poly-logarithmic w.h.p. |
//! | StackGreedyMR | [`stack_mr`] (greedy marking) | as StackMR, better values in practice | poly-logarithmic w.h.p. |
//! | Maximal b-matching | [`maximal`] | maximality (Garrido et al. subroutine) | O(log³ n) expected |
//! | Exact solver | [`exact`] | optimal (min-cost max-flow) | — (small instances) |
//! | Incremental (online) | [`incremental`] | ½-competitive with free disposal | — (per-arrival) |
//!
//! The MapReduce algorithms are written against the
//! [`smr_mapreduce`] engine using the node-centric graph representation of
//! Section 5.3 of the paper: every record is keyed by a node and carries
//! the node's view of its incident edges; map functions make local
//! decisions, reduce functions unify the two endpoints' views of each edge.
//!
//! # Quick start
//!
//! ```
//! use smr_graph::prelude::*;
//! use smr_matching::prelude::*;
//!
//! // A tiny content-delivery instance: 2 items, 3 consumers.
//! let mut b = GraphBuilder::new();
//! let items: Vec<_> = (0..2).map(|i| b.add_item(format!("item-{i}"))).collect();
//! let users: Vec<_> = (0..3).map(|i| b.add_consumer(format!("user-{i}"))).collect();
//! b.add_edge(items[0], users[0], 0.9);
//! b.add_edge(items[0], users[1], 0.8);
//! b.add_edge(items[1], users[1], 0.7);
//! b.add_edge(items[1], users[2], 0.6);
//! let graph = b.build();
//! let caps = Capacities::uniform(&graph, 2, 1);
//!
//! // One flow hosts every job of the run (and anything else the
//! // surrounding pipeline executes); inter-round state lives in the
//! // flow's disk-backed side store.
//! let flow = smr_mapreduce::FlowContext::new(smr_mapreduce::JobConfig::named("quick-start"));
//! let run = GreedyMr::new(GreedyMrConfig::default()).run(&graph, &caps, &flow);
//! assert!(run.matching.is_feasible(&graph, &caps));
//! assert!(run.matching.value(&graph) > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod exact;
pub mod greedy;
pub mod greedy_mr;
pub mod incremental;
pub mod maximal;
pub mod repair;
pub mod result;
pub mod runner;
pub mod stack;
pub mod stack_mr;
pub mod state;

pub use config::{GreedyMrConfig, MarkingStrategy, StackMrConfig};
pub use exact::optimal_matching;
pub use greedy::greedy_matching;
pub use greedy_mr::GreedyMr;
pub use incremental::IncrementalMatcher;
pub use maximal::{maximal_b_matching_centralized, MaximalMatcher};
pub use repair::{repair_violations, RepairReport};
pub use result::{AlgorithmKind, MatchingRun};
pub use runner::run_algorithm;
pub use stack::stack_matching;
pub use stack_mr::StackMr;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::config::{GreedyMrConfig, MarkingStrategy, StackMrConfig};
    pub use crate::exact::optimal_matching;
    pub use crate::greedy::greedy_matching;
    pub use crate::greedy_mr::GreedyMr;
    pub use crate::incremental::IncrementalMatcher;
    pub use crate::maximal::{maximal_b_matching_centralized, MaximalMatcher};
    pub use crate::repair::{repair_violations, RepairReport};
    pub use crate::result::{AlgorithmKind, MatchingRun};
    pub use crate::runner::run_algorithm;
    pub use crate::stack::stack_matching;
    pub use crate::stack_mr::StackMr;
}
