//! StackMR and StackGreedyMR: the primal-dual stack algorithm in MapReduce
//! (Sections 5.2 and 5.3, Algorithm 2).
//!
//! The algorithm maintains a dual variable `y_v` per node and a distributed
//! stack of *layers*.  Each **push round**:
//!
//! 1. removes every edge that has become *weakly covered*
//!    (`y_u/b(u) + y_v/b(v) ≥ w(e)/(3+2ε)`, Definition 1) — one MapReduce
//!    job exchanging the dual values along the edges;
//! 2. computes a maximal b-matching of the remaining graph with per-node
//!    capacity `max(1, ⌈ε·b(v)⌉)` using the four-stage randomized algorithm
//!    of [`crate::maximal`] — four MapReduce jobs per Garrido iteration;
//! 3. pushes the matching on the stack as a new layer and raises the dual
//!    variables of its edges by `δ(e) = (w(e) − y_u/b(u) − y_v/b(v))/2` —
//!    one MapReduce job.
//!
//! When no edge is left, the **pop phase** pops layers from the top; the
//! edges of a layer are included in the solution in parallel provided both
//! endpoints still have residual capacity; nodes whose capacity is
//! exhausted (or exceeded) drop out together with their remaining stacked
//! edges — one MapReduce job per layer.
//!
//! Because a popped layer can add up to `⌈ε·b(v)⌉` edges to a node that
//! still had one unit of residual capacity, capacities can be violated by a
//! factor of at most `(1+ε)`; the approximation guarantee is `1/(6+ε)`
//! (Theorem 1).  With the paper's experimental setting ε = 1, observed
//! violations stay in the single-digit percent range (Figure 4).

use std::collections::HashSet;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use smr_graph::{BipartiteGraph, Capacities, EdgeId, Matching, NodeId};
use smr_mapreduce::flow::FlowContext;
use smr_mapreduce::{Emitter, Mapper, Reducer, RoundState};
use smr_storage::impl_codec_struct;

use crate::config::{MarkingStrategy, StackMrConfig};
use crate::maximal::MaximalMatcher;
use crate::result::{AlgorithmKind, MatchingRun};
use crate::state::{build_node_records, AdjEdge, NodeRecord};

// ---------------------------------------------------------------------------
// Push-phase records and messages
// ---------------------------------------------------------------------------

/// The push-phase state of one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackNodeRecord {
    /// The node.
    pub node: NodeId,
    /// The node's capacity `b(v)` (never changes during the push phase).
    pub capacity: u64,
    /// The dual variable `y_v`.
    pub dual: f64,
    /// Live (not yet weakly covered) incident edges.
    pub adjacency: Vec<AdjEdge>,
}

impl_codec_struct!(StackNodeRecord {
    node,
    capacity,
    dual,
    adjacency
});

/// Message of the coverage and push jobs: one endpoint's `y/b` value for
/// one edge, or a self-addressed heartbeat carrying the full record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DualMsg {
    /// The edge (or `usize::MAX` for the heartbeat).
    pub edge: EdgeId,
    /// Sender node.
    pub sender: NodeId,
    /// The sender's `y_v / b(v)`.
    pub dual_over_capacity: f64,
    /// Attached record (heartbeat only).
    pub record: Option<StackNodeRecord>,
}

impl_codec_struct!(DualMsg {
    edge,
    sender,
    dual_over_capacity,
    record
});

/// A mapper that sends `y/b` along every live edge (used by both the
/// coverage job and the push job; the push job additionally restricts the
/// reducer-side update to the current layer).
struct DualExchangeMapper;

impl Mapper for DualExchangeMapper {
    type InKey = NodeId;
    type InValue = StackNodeRecord;
    type OutKey = NodeId;
    type OutValue = DualMsg;

    fn map(&self, _node: &NodeId, record: &StackNodeRecord, out: &mut Emitter<NodeId, DualMsg>) {
        let ratio = record.dual / record.capacity as f64;
        for adj in &record.adjacency {
            out.emit(
                adj.other,
                DualMsg {
                    edge: adj.edge,
                    sender: record.node,
                    dual_over_capacity: ratio,
                    record: None,
                },
            );
        }
        out.emit(
            record.node,
            DualMsg {
                edge: usize::MAX,
                sender: record.node,
                dual_over_capacity: ratio,
                record: Some(record.clone()),
            },
        );
    }
}

/// Reducer of the coverage job: drops weakly covered edges.
struct CoverageReducer {
    weak_factor: f64,
}

impl Reducer for CoverageReducer {
    type Key = NodeId;
    type InValue = DualMsg;
    type OutKey = NodeId;
    type OutValue = StackNodeRecord;

    fn reduce(&self, node: &NodeId, msgs: &[DualMsg], out: &mut Emitter<NodeId, StackNodeRecord>) {
        let Some(record) = msgs.iter().find_map(|m| m.record.clone()) else {
            return;
        };
        let own_ratio = record.dual / record.capacity as f64;
        let neighbour_ratios: std::collections::HashMap<EdgeId, f64> = msgs
            .iter()
            .filter(|m| m.sender != *node && m.edge != usize::MAX)
            .map(|m| (m.edge, m.dual_over_capacity))
            .collect();
        let mut surviving = Vec::with_capacity(record.adjacency.len());
        for adj in &record.adjacency {
            let neighbour = neighbour_ratios.get(&adj.edge);
            match neighbour {
                Some(&neighbour_ratio) => {
                    let lhs = own_ratio + neighbour_ratio;
                    let weakly_covered = lhs >= adj.weight * self.weak_factor - 1e-15;
                    if !weakly_covered {
                        surviving.push(*adj);
                    }
                }
                None => {
                    // The neighbour vanished (all of its edges were covered
                    // in an earlier round); drop the edge.
                }
            }
        }
        out.emit(
            *node,
            StackNodeRecord {
                adjacency: surviving,
                ..record
            },
        );
    }
}

/// Reducer of the push job: raises `y_v` by `Σ δ(e)` over the node's layer
/// edges.
struct PushReducer {
    layer: Arc<HashSet<EdgeId>>,
}

impl Reducer for PushReducer {
    type Key = NodeId;
    type InValue = DualMsg;
    type OutKey = NodeId;
    type OutValue = StackNodeRecord;

    fn reduce(&self, node: &NodeId, msgs: &[DualMsg], out: &mut Emitter<NodeId, StackNodeRecord>) {
        let Some(record) = msgs.iter().find_map(|m| m.record.clone()) else {
            return;
        };
        let own_ratio = record.dual / record.capacity as f64;
        let neighbour_ratios: std::collections::HashMap<EdgeId, f64> = msgs
            .iter()
            .filter(|m| m.sender != *node && m.edge != usize::MAX)
            .map(|m| (m.edge, m.dual_over_capacity))
            .collect();
        let mut increase = 0.0;
        for adj in &record.adjacency {
            if !self.layer.contains(&adj.edge) {
                continue;
            }
            if let Some(&neighbour_ratio) = neighbour_ratios.get(&adj.edge) {
                // δ(e) = (w(e) − y_u/b(u) − y_v/b(v)) / 2, computed with the
                // dual values both endpoints held at the start of the round.
                let delta = (adj.weight - own_ratio - neighbour_ratio) / 2.0;
                if delta > 0.0 {
                    increase += delta;
                }
            }
        }
        out.emit(
            *node,
            StackNodeRecord {
                dual: record.dual + increase,
                ..record
            },
        );
    }
}

// ---------------------------------------------------------------------------
// Pop-phase records and messages
// ---------------------------------------------------------------------------

/// The pop-phase state of one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopNodeRecord {
    /// The node.
    pub node: NodeId,
    /// Residual capacity; may go negative by at most `⌈ε·b(v)⌉ − 1` when a
    /// layer overshoots, which is exactly the paper's (1+ε) violation.
    pub residual: i64,
    /// All edges of the node that appear somewhere on the stack.
    pub adjacency: Vec<AdjEdge>,
}

impl_codec_struct!(PopNodeRecord {
    node,
    residual,
    adjacency
});

/// Message of a pop job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopMsg {
    /// The edge (or `usize::MAX` for the heartbeat).
    pub edge: EdgeId,
    /// Sender node.
    pub sender: NodeId,
    /// Attached record (heartbeat only).
    pub record: Option<PopNodeRecord>,
}

impl_codec_struct!(PopMsg {
    edge,
    sender,
    record
});

/// Mapper of a pop job: an active node nominates its edges of the current
/// layer that are not yet in the solution.
struct PopMapper {
    layer: Arc<HashSet<EdgeId>>,
    already_included: Arc<HashSet<EdgeId>>,
}

impl Mapper for PopMapper {
    type InKey = NodeId;
    type InValue = PopNodeRecord;
    type OutKey = NodeId;
    type OutValue = PopMsg;

    fn map(&self, _node: &NodeId, record: &PopNodeRecord, out: &mut Emitter<NodeId, PopMsg>) {
        if record.residual > 0 {
            for adj in &record.adjacency {
                if self.layer.contains(&adj.edge) && !self.already_included.contains(&adj.edge) {
                    out.emit(
                        adj.other,
                        PopMsg {
                            edge: adj.edge,
                            sender: record.node,
                            record: None,
                        },
                    );
                    out.emit(
                        record.node,
                        PopMsg {
                            edge: adj.edge,
                            sender: record.node,
                            record: None,
                        },
                    );
                }
            }
        }
        out.emit(
            record.node,
            PopMsg {
                edge: usize::MAX,
                sender: record.node,
                record: Some(record.clone()),
            },
        );
    }
}

/// Output of a pop job for one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopOutput {
    /// The node's updated record.
    pub record: PopNodeRecord,
    /// Edges of the popped layer included in the solution at this node.
    pub included: Vec<EdgeId>,
}

impl_codec_struct!(PopOutput { record, included });

/// Reducer of a pop job: an edge is included when *both* endpoints
/// nominated it (i.e. both were still active).
struct PopReducer;

impl Reducer for PopReducer {
    type Key = NodeId;
    type InValue = PopMsg;
    type OutKey = NodeId;
    type OutValue = PopOutput;

    fn reduce(&self, node: &NodeId, msgs: &[PopMsg], out: &mut Emitter<NodeId, PopOutput>) {
        let Some(record) = msgs.iter().find_map(|m| m.record.clone()) else {
            return;
        };
        let own_nominations: HashSet<EdgeId> = msgs
            .iter()
            .filter(|m| m.sender == *node && m.edge != usize::MAX)
            .map(|m| m.edge)
            .collect();
        let mut included: Vec<EdgeId> = msgs
            .iter()
            .filter(|m| {
                m.sender != *node && m.edge != usize::MAX && own_nominations.contains(&m.edge)
            })
            .map(|m| m.edge)
            .collect();
        included.sort_unstable();
        included.dedup();
        let new_residual = record.residual - included.len() as i64;
        out.emit(
            *node,
            PopOutput {
                record: PopNodeRecord {
                    residual: new_residual,
                    ..record
                },
                included,
            },
        );
    }
}

// ---------------------------------------------------------------------------
// The algorithm driver
// ---------------------------------------------------------------------------

/// StackMR (and, with heaviest-first marking, StackGreedyMR).
#[derive(Debug, Clone, Default)]
pub struct StackMr {
    config: StackMrConfig,
}

impl StackMr {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: StackMrConfig) -> Self {
        StackMr { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &StackMrConfig {
        &self.config
    }

    /// Runs the algorithm with every job of every phase — coverage, the
    /// four maximal-matching stages, push, pop — built through `flow`:
    /// the flow's `JobConfig` governs the engine and all jobs report into
    /// the flow's [`smr_mapreduce::FlowReport`].
    ///
    /// Between rounds the surviving node records live in [`RoundState`]s
    /// — on disk in the flow's side store by default
    /// ([`crate::StackMrConfig::round_state`]), with covered-out nodes
    /// retired via tombstones — so no phase of the run holds the full
    /// candidate edge list in memory between rounds.
    pub fn run(
        &self,
        graph: &BipartiteGraph,
        caps: &Capacities,
        flow: &FlowContext,
    ) -> MatchingRun {
        let algorithm = match self.config.marking {
            MarkingStrategy::HeaviestFirst => AlgorithmKind::StackGreedyMr,
            _ => AlgorithmKind::StackMr,
        };
        let jobs_start = flow.num_jobs();
        let mut value_per_round = Vec::new();
        let mut rounds = 0usize;
        let mut max_round_state_bytes = 0u64;

        // ------------------------------------------------------------------
        // Push phase.
        // ------------------------------------------------------------------
        let mut push_state: RoundState<NodeId, StackNodeRecord> =
            flow.round_state("stack-push", self.config.round_state);
        push_state.seed(
            build_node_records(graph, caps)
                .into_iter()
                .map(|(node, r)| {
                    (
                        node,
                        StackNodeRecord {
                            node: r.node,
                            capacity: r.capacity,
                            dual: 0.0,
                            adjacency: r.adjacency,
                        },
                    )
                })
                .collect(),
        );
        let weak_factor = self.config.weak_coverage_factor();
        let mut layers: Vec<Vec<EdgeId>> = Vec::new();

        for push_round in 0..self.config.max_push_rounds {
            flow.mark_round();
            // (1) Remove weakly covered edges; covered-out nodes retire
            // from the round state via tombstones.
            let covered = push_state
                .dataset()
                .map_with(DualExchangeMapper)
                .named(format!("coverage-{push_round}"))
                .reduce_with(CoverageReducer { weak_factor })
                .collect();
            push_state.absorb(covered, |_, r| !r.adjacency.is_empty());
            if push_state.is_empty() {
                break;
            }
            rounds += 1;
            value_per_round.push(0.0);

            // (2) Maximal b-matching with layer capacities max(1, ⌈ε·b(v)⌉).
            let layer_config = self.config.clone();
            let matcher_input: Vec<(NodeId, NodeRecord)> = push_state
                .dataset_with(move |node, r| {
                    (
                        node,
                        NodeRecord::new(
                            r.node,
                            layer_config.layer_capacity(r.capacity),
                            r.adjacency,
                        ),
                    )
                })
                .collect();
            let matcher = MaximalMatcher {
                strategy: self.config.marking,
                seed: self.config.seed.wrapping_add(push_round as u64),
                // `job` only matters for the standalone in-memory path;
                // under a shared flow every stage job takes its config
                // (and name) from the FlowContext.
                job: flow.config().clone(),
                max_iterations: self.config.max_maximal_iterations,
                round_state: self.config.round_state,
            };
            let maximal = matcher.compute(&matcher_input, flow, &format!("maximal-{push_round}"));
            max_round_state_bytes = max_round_state_bytes.max(maximal.max_round_state_bytes);
            let layer: HashSet<EdgeId> = maximal.edges.iter().copied().collect();
            if layer.is_empty() {
                // No further progress is possible (should not happen while
                // live edges remain, but guards against degenerate inputs).
                break;
            }

            // (3) Push the layer: raise the duals of its edges.
            let layer_arc = Arc::new(layer);
            let pushed = push_state
                .dataset()
                .map_with(DualExchangeMapper)
                .named(format!("push-{push_round}"))
                .reduce_with(PushReducer {
                    layer: Arc::clone(&layer_arc),
                })
                .collect();
            push_state.absorb(pushed, |_, _| true);
            layers.push(maximal.edges);
        }
        max_round_state_bytes = max_round_state_bytes.max(push_state.max_state_bytes());
        push_state.clear();

        // ------------------------------------------------------------------
        // Pop phase: one job per layer, from the top of the stack.
        // ------------------------------------------------------------------
        let mut matching = Matching::new(graph.num_edges());
        let mut pop_state: RoundState<NodeId, PopOutput> =
            flow.round_state("stack-pop", self.config.round_state);
        pop_state.seed(
            build_node_records(graph, caps)
                .into_iter()
                .map(|(node, r)| {
                    (
                        node,
                        PopOutput {
                            record: PopNodeRecord {
                                node: r.node,
                                residual: r.capacity as i64,
                                adjacency: r.adjacency,
                            },
                            included: Vec::new(),
                        },
                    )
                })
                .collect(),
        );
        let mut included_so_far: HashSet<EdgeId> = HashSet::new();

        for (layer_idx, layer) in layers.iter().enumerate().rev() {
            flow.mark_round();
            let layer_set: Arc<HashSet<EdgeId>> = Arc::new(layer.iter().copied().collect());
            let included_arc = Arc::new(included_so_far.clone());
            let popped = pop_state
                .dataset_with(|node, out| (node, out.record))
                .map_with(PopMapper {
                    layer: layer_set,
                    already_included: included_arc,
                })
                .named(format!("pop-{layer_idx}"))
                .reduce_with(PopReducer)
                .collect();
            rounds += 1;

            let matching_ref = &mut matching;
            let included_ref = &mut included_so_far;
            pop_state.absorb(popped, |_, output| {
                for &e in &output.included {
                    if matching_ref.insert(e) {
                        included_ref.insert(e);
                    }
                }
                true
            });
            value_per_round.push(matching.value(graph));
        }
        max_round_state_bytes = max_round_state_bytes.max(pop_state.max_state_bytes());

        let job_metrics = flow.jobs_from(jobs_start);
        let mr_jobs = job_metrics.len();
        MatchingRun {
            algorithm,
            matching,
            mr_jobs,
            rounds,
            value_per_round,
            job_metrics,
            max_round_state_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::optimal_matching;
    use smr_graph::{ConsumerId, Edge, GraphBuilder, ItemId};
    use smr_mapreduce::JobConfig;

    fn test_config(seed: u64) -> StackMrConfig {
        StackMrConfig::default()
            .with_seed(seed)
            .with_job(JobConfig::named("stack-mr-test").with_threads(2))
    }

    /// Test helper: run under a throwaway flow built from the config's job.
    fn run(alg: StackMr, g: &BipartiteGraph, caps: &Capacities) -> MatchingRun {
        let flow = FlowContext::new(alg.config.job.clone());
        alg.run(g, caps, &flow)
    }

    fn random_graph(items: usize, consumers: usize, keep_mod: usize) -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        let its: Vec<ItemId> = (0..items).map(|i| b.add_item(format!("t{i}"))).collect();
        let cons: Vec<ConsumerId> = (0..consumers)
            .map(|i| b.add_consumer(format!("c{i}")))
            .collect();
        let mut w = 0.61_f64;
        for (ti, &t) in its.iter().enumerate() {
            for (ci, &c) in cons.iter().enumerate() {
                if (ti * 7 + ci * 3) % keep_mod != 0 {
                    w = (w * 53.17 + 0.31).fract().max(0.02);
                    b.add_edge(t, c, w);
                }
            }
        }
        b.build()
    }

    #[test]
    fn produces_a_matching_within_the_violation_bound() {
        let g = random_graph(6, 8, 3);
        let caps = Capacities::uniform(&g, 2, 2);
        let config = test_config(13);
        let run = run(StackMr::new(config.clone()), &g, &caps);
        assert!(!run.matching.is_empty());
        // Per-node violation is bounded by ε = 1: degree ≤ (1+ε)·b = 2b.
        let max_violation = run.matching.max_violation(&g, &caps);
        assert!(
            max_violation <= config.epsilon + 1e-9,
            "violation {max_violation} exceeds epsilon {}",
            config.epsilon
        );
    }

    #[test]
    fn achieves_the_approximation_guarantee_on_small_instances() {
        let g = random_graph(5, 6, 4);
        let caps = Capacities::uniform(&g, 2, 1);
        let run = run(StackMr::new(test_config(7)), &g, &caps);
        let opt = optimal_matching(&g, &caps);
        let guarantee = 1.0 / (6.0 + 1.0);
        assert!(
            run.value(&g) >= guarantee * opt.value(&g) - 1e-9,
            "StackMR value {} below 1/(6+ε) of optimum {}",
            run.value(&g),
            opt.value(&g)
        );
    }

    #[test]
    fn stack_greedy_variant_reports_its_own_algorithm_kind() {
        let g = random_graph(4, 4, 5);
        let caps = Capacities::uniform(&g, 1, 1);
        let run = run(StackMr::new(test_config(3).stack_greedy()), &g, &caps);
        assert_eq!(run.algorithm, AlgorithmKind::StackGreedyMr);
        assert!(!run.matching.is_empty());
    }

    #[test]
    fn runs_are_reproducible_for_a_fixed_seed() {
        let g = random_graph(5, 5, 3);
        let caps = Capacities::uniform(&g, 2, 2);
        let a = run(StackMr::new(test_config(21)), &g, &caps);
        let b = run(StackMr::new(test_config(21)), &g, &caps);
        assert_eq!(a.matching.to_edge_vec(), b.matching.to_edge_vec());
        assert_eq!(a.mr_jobs, b.mr_jobs);
    }

    #[test]
    fn shared_flow_reports_every_job_of_every_phase() {
        let g = random_graph(5, 6, 3);
        let caps = Capacities::uniform(&g, 2, 2);
        let baseline = run(StackMr::new(test_config(17)), &g, &caps);

        let flow = FlowContext::new(JobConfig::named("stack-mr-test").with_threads(2));
        let run = StackMr::new(test_config(17)).run(&g, &caps, &flow);

        assert_eq!(run.matching.to_edge_vec(), baseline.matching.to_edge_vec());
        assert_eq!(run.mr_jobs, baseline.mr_jobs);
        let report = flow.report();
        assert_eq!(report.num_jobs(), run.mr_jobs);
        assert_eq!(
            report.total_shuffled_records(),
            run.total_shuffled_records()
        );
        // Coverage, maximal stages, push and pop all surface by name.
        let names = report.job_names().join(",");
        for phase in ["coverage-0", "maximal-0-mark-0", "push-0", "pop-"] {
            assert!(names.contains(phase), "missing {phase} in {names}");
        }
    }

    #[test]
    fn spilled_and_in_memory_runs_agree_on_the_matching() {
        let g = random_graph(6, 7, 3);
        let caps = Capacities::uniform(&g, 2, 2);
        let in_memory = run(
            StackMr::new(test_config(21).with_memory_budget(None)),
            &g,
            &caps,
        );
        let spilled = run(
            StackMr::new(test_config(21).with_memory_budget(Some(256))),
            &g,
            &caps,
        );
        assert_eq!(
            spilled.matching.to_edge_vec(),
            in_memory.matching.to_edge_vec()
        );
        assert_eq!(spilled.mr_jobs, in_memory.mr_jobs);
        assert_eq!(
            spilled.total_shuffled_records(),
            in_memory.total_shuffled_records()
        );
        assert!(
            spilled.job_metrics.iter().map(|m| m.disk_runs).sum::<u64>() > 0,
            "a 256-byte budget must force disk runs across the phases"
        );
    }

    #[test]
    fn counts_jobs_for_every_phase() {
        let g = random_graph(4, 5, 3);
        let caps = Capacities::uniform(&g, 1, 2);
        let run = run(StackMr::new(test_config(5)), &g, &caps);
        // At least one coverage job, four maximal-matching jobs, one push
        // job and one pop job.
        assert!(
            run.mr_jobs >= 7,
            "expected at least 7 jobs, got {}",
            run.mr_jobs
        );
        assert_eq!(run.job_metrics.len(), run.mr_jobs);
        assert!(run.rounds >= 2);
        assert!(run.total_shuffled_records() > 0);
    }

    #[test]
    fn empty_graph_terminates_with_no_layers() {
        let g = BipartiteGraph::from_edges(3, 3, vec![]);
        let caps = Capacities::uniform(&g, 1, 1);
        let run = run(StackMr::new(test_config(1)), &g, &caps);
        assert!(run.matching.is_empty());
        assert_eq!(run.rounds, 0);
    }

    #[test]
    fn smaller_epsilon_never_violates_more() {
        let g = random_graph(6, 6, 4);
        let caps = Capacities::uniform(&g, 3, 3);
        let loose = run(StackMr::new(test_config(9).with_epsilon(1.0)), &g, &caps);
        let tight = run(StackMr::new(test_config(9).with_epsilon(0.25)), &g, &caps);
        let loose_violation = loose.matching.max_violation(&g, &caps);
        let tight_violation = tight.matching.max_violation(&g, &caps);
        assert!(loose_violation <= 1.0 + 1e-9);
        assert!(tight_violation <= 0.25 + 1e-9 + 1.0 / 3.0); // ⌈εb⌉ rounding slack for b=3
    }

    #[test]
    fn single_edge_graph_matches_it() {
        let g = BipartiteGraph::from_edges(1, 1, vec![Edge::new(ItemId(0), ConsumerId(0), 5.0)]);
        let caps = Capacities::uniform(&g, 1, 1);
        let run = run(StackMr::new(test_config(2)), &g, &caps);
        assert_eq!(run.matching.to_edge_vec(), vec![0]);
        assert!((run.value(&g) - 5.0).abs() < 1e-9);
    }
}
