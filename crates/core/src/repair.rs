//! Repairing capacity violations.
//!
//! StackMR may exceed node capacities by a factor of up to (1+ε).  The
//! paper argues such violations are negligible for content delivery; for
//! deployments that cannot tolerate any violation this module turns an
//! arbitrary matching into a *feasible* one by dropping, at every
//! over-subscribed node, its lightest selected edges — the cheapest edges
//! to sacrifice.  The repaired matching loses at most the weight of the
//! dropped edges, which is bounded by `ε/(1+ε)` of the node's selected
//! weight per violated node in the StackMR case.

use smr_graph::{BipartiteGraph, Capacities, Matching, NodeId};

/// The outcome of a repair.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// The feasible matching after the repair.
    pub matching: Matching,
    /// Edges removed, in removal order.
    pub removed_edges: Vec<usize>,
    /// Total weight removed.
    pub removed_weight: f64,
}

/// Makes `matching` feasible for `caps` by repeatedly removing the
/// lightest selected edge incident to an over-subscribed node.
///
/// Removing an edge decreases the degree of both of its endpoints, so the
/// loop terminates after at most `len()` removals; on already-feasible
/// input it is a no-op.
pub fn repair_violations(
    graph: &BipartiteGraph,
    caps: &Capacities,
    matching: &Matching,
) -> RepairReport {
    assert!(
        caps.matches(graph),
        "capacities were built for a different graph"
    );
    let mut repaired = matching.clone();
    let mut removed_edges = Vec::new();
    let mut removed_weight = 0.0;

    // Collect the currently violated nodes once; removing edges can only
    // shrink degrees, so nodes never become violated during the repair.
    let mut violated: Vec<NodeId> = graph
        .nodes()
        .filter(|&v| repaired.degree(graph, v) as u64 > caps.of(v))
        .collect();

    while let Some(&node) = violated.last() {
        let overflow = repaired.degree(graph, node) as i64 - caps.of(node) as i64;
        if overflow <= 0 {
            violated.pop();
            continue;
        }
        // The lightest selected edge at this node (ties by edge id).
        let lightest = graph
            .incident_edges(node)
            .iter()
            .copied()
            .filter(|&e| repaired.contains(e))
            .min_by(|&a, &b| {
                graph
                    .edge(a)
                    .weight
                    .partial_cmp(&graph.edge(b).weight)
                    .expect("edge weights are finite")
                    .then(a.cmp(&b))
            })
            .expect("a violated node has selected edges");
        repaired.remove(lightest);
        removed_weight += graph.edge(lightest).weight;
        removed_edges.push(lightest);
    }

    debug_assert!(repaired.is_feasible(graph, caps));
    RepairReport {
        matching: repaired,
        removed_edges,
        removed_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StackMrConfig;
    use crate::stack_mr::StackMr;
    use smr_graph::{ConsumerId, Edge, ItemId};
    use smr_mapreduce::JobConfig;

    fn star_graph() -> BipartiteGraph {
        // One popular item connected to four consumers.
        BipartiteGraph::from_edges(
            1,
            4,
            vec![
                Edge::new(ItemId(0), ConsumerId(0), 4.0),
                Edge::new(ItemId(0), ConsumerId(1), 3.0),
                Edge::new(ItemId(0), ConsumerId(2), 2.0),
                Edge::new(ItemId(0), ConsumerId(3), 1.0),
            ],
        )
    }

    #[test]
    fn feasible_matchings_are_untouched() {
        let g = star_graph();
        let caps = Capacities::from_vectors(vec![2], vec![1, 1, 1, 1]);
        let m = Matching::from_edges(4, [0, 1]);
        let report = repair_violations(&g, &caps, &m);
        assert_eq!(report.matching, m);
        assert!(report.removed_edges.is_empty());
        assert_eq!(report.removed_weight, 0.0);
    }

    #[test]
    fn overflow_drops_the_lightest_edges_first() {
        let g = star_graph();
        let caps = Capacities::from_vectors(vec![2], vec![1, 1, 1, 1]);
        // All four edges selected: item 0 exceeds its capacity by 2.
        let m = Matching::from_edges(4, [0, 1, 2, 3]);
        let report = repair_violations(&g, &caps, &m);
        assert!(report.matching.is_feasible(&g, &caps));
        assert_eq!(report.matching.to_edge_vec(), vec![0, 1]);
        assert_eq!(report.removed_edges.len(), 2);
        assert!((report.removed_weight - 3.0).abs() < 1e-12);
    }

    #[test]
    fn repaired_stackmr_solutions_are_feasible_and_keep_most_value() {
        let g = smr_datagen_free_grid();
        let caps = Capacities::uniform(&g, 2, 2);
        let job = JobConfig::named("repair-test").with_threads(1);
        let run = StackMr::new(StackMrConfig::default().with_seed(23).with_job(job.clone())).run(
            &g,
            &caps,
            &smr_mapreduce::FlowContext::new(job),
        );
        let report = repair_violations(&g, &caps, &run.matching);
        assert!(report.matching.is_feasible(&g, &caps));
        assert!(report.matching.value(&g) <= run.matching.value(&g) + 1e-9);
        assert!(
            (report.matching.value(&g) + report.removed_weight - run.matching.value(&g)).abs()
                < 1e-9
        );
    }

    /// A deterministic medium-density grid graph (local helper to avoid a
    /// dev-dependency on `smr-datagen`).
    fn smr_datagen_free_grid() -> BipartiteGraph {
        let mut edges = Vec::new();
        let mut w = 0.2_f64;
        for t in 0..8u32 {
            for c in 0..8u32 {
                if (t + c) % 2 == 0 {
                    w = (w * 7.77 + 0.13).fract().max(0.05);
                    edges.push(Edge::new(ItemId(t), ConsumerId(c), w));
                }
            }
        }
        BipartiteGraph::from_edges(8, 8, edges)
    }

    #[test]
    fn every_removed_edge_was_selected_and_is_gone() {
        let g = star_graph();
        let caps = Capacities::from_vectors(vec![1], vec![1, 1, 1, 1]);
        let m = Matching::from_edges(4, [1, 2, 3]);
        let report = repair_violations(&g, &caps, &m);
        for &e in &report.removed_edges {
            assert!(m.contains(e));
            assert!(!report.matching.contains(e));
        }
        // Only the heaviest selected edge survives.
        assert_eq!(report.matching.to_edge_vec(), vec![1]);
    }
}
