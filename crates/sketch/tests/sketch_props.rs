//! Property tests locking the sketch generators to their two contracts:
//!
//! 1. **Determinism** — for a fixed seed, `DiscoSampler` and `LshBander`
//!    produce identical edge sets *and* identical candidate accounting
//!    across thread counts {1, 8} × memory budgets {4 KiB, ∞}.  All of
//!    their pseudo-randomness is stateless coordinate hashing, so nothing
//!    about engine scheduling may leak into the output.
//! 2. **Subset soundness** — every sketch edge also appears in the exact
//!    prefix-filter join's edge set with a **bit-identical** weight: the
//!    sketches pick candidates differently but verify them with the same
//!    exact dot product against the same aligned vectors.

use std::collections::HashMap;

use proptest::prelude::*;
use smr_mapreduce::flow::FlowContext;
use smr_mapreduce::JobConfig;
use smr_simjoin::SimJoinResult;
use smr_sketch::{CandidateGenerator, DiscoSampler, ExactPrefixJoin, LshBander};
use smr_text::{Corpus, Document, TokenizerConfig};

/// Builds a corpus of synthetic tag documents; `docs[d]` lists the tag
/// indices of document `d` (duplicates collapse in tokenization).
fn corpus(side: &str, docs: &[Vec<u8>]) -> Corpus {
    let documents: Vec<Document> = docs
        .iter()
        .enumerate()
        .map(|(d, tags)| {
            let text = tags
                .iter()
                .map(|t| format!("tag{t}"))
                .collect::<Vec<_>>()
                .join(" ");
            Document::new(format!("{side}{d}"), text)
        })
        .collect();
    Corpus::build(documents, &TokenizerConfig::default())
}

/// The canonical edge list of a graph: `(item, consumer, weight_bits)`
/// sorted by pair.
fn canonical_edges(graph: &smr_graph::BipartiteGraph) -> Vec<(u32, u32, u64)> {
    let mut edges: Vec<(u32, u32, u64)> = graph
        .edges()
        .iter()
        .map(|e| (e.item.0, e.consumer.0, e.weight.to_bits()))
        .collect();
    edges.sort_unstable();
    edges
}

fn run(
    generator: &dyn CandidateGenerator,
    items: &Corpus,
    consumers: &Corpus,
    sigma: f64,
    budget: Option<u64>,
    threads: usize,
) -> SimJoinResult {
    let flow = FlowContext::new(
        JobConfig::named("sketch-props")
            .with_threads(threads)
            .with_memory_budget(budget),
    );
    generator.generate(items, consumers, sigma, &flow)
}

/// The counters that must not depend on engine scheduling.
fn accounting(result: &SimJoinResult) -> (usize, usize, usize, usize, u64) {
    (
        result.candidate_pairs,
        result.candidates_pruned,
        result.verify_exact,
        result.indexed_entries,
        result.shuffled_records,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sketches_are_deterministic_and_subsets_of_the_exact_join(
        item_docs in proptest::collection::vec(
            proptest::collection::vec(0u8..24, 0..10), 1..12),
        consumer_docs in proptest::collection::vec(
            proptest::collection::vec(0u8..24, 0..10), 1..14),
        seed in 0u64..1024,
    ) {
        let items = corpus("t", &item_docs);
        let consumers = corpus("c", &consumer_docs);
        let sigma = 0.2;

        let exact = run(&ExactPrefixJoin::new(), &items, &consumers, sigma, None, 2);
        let exact_weights: HashMap<(u32, u32), u64> = exact
            .graph
            .edges()
            .iter()
            .map(|e| ((e.item.0, e.consumer.0), e.weight.to_bits()))
            .collect();

        let sketches: Vec<Box<dyn CandidateGenerator>> = vec![
            Box::new(DiscoSampler::new(seed, 4.0)),
            Box::new(LshBander::new(seed, 8, 2)),
        ];
        for generator in &sketches {
            let reference = run(generator.as_ref(), &items, &consumers, sigma, None, 1);
            prop_assert_eq!(&reference.generator, &generator.name());

            // (b) subset with bit-identical scores.
            for edge in reference.graph.edges() {
                let exact_bits = exact_weights.get(&(edge.item.0, edge.consumer.0));
                prop_assert!(
                    exact_bits == Some(&edge.weight.to_bits()),
                    "{}: edge ({}, {}) missing from the exact join or scored \
                     differently (sketch bits {:?}, exact bits {:?})",
                    generator.name(),
                    edge.item.0,
                    edge.consumer.0,
                    edge.weight.to_bits(),
                    exact_bits
                );
            }

            // (a) determinism across engine configurations.
            let reference_edges = canonical_edges(&reference.graph);
            for budget in [Some(4 * 1024u64), None] {
                for threads in [1usize, 8] {
                    let result =
                        run(generator.as_ref(), &items, &consumers, sigma, budget, threads);
                    prop_assert!(
                        canonical_edges(&result.graph) == reference_edges,
                        "{}: edges changed under budget={budget:?} threads={threads}",
                        generator.name()
                    );
                    prop_assert!(
                        accounting(&result) == accounting(&reference),
                        "{}: counters changed under budget={budget:?} threads={threads}",
                        generator.name()
                    );
                }
            }

            // Closed candidate accounting, uniformly phrased for every
            // generator: generated = pruned + exactly-verified.
            prop_assert_eq!(
                reference.candidate_pairs,
                reference.candidates_pruned + reference.verify_exact
            );
        }
    }
}

/// A λ far beyond every posting-list length samples nothing out: DISCO
/// degenerates to the exact join, edge for edge, bit for bit.
#[test]
fn disco_with_huge_lambda_recovers_the_exact_join() {
    let items = corpus("t", &[vec![0, 1, 2], vec![2, 3, 4], vec![5, 6]]);
    let consumers = corpus(
        "c",
        &[
            vec![0, 1],
            vec![2, 3],
            vec![4, 5, 6],
            vec![7, 8],
            vec![1, 2, 3],
        ],
    );
    let sigma = 0.1;
    let exact = run(&ExactPrefixJoin::new(), &items, &consumers, sigma, None, 2);
    let disco = run(
        &DiscoSampler::new(99, 1e9),
        &items,
        &consumers,
        sigma,
        None,
        2,
    );
    assert_eq!(canonical_edges(&disco.graph), canonical_edges(&exact.graph));
    assert_eq!(disco.candidate_pairs, exact.candidate_pairs);
    assert_eq!(disco.verify_exact, exact.verify_exact);
    assert_eq!(disco.indexed_entries, exact.indexed_entries);
}

/// The uniform shuffle counters are wired for every generator: per-stage
/// entries match the job metrics, and the totals are their sums.
#[test]
fn stage_shuffle_counters_are_uniform_across_generators() {
    let items = corpus("t", &[vec![0, 1, 2], vec![2, 3, 4], vec![4, 5, 6]]);
    let consumers = corpus("c", &[vec![0, 1, 3], vec![2, 4, 5], vec![5, 6, 7]]);
    let generators: Vec<Box<dyn CandidateGenerator>> = vec![
        Box::new(ExactPrefixJoin::new()),
        Box::new(DiscoSampler::new(3, 4.0)),
        Box::new(LshBander::new(3, 8, 2)),
    ];
    for generator in &generators {
        let result = run(generator.as_ref(), &items, &consumers, 0.15, None, 2);
        assert_eq!(result.job_metrics.len(), 2, "{}", generator.name());
        assert_eq!(result.stage_shuffles.len(), 2, "{}", generator.name());
        for (stage, metrics) in result.stage_shuffles.iter().zip(&result.job_metrics) {
            assert_eq!(stage.job_name, metrics.job_name);
            assert_eq!(stage.records, metrics.shuffle_records);
            assert_eq!(stage.bytes, metrics.shuffle_bytes);
        }
        assert_eq!(
            result.shuffled_records,
            result.stage_shuffles.iter().map(|s| s.records).sum::<u64>()
        );
        assert_eq!(
            result.shuffled_bytes,
            result.stage_shuffles.iter().map(|s| s.bytes).sum::<u64>()
        );
    }
}
