//! Stateless deterministic hashing for the sketch generators.
//!
//! Both [`crate::DiscoSampler`] and [`crate::LshBander`] must produce
//! identical output for any thread count, memory budget or shard layout.
//! That rules out any stateful RNG (whose stream depends on which worker
//! draws first): every pseudo-random decision here is a *pure function* of
//! the seed and the record's own coordinates (term id, document indices,
//! hash-function index), computed with the splitmix64 finalizer — cheap,
//! well-mixed, and identical wherever the record is mapped.

/// The splitmix64 mixing step: advances `z` by the golden-ratio increment
/// and applies the two-round finalizer.  Every hash in this crate is built
/// by folding words through this function.
#[inline]
pub fn splitmix64(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Folds a sequence of words into one well-mixed 64-bit hash, starting
/// from `seed`.  Order-sensitive: `hash_words(s, &[a, b])` and
/// `hash_words(s, &[b, a])` are unrelated.
#[inline]
pub fn hash_words(seed: u64, words: &[u64]) -> u64 {
    let mut h = splitmix64(seed);
    for &w in words {
        h = splitmix64(h ^ w);
    }
    h
}

/// Maps a hash to a uniform `f64` in `[0, 1)` using its top 53 bits, so
/// `hash_unit(h) < p` happens with probability `p` for uniform `h`.
#[inline]
pub fn hash_unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Adjacent inputs differ in many bits.
        let d = (splitmix64(41) ^ splitmix64(42)).count_ones();
        assert!(d > 16, "poor avalanche: {d} differing bits");
    }

    #[test]
    fn hash_words_is_order_sensitive() {
        assert_ne!(hash_words(7, &[1, 2]), hash_words(7, &[2, 1]));
        assert_ne!(hash_words(7, &[1, 2]), hash_words(8, &[1, 2]));
        assert_eq!(hash_words(7, &[1, 2]), hash_words(7, &[1, 2]));
    }

    #[test]
    fn hash_unit_lands_in_the_half_open_interval() {
        for x in [0u64, 1, u64::MAX, 0xdead_beef] {
            let u = hash_unit(splitmix64(x));
            assert!((0.0..1.0).contains(&u), "{u}");
        }
        assert_eq!(hash_unit(0), 0.0);
    }

    #[test]
    fn hash_unit_is_roughly_uniform() {
        let n = 4096;
        let mean: f64 = (0..n).map(|i| hash_unit(splitmix64(i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
