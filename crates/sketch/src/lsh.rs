//! MinHash/LSH banding as a candidate-generation job pair.
//!
//! Instead of probing an inverted index, consumers are summarized by
//! MinHash signatures over their term *sets*: `sig[i] = min_t h_i(t)`
//! over the vector's terms, for `bands × rows` seeded hash functions.
//! Two documents agree on `sig[i]` with probability equal to their
//! Jaccard similarity, so hashing the signature in bands of `rows`
//! values buckets similar documents together: a pair lands in the same
//! bucket of at least one band with probability `1 − (1 − j^rows)^bands`
//! — the classic LSH S-curve, steep around `(1/bands)^(1/rows)`.
//!
//! * **Job 1 — banding**: every consumer emits `(band key, doc)` for each
//!   of its bands; the reducer streams the grouped band postings through,
//!   and the chain's `then` materializes them as a sorted bucket list that
//!   the probe mappers share (the distributed-cache role the partitioned
//!   index plays for the exact join).
//! * **Job 2 — bucket probe + verification**: every item computes its own
//!   signature with the *same* seeded hash functions, looks up its band
//!   keys, and emits each distinct co-bucketed consumer once.  A dedicated
//!   verify reducer fetches the pair's vectors from the chunked
//!   [`DiskVectorStore`]s and keeps the pair only if the exact dot product
//!   reaches σ — so, as with DISCO, the output is a subset of the exact
//!   join's edges with bit-identical scores.
//!
//! MinHash approximates *Jaccard* while the join thresholds *cosine*; the
//! two agree on direction (shared terms) but not on weights, which is
//! precisely the recall the frontier table measures.  All hashing is
//! stateless ([`crate::hash`]), so the generator is deterministic for any
//! thread count, memory budget or shard layout.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use smr_mapreduce::flow::FlowContext;
use smr_mapreduce::{Counters, Emitter, Mapper, Reducer};
use smr_simjoin::join::counter as sj_counter;
use smr_simjoin::{DiskVectorStore, SimJoinResult};
use smr_text::SparseVector;

use crate::common::{build_graph, cleanup_side, open_side, vocab_size, SideData};
use crate::hash::hash_words;
use crate::CandidateGenerator;

/// The MinHash/LSH banding generator.
///
/// `bands × rows` is the signature length.  More rows per band make a
/// band agreement stricter (higher precision, lower recall); more bands
/// give a pair more chances to collide (higher recall, more candidates).
#[derive(Debug, Clone, Copy)]
pub struct LshBander {
    seed: u64,
    bands: usize,
    rows: usize,
}

impl LshBander {
    /// Creates a bander with the given seed and banding shape.
    ///
    /// # Panics
    /// Panics if `bands` or `rows` is zero.
    pub fn new(seed: u64, bands: usize, rows: usize) -> Self {
        assert!(bands > 0, "bands must be positive");
        assert!(rows > 0, "rows must be positive");
        LshBander { seed, bands, rows }
    }

    /// The signature seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of bands.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Rows (signature values) per band.
    pub fn rows(&self) -> usize {
        self.rows
    }
}

/// The MinHash signature of a vector's term set: `bands × rows` minima of
/// seeded term hashes.  Items and consumers must use the same `(seed,
/// bands, rows)` so their band keys are comparable.
fn signature(vector: &SparseVector, seed: u64, bands: usize, rows: usize) -> Vec<u64> {
    let mut sig = vec![u64::MAX; bands * rows];
    for &(term, _) in vector.entries() {
        for (i, slot) in sig.iter_mut().enumerate() {
            let h = hash_words(seed, &[i as u64, term.0 as u64]);
            if h < *slot {
                *slot = h;
            }
        }
    }
    sig
}

/// The bucket key of one band: the band index folded with its `rows`
/// signature values, so equal keys mean equal band slices (up to hash
/// collision — which only ever *adds* candidates, all exactly verified).
fn band_key(seed: u64, band: usize, rows: &[u64]) -> u64 {
    let mut words = Vec::with_capacity(rows.len() + 1);
    words.push(band as u64);
    words.extend_from_slice(rows);
    hash_words(seed ^ 0x5bd1_e995_9d1b_54a5, &words)
}

/// Job 1's mapper: each consumer's `bands` band keys.
struct BandMapper {
    consumers: Arc<[SparseVector]>,
    seed: u64,
    bands: usize,
    rows: usize,
}

impl Mapper for BandMapper {
    type InKey = usize; // consumer dense index
    type InValue = usize; // ditto
    type OutKey = u64; // band bucket key
    type OutValue = u32; // consumer dense index

    fn map(&self, doc: &usize, _: &usize, out: &mut Emitter<u64, u32>) {
        let vector = &self.consumers[*doc];
        if vector.entries().is_empty() {
            return;
        }
        let sig = signature(vector, self.seed, self.bands, self.rows);
        for band in 0..self.bands {
            let key = band_key(
                self.seed,
                band,
                &sig[band * self.rows..(band + 1) * self.rows],
            );
            out.emit(key, *doc as u32);
        }
    }
}

/// Streams each bucket's members through unchanged (the engine's merge
/// already groups them per key, in doc order).
#[derive(Debug, Default)]
struct BandReducer;

impl Reducer for BandReducer {
    type Key = u64;
    type InValue = u32;
    type OutKey = u64;
    type OutValue = u32;

    fn reduce(&self, key: &u64, docs: &[u32], out: &mut Emitter<u64, u32>) {
        for doc in docs {
            out.emit(*key, *doc);
        }
    }
}

/// Job 2's mapper: an item's band keys, looked up in the shared sorted
/// bucket list; every distinct co-bucketed consumer becomes exactly one
/// emitted candidate pair (deduplicated across bands locally, so a pair
/// costs one shuffle record however many bands it collides in).
struct BucketProbeMapper {
    items: Arc<[SparseVector]>,
    buckets: Arc<Vec<(u64, Vec<u32>)>>,
    seed: u64,
    bands: usize,
    rows: usize,
}

impl Mapper for BucketProbeMapper {
    type InKey = usize; // item dense index
    type InValue = usize; // ditto
    type OutKey = (usize, usize); // (item, consumer) candidate pair
    type OutValue = ();

    fn map(&self, item: &usize, _: &usize, out: &mut Emitter<(usize, usize), ()>) {
        let vector = &self.items[*item];
        if vector.entries().is_empty() {
            return;
        }
        let sig = signature(vector, self.seed, self.bands, self.rows);
        let mut candidates: BTreeSet<u32> = BTreeSet::new();
        for band in 0..self.bands {
            let key = band_key(
                self.seed,
                band,
                &sig[band * self.rows..(band + 1) * self.rows],
            );
            if let Ok(i) = self.buckets.binary_search_by_key(&key, |(k, _)| *k) {
                candidates.extend(self.buckets[i].1.iter().copied());
            }
        }
        for consumer in candidates {
            out.emit((*item, consumer as usize), ());
        }
    }
}

/// Verifies every candidate pair exactly: one chunked vector fetch per
/// side and one dot product, keeping the pair only at `similarity ≥ σ`.
/// Unlike the exact join's verify stage there is no partial score to
/// pre-threshold — LSH candidates arrive with no evidence beyond the
/// collision itself.
struct BucketVerifyReducer {
    items: DiskVectorStore,
    consumers: DiskVectorStore,
    sigma: f64,
    counters: Counters,
}

impl Reducer for BucketVerifyReducer {
    type Key = (usize, usize);
    type InValue = ();
    type OutKey = (usize, usize);
    type OutValue = f64;

    fn reduce(&self, pair: &(usize, usize), _: &[()], out: &mut Emitter<(usize, usize), f64>) {
        let (item, consumer) = *pair;
        self.counters.add(sj_counter::VERIFY_EXACT, 1);
        let similarity = self
            .items
            .with_vector(item, |x| self.consumers.with_vector(consumer, |y| x.dot(y)));
        if similarity >= self.sigma {
            out.emit(*pair, similarity);
        }
    }
}

impl CandidateGenerator for LshBander {
    fn name(&self) -> String {
        format!("lsh-{}x{}", self.bands, self.rows)
    }

    fn generate_vectors(
        &self,
        item_vectors: &[SparseVector],
        consumer_vectors: &[SparseVector],
        item_names: &[String],
        consumer_names: &[String],
        sigma: f64,
        flow: &FlowContext,
    ) -> SimJoinResult {
        assert_eq!(item_vectors.len(), item_names.len());
        assert_eq!(consumer_vectors.len(), consumer_names.len());
        assert!(sigma > 0.0, "threshold must be positive");

        // The banding jobs never look at term weights, but the vocabulary
        // check keeps misuse loud: a term id beyond either side's space
        // would mean the corpora were not aligned.
        let _ = vocab_size(item_vectors, consumer_vectors);
        let items: Arc<[SparseVector]> = item_vectors.into();
        let consumers: Arc<[SparseVector]> = consumer_vectors.into();

        let jobs_start = flow.num_jobs();
        let SideData {
            side,
            prefix,
            item_store,
            consumer_store,
        } = open_side(flow, "lsh", jobs_start, item_vectors, consumer_vectors);

        let counters = Counters::new();
        let indexed_entries = Arc::new(AtomicUsize::new(0));
        let indexed_entries_probe = Arc::clone(&indexed_entries);

        let band_input: Vec<(usize, usize)> = (0..consumers.len()).map(|i| (i, i)).collect();
        let probe_input: Vec<(usize, usize)> = (0..items.len()).map(|i| (i, i)).collect();
        let probe_items = Arc::clone(&items);
        let probe_counters = counters.clone();
        let (seed, bands, rows) = (self.seed, self.bands, self.rows);

        let verified = flow
            .dataset(band_input)
            .map_with(BandMapper {
                consumers: Arc::clone(&consumers),
                seed,
                bands,
                rows,
            })
            .named("lsh-bands")
            .reduce_with(BandReducer)
            .then(move |postings, flow| {
                // Job 1's output becomes job 2's side data.  Each bucket
                // arrives as one contiguous run (one reduce group, members
                // in doc order), but runs are ordered by reduce partition,
                // not globally by key — so group by adjacency, then sort
                // the buckets so probe lookups are binary searches and the
                // list is identical under every partition layout.
                indexed_entries_probe.store(postings.len(), Ordering::Relaxed);
                let mut buckets: Vec<(u64, Vec<u32>)> = Vec::new();
                for (key, doc) in postings {
                    match buckets.last_mut() {
                        Some((k, docs)) if *k == key => docs.push(doc),
                        _ => buckets.push((key, vec![doc])),
                    }
                }
                buckets.sort_unstable_by_key(|(key, _)| *key);
                probe_counters.add(crate::counter::BAND_BUCKETS, buckets.len() as u64);
                let buckets = Arc::new(buckets);
                flow.dataset(probe_input)
                    .map_with(BucketProbeMapper {
                        items: probe_items,
                        buckets,
                        seed,
                        bands,
                        rows,
                    })
                    .named("lsh-probe")
                    .with_counters(probe_counters.clone())
                    .reduce_with(BucketVerifyReducer {
                        items: item_store,
                        consumers: consumer_store,
                        sigma,
                        counters: probe_counters,
                    })
            })
            .collect();

        cleanup_side(&side, &prefix);

        let job_metrics = flow.jobs_from(jobs_start);
        let verify_exact = counters.get(sj_counter::VERIFY_EXACT) as usize;
        // Every candidate is verified — LSH has no pre-verification prune,
        // so generated candidates are exactly the reduce-input groups.
        let candidate_pairs = job_metrics
            .last()
            .map(|m| m.reduce_input_groups as usize)
            .unwrap_or(0);

        SimJoinResult::assemble(
            self.name(),
            build_graph(item_names, consumer_names, verified),
            candidate_pairs,
            0,
            verify_exact,
            0,
            indexed_entries.load(Ordering::Relaxed),
            job_metrics,
        )
    }
}
