//! The reference generator: the exact prefix-filter join, recall = 1.0 by
//! construction.

use smr_mapreduce::flow::FlowContext;
use smr_simjoin::{mapreduce_similarity_join_vectors_flow, SimJoinResult, EXACT_GENERATOR};
use smr_text::SparseVector;

use crate::CandidateGenerator;

/// Wraps [`mapreduce_similarity_join_vectors_flow`] behind the
/// [`CandidateGenerator`] interface.  This is the default generator of the
/// matching pipeline and the frontier's reference point: it misses no pair
/// with similarity ≥ σ, so every sketch generator's recall is measured
/// against its edge set.  Going through this type is byte-identical to
/// calling the join directly — it adds nothing and removes nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactPrefixJoin;

impl ExactPrefixJoin {
    /// Creates the exact generator.
    pub fn new() -> Self {
        ExactPrefixJoin
    }
}

impl CandidateGenerator for ExactPrefixJoin {
    fn name(&self) -> String {
        EXACT_GENERATOR.to_string()
    }

    fn generate_vectors(
        &self,
        item_vectors: &[SparseVector],
        consumer_vectors: &[SparseVector],
        item_names: &[String],
        consumer_names: &[String],
        sigma: f64,
        flow: &FlowContext,
    ) -> SimJoinResult {
        mapreduce_similarity_join_vectors_flow(
            item_vectors,
            consumer_vectors,
            item_names,
            consumer_names,
            sigma,
            flow,
        )
    }
}
