//! Sketch-based candidate generation: pluggable alternatives to the exact
//! prefix-filter similarity join.
//!
//! The paper's pipeline spends its pre-matching budget producing the
//! candidate-edge graph, and the exact join's shuffle volume grows with
//! the dimension of the data.  This crate abstracts the generation step
//! behind [`CandidateGenerator`] and provides three implementations, all
//! expressed as the same two-job `Dataset` chain over a shared
//! [`FlowContext`]:
//!
//! * [`ExactPrefixJoin`] — the existing prefix-filter join, recall = 1.0
//!   by construction; the reference every sketch is measured against.
//! * [`DiscoSampler`] — DISCO-style sampled probing: per-term sampling
//!   probability `min(1, λ/n_t)` caps each term's expected emissions at λ
//!   regardless of its posting-list length (see [`disco`]).
//! * [`LshBander`] — seeded MinHash signatures banded into bucket keys; a
//!   band-bucket join replaces the inverted-index probe (see [`lsh`]).
//!
//! Both sketches close their chains with **exact verification** against
//! the chunked [`smr_simjoin::DiskVectorStore`], so whatever candidates
//! they surface carry true scores: a sketch generator's edge set is
//! always a *subset* of the exact join's, with bit-identical weights on
//! surviving pairs.  What varies is recall and shuffle volume — the
//! frontier the `run-experiments sketch` harness in `smr_bench` measures.
//! All pseudo-randomness is stateless coordinate hashing ([`hash`]), so
//! every generator honours the engine's determinism contract: identical
//! output for any thread count, memory budget or shard layout.
//!
//! # Example
//!
//! ```
//! use smr_sketch::{CandidateGenerator, DiscoSampler, ExactPrefixJoin};
//! use smr_mapreduce::flow::FlowContext;
//! use smr_mapreduce::JobConfig;
//! use smr_text::prelude::*;
//!
//! let items = Corpus::build(
//!     vec![Document::new("q0", "sourdough bread baking")],
//!     &TokenizerConfig::default(),
//! );
//! let consumers = Corpus::build(
//!     vec![Document::new("u0", "I bake sourdough bread every weekend")],
//!     &TokenizerConfig::default(),
//! );
//! let flow = FlowContext::new(JobConfig::named("sketch-doc"));
//! let exact = ExactPrefixJoin::new().generate(&items, &consumers, 0.05, &flow);
//! let disco = DiscoSampler::new(7, 8.0).generate(&items, &consumers, 0.05, &flow);
//! // A sketch's edges are a subset of the exact join's.
//! assert!(disco.graph.num_edges() <= exact.graph.num_edges());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod common;
pub mod disco;
pub mod exact;
pub mod hash;
pub mod lsh;

use smr_mapreduce::flow::FlowContext;
use smr_simjoin::{align_vector_spaces, corpus_labels, SimJoinResult};
use smr_text::{Corpus, SparseVector};

pub use disco::DiscoSampler;
pub use exact::ExactPrefixJoin;
pub use lsh::LshBander;

/// Names of the sketch generators' domain counters, reported in their
/// probe job's [`smr_mapreduce::JobMetrics::user_counters`] alongside the
/// exact join's counters (`smr_simjoin::join::counter`).
pub mod counter {
    /// Posting contributions a [`crate::DiscoSampler`] probe skipped
    /// because their coordinate hash did not clear the term's sampling
    /// probability — the work (and downstream shuffle) the sampler saved.
    pub const SAMPLED_OUT: &str = "disco_sampled_out";
    /// Distinct band buckets a [`crate::LshBander`] run materialized
    /// between its two jobs.
    pub const BAND_BUCKETS: &str = "lsh_band_buckets";
}

/// A swappable candidate-generation strategy: anything that can turn two
/// aligned corpora and a threshold σ into a [`SimJoinResult`] by running
/// jobs on a [`FlowContext`].
///
/// Implementations must uphold two contracts the rest of the pipeline
/// relies on:
///
/// 1. **Soundness** — every emitted edge carries the pair's *exact*
///    similarity and satisfies `weight ≥ σ`.  Sketch generators achieve
///    this by exact verification of whatever candidates they surface, so
///    their edge sets are subsets of [`ExactPrefixJoin`]'s with
///    bit-identical weights (only *recall* may be lost, never precision).
/// 2. **Determinism** — the result is identical for any thread count,
///    memory budget or shard layout, given the generator's own
///    configuration (e.g. its seed).
pub trait CandidateGenerator: std::fmt::Debug + Send + Sync {
    /// Short tag identifying the generator (and its salient parameters)
    /// in [`SimJoinResult::generator`] and frontier tables — e.g.
    /// `"exact"`, `"disco-16"`, `"lsh-8x4"`.
    fn name(&self) -> String;

    /// Runs the generator on pre-aligned vectors (both sides must share
    /// one term space; see [`align_vector_spaces`]).
    fn generate_vectors(
        &self,
        item_vectors: &[SparseVector],
        consumer_vectors: &[SparseVector],
        item_names: &[String],
        consumer_names: &[String],
        sigma: f64,
        flow: &FlowContext,
    ) -> SimJoinResult;

    /// Runs the generator on two corpora, aligning their vector spaces
    /// first — the same alignment the exact join applies, so verified
    /// scores are comparable (indeed bit-identical) across generators.
    fn generate(
        &self,
        items: &Corpus,
        consumers: &Corpus,
        sigma: f64,
        flow: &FlowContext,
    ) -> SimJoinResult {
        let (item_vectors, consumer_vectors) = align_vector_spaces(items, consumers);
        self.generate_vectors(
            &item_vectors,
            &consumer_vectors,
            &corpus_labels(items),
            &corpus_labels(consumers),
            sigma,
            flow,
        )
    }
}

/// Convenience re-exports.
pub mod prelude {
    pub use crate::{CandidateGenerator, DiscoSampler, ExactPrefixJoin, LshBander};
}
