//! Plumbing shared by the sketch generators: every generator aligns with
//! the exact join on its side-data layout (chunked vector stores in the
//! flow's side store, reclaimed once the chain has run) and on how the
//! final candidate-edge graph is assembled, so results differ only in the
//! candidate set itself.

use smr_graph::{BipartiteGraph, GraphBuilder};
use smr_mapreduce::flow::FlowContext;
use smr_simjoin::DiskVectorStore;
use smr_storage::DatasetStore;
use smr_text::SparseVector;

/// The implicit vocabulary size of two aligned vector sets (one past the
/// highest term id on either side) — identical to the exact join's.
pub(crate) fn vocab_size(items: &[SparseVector], consumers: &[SparseVector]) -> usize {
    items
        .iter()
        .chain(consumers.iter())
        .flat_map(|v| v.entries().iter().map(|(t, _)| t.index() + 1))
        .max()
        .unwrap_or(0)
}

/// A generator's transient side data: the flow's side store plus the two
/// chunked vector stores the verify stage fetches survivor vectors from.
pub(crate) struct SideData {
    pub side: DatasetStore,
    pub prefix: String,
    pub item_store: DiskVectorStore,
    pub consumer_store: DiskVectorStore,
}

/// Persists both corpora as chunked vector datasets under a
/// generator-unique prefix in the flow's side store.
pub(crate) fn open_side(
    flow: &FlowContext,
    tag: &str,
    jobs_start: usize,
    items: &[SparseVector],
    consumers: &[SparseVector],
) -> SideData {
    let side = flow.side_store();
    // Unique per generator invocation within this flow, so chained joins
    // (or mixed generators in one pipeline) never collide.
    let prefix = format!("{tag}-{jobs_start}");
    let item_store = DiskVectorStore::write(&side, &format!("{prefix}/items"), items);
    let consumer_store = DiskVectorStore::write(&side, &format!("{prefix}/consumers"), consumers);
    SideData {
        side,
        prefix,
        item_store,
        consumer_store,
    }
}

/// Reclaims everything written under a generator's prefix — the side data
/// is dead once the chain has run.  Free-standing (rather than a method)
/// because generators move the vector stores out of [`SideData`] into
/// their verify stage before cleaning up.
pub(crate) fn cleanup_side(side: &DatasetStore, prefix: &str) {
    let dataset_prefix = format!("{prefix}/");
    for path in side.paths() {
        if path.starts_with(&dataset_prefix) {
            side.remove(&path);
        }
    }
}

/// Assembles the candidate-edge graph from verified `(item, consumer) →
/// similarity` records, exactly as the exact join does (same node order,
/// same edge order, same weights).
pub(crate) fn build_graph(
    item_names: &[String],
    consumer_names: &[String],
    verified: Vec<((usize, usize), f64)>,
) -> BipartiteGraph {
    let mut builder = GraphBuilder::new();
    for name in item_names {
        builder.add_item(name.clone());
    }
    for name in consumer_names {
        builder.add_consumer(name.clone());
    }
    for ((item, consumer), similarity) in verified {
        builder.add_edge(
            smr_graph::ItemId(item as u32),
            smr_graph::ConsumerId(consumer as u32),
            similarity,
        );
    }
    builder.build()
}
