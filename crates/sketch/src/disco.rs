//! DISCO-style sampled probing (Bosagh Zadeh & Goel, *Dimension
//! Independent Similarity Computation*).
//!
//! The exact probe emits one partial product per `(item, consumer)`
//! co-occurrence on an indexed term, so popular terms with `n_t` postings
//! contribute `O(n_t)` work and shuffle volume per probing item — the
//! communication cost scales with the dimension of the data.  DISCO's
//! observation is that popular terms are also the most *redundant*: a pair
//! that is similar shares many terms, so sampling each term's
//! contributions with probability `p_t = min(1, λ/n_t)` (and scaling the
//! surviving contributions by `1/p_t` to keep the score estimate
//! unbiased) caps every term's expected emissions at λ regardless of
//! `n_t`, making the probe's cost independent of term popularity.
//!
//! The sampled estimate only *selects* candidates; every survivor still
//! goes through the exact [`VerifyReducer`], so emitted edges carry true,
//! bit-identical scores and the output is always a subset of the exact
//! join's edge set.  Recall is lost in two places: a pair whose sampled
//! contributions all miss is never seen, and a pair whose estimate
//! undershoots σ is pruned before verification.
//!
//! Sampling decisions are pure functions of `(seed, term, item, consumer)`
//! ([`crate::hash`]), so the generator is deterministic for any thread
//! count, memory budget or shard layout — the engine's determinism
//! contract holds for the sketch path exactly as for the exact path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use smr_mapreduce::flow::FlowContext;
use smr_mapreduce::{Counters, Emitter, Mapper};
use smr_simjoin::join::counter as sj_counter;
use smr_simjoin::{
    rarest_first_rank, term_max_weights, IndexMapper, IndexReducer, PartialScore,
    PartialScoreCombiner, PartitionedIndex, ScoreAccumulator, SimJoinResult, VerifyReducer,
    PRUNE_SLACK,
};
use smr_text::SparseVector;

use crate::common::{build_graph, cleanup_side, open_side, vocab_size, SideData};
use crate::hash::{hash_unit, hash_words};
use crate::CandidateGenerator;

/// The DISCO sampling generator: exact index job, sampled probe job,
/// exact verification.
///
/// `lambda` is the expected number of postings sampled per term per
/// probing item: larger λ samples more (λ ≥ max posting-list length is
/// exactly the full probe), smaller λ trades recall for shuffle volume.
#[derive(Debug, Clone, Copy)]
pub struct DiscoSampler {
    seed: u64,
    lambda: f64,
}

impl DiscoSampler {
    /// Creates a sampler with the given seed and per-term emission
    /// budget λ.
    ///
    /// # Panics
    /// Panics if `lambda` is not strictly positive.
    pub fn new(seed: u64, lambda: f64) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        DiscoSampler { seed, lambda }
    }

    /// The sampling seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-term emission budget λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

/// The sampled probe mapper: [`super::CandidateGenerator`] plumbing aside,
/// this is the exact probe mapper with one extra conditional — a posting's
/// contribution enters the partial score only if its coordinate hash
/// clears the term's sampling probability, scaled by `1/p_t` when it does.
struct SampledProbeMapper {
    items: Arc<[SparseVector]>,
    index: Arc<PartitionedIndex>,
    sigma: f64,
    seed: u64,
    lambda: f64,
    counters: Counters,
}

impl Mapper for SampledProbeMapper {
    type InKey = usize; // item dense index
    type InValue = usize; // ditto
    type OutKey = (usize, usize); // (item, consumer) candidate pair
    type OutValue = PartialScore;

    fn map(&self, item: &usize, _: &usize, out: &mut Emitter<(usize, usize), PartialScore>) {
        let entries = self.items[*item].entries();
        if entries.is_empty() {
            return;
        }
        // Like the exact probe, all of an item's probing happens in this
        // one call: partials accumulate locally in ascending term order
        // (term-range partitions visited in order, terms in order within
        // each), so the floating-point estimate is scheduling-independent
        // and the suffix-bound prune runs on complete estimates.
        let mut scores = ScoreAccumulator::new();
        let mut sampled_out = 0u64;
        let mut start = 0;
        while start < entries.len() {
            let p = self.index.partition_of(entries[start].0);
            let mut end = start + 1;
            while end < entries.len() && self.index.partition_of(entries[end].0) == p {
                end += 1;
            }
            let partition = self.index.partition(p);
            if !partition.is_empty() {
                for &(term, weight) in &entries[start..end] {
                    let postings = partition.postings(term.0);
                    if postings.is_empty() {
                        continue;
                    }
                    // A term never straddles partitions, so this list is
                    // the term's entire (prefix-pruned) posting list and
                    // n_t is a global property of the index.
                    let keep = (self.lambda / postings.len() as f64).min(1.0);
                    for i in 0..postings.len() {
                        let doc = postings.docs[i];
                        if keep < 1.0 {
                            let h =
                                hash_words(self.seed, &[term.0 as u64, *item as u64, doc as u64]);
                            if hash_unit(h) >= keep {
                                sampled_out += 1;
                                continue;
                            }
                        }
                        // Inverse-probability scaling keeps the estimate
                        // unbiased, so the σ prune below is a noisy but
                        // centred version of the exact prune.
                        scores.accumulate(
                            doc,
                            weight * postings.weights[i] / keep,
                            postings.bounds[i],
                        );
                    }
                }
            }
            start = end;
        }
        let candidates = scores.drain_sorted();
        let mut pruned = 0u64;
        for (doc, partial) in candidates {
            if partial.score + partial.remainder >= self.sigma - PRUNE_SLACK {
                out.emit((*item, doc), partial);
            } else {
                pruned += 1;
            }
        }
        if pruned > 0 {
            self.counters.add(sj_counter::CANDIDATES_PRUNED, pruned);
        }
        if sampled_out > 0 {
            self.counters.add(crate::counter::SAMPLED_OUT, sampled_out);
        }
    }
}

impl CandidateGenerator for DiscoSampler {
    fn name(&self) -> String {
        if self.lambda.fract() == 0.0 {
            format!("disco-{}", self.lambda as u64)
        } else {
            format!("disco-{}", self.lambda)
        }
    }

    fn generate_vectors(
        &self,
        item_vectors: &[SparseVector],
        consumer_vectors: &[SparseVector],
        item_names: &[String],
        consumer_names: &[String],
        sigma: f64,
        flow: &FlowContext,
    ) -> SimJoinResult {
        assert_eq!(item_vectors.len(), item_names.len());
        assert_eq!(consumer_vectors.len(), consumer_names.len());
        assert!(sigma > 0.0, "threshold must be positive");

        let vocab = vocab_size(item_vectors, consumer_vectors);
        let max_weights = Arc::new(term_max_weights(item_vectors, vocab));
        let term_order_rank = Arc::new(rarest_first_rank(item_vectors, consumer_vectors, vocab));
        let items: Arc<[SparseVector]> = item_vectors.into();
        let consumers: Arc<[SparseVector]> = consumer_vectors.into();

        let jobs_start = flow.num_jobs();
        let SideData {
            side,
            prefix,
            item_store,
            consumer_store,
        } = open_side(flow, "disco", jobs_start, item_vectors, consumer_vectors);

        let counters = Counters::new();
        let indexed_entries = Arc::new(AtomicUsize::new(0));
        let indexed_entries_probe = Arc::clone(&indexed_entries);

        let index_input: Vec<(usize, usize)> = (0..consumers.len()).map(|i| (i, i)).collect();
        let probe_input: Vec<(usize, usize)> = (0..items.len()).map(|i| (i, i)).collect();
        let probe_items = Arc::clone(&items);
        let probe_counters = counters.clone();
        let side_index = side.clone();
        let index_prefix = format!("{prefix}/index");
        let seed = self.seed;
        let lambda = self.lambda;

        let verified = flow
            .dataset(index_input)
            .map_with(IndexMapper::new(
                Arc::clone(&consumers),
                term_order_rank,
                max_weights,
                sigma,
            ))
            .named("disco-index")
            .reduce_with(IndexReducer)
            .then(move |postings, flow| {
                // Same handoff as the exact join: job 1's postings become
                // job 2's side data in term-range partitions.
                indexed_entries_probe.store(postings.len(), Ordering::Relaxed);
                let index = Arc::new(PartitionedIndex::write(
                    &side_index,
                    &index_prefix,
                    postings,
                    vocab,
                ));
                probe_counters.add(sj_counter::INDEX_PARTITIONS, index.num_partitions() as u64);
                flow.dataset(probe_input)
                    .map_with(SampledProbeMapper {
                        items: probe_items,
                        index,
                        sigma,
                        seed,
                        lambda,
                        counters: probe_counters.clone(),
                    })
                    .named("disco-probe")
                    .combined_with(PartialScoreCombiner)
                    .with_counters(probe_counters.clone())
                    .reduce_with(VerifyReducer::new(
                        item_store,
                        consumer_store,
                        sigma,
                        probe_counters,
                    ))
            })
            .collect();

        cleanup_side(&side, &prefix);

        let job_metrics = flow.jobs_from(jobs_start);
        let candidates_pruned = counters.get(sj_counter::CANDIDATES_PRUNED) as usize;
        let verify_exact = counters.get(sj_counter::VERIFY_EXACT) as usize;
        let index_partitions = counters.get(sj_counter::INDEX_PARTITIONS) as usize;
        // Same closed accounting as the exact join: generated candidates =
        // reduce-input groups + map-side prunes (a reducer-side prune is
        // already one of the groups).
        let map_side_pruned = candidates_pruned - counters.get(sj_counter::VERIFY_PRUNED) as usize;
        let candidate_pairs = job_metrics
            .last()
            .map(|m| m.reduce_input_groups as usize)
            .unwrap_or(0)
            + map_side_pruned;

        SimJoinResult::assemble(
            self.name(),
            build_graph(item_names, consumer_names, verified),
            candidate_pairs,
            candidates_pruned,
            verify_exact,
            index_partitions,
            indexed_entries.load(Ordering::Relaxed),
            job_metrics,
        )
    }
}
