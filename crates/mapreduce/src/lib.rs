//! An in-process MapReduce execution engine.
//!
//! This crate is the *distributed substrate* for the reproduction of
//! "Social Content Matching in MapReduce" (VLDB 2011).  The paper runs its
//! algorithms on Hadoop; everything the algorithms need from Hadoop is the
//! MapReduce contract itself:
//!
//! ```text
//! map    : <k1, v1>   -> [<k2, v2>]
//! reduce : <k2, [v2]> -> [<k3, v3>]
//! ```
//!
//! plus the shuffle (partition, sort, group) in between, optional combiners,
//! counters, and the ability to chain jobs iteratively while keeping state
//! in a distributed file system.  This crate provides exactly those pieces:
//!
//! * [`Mapper`], [`Reducer`], [`Combiner`], [`Partitioner`] traits
//!   ([`types`]; every key/value type also implements the
//!   `smr_storage::Codec` binary codec so records can live on disk),
//! * a parallel [`executor`] with a *streaming, out-of-core* shuffle:
//!   worker threads pull map tasks from a work-stealing [`task_queue`],
//!   combine while partitioning
//!   ([`partition::CombiningPartitionBuffer`]), emit per-partition sorted
//!   runs — spilled to disk when the task outgrows its share of
//!   [`JobConfig::memory_budget`] — and k-way merge them per reduce
//!   partition ([`shuffle`]), streaming disk and in-memory runs uniformly;
//!   all on a pool of worker threads built with `crossbeam` scoped
//!   threads (see `docs/engine.md` for the data flow),
//! * per-job [`counters`] and [`metrics`] (records in/out, groups, bytes
//!   shuffled, wall-clock per phase) so the experiments can report the same
//!   efficiency measures the paper reports (number of MapReduce iterations,
//!   communication cost per round),
//! * an iterative [`driver`] for algorithms that chain many rounds
//!   (GreedyMR, StackMR),
//! * a record [`store`] standing in for HDFS between rounds — in memory
//!   ([`KvStore`]) or on disk (`smr_storage::DiskKvStore`), both behind
//!   the [`store::RecordStore`] persistence surface.
//!
//! The engine is deliberately faithful to the programming model rather than
//! to the physical deployment: the number of rounds an algorithm needs, the
//! number of records it shuffles, and the degree of available parallelism
//! are properties of the algorithm and are measured exactly as a Hadoop
//! cluster would measure them.
//!
//! # Quick example
//!
//! A word-count job:
//!
//! ```
//! use smr_mapreduce::prelude::*;
//!
//! struct Tokenize;
//! impl Mapper for Tokenize {
//!     type InKey = usize;          // document id
//!     type InValue = String;       // document text
//!     type OutKey = String;        // word
//!     type OutValue = u64;         // count
//!     fn map(&self, _k: &usize, text: &String, out: &mut Emitter<String, u64>) {
//!         for w in text.split_whitespace() {
//!             out.emit(w.to_string(), 1);
//!         }
//!     }
//! }
//!
//! struct Sum;
//! impl Reducer for Sum {
//!     type Key = String;
//!     type InValue = u64;
//!     type OutKey = String;
//!     type OutValue = u64;
//!     fn reduce(&self, k: &String, vs: &[u64], out: &mut Emitter<String, u64>) {
//!         out.emit(k.clone(), vs.iter().sum());
//!     }
//! }
//!
//! let input = vec![(0usize, "a b a".to_string()), (1usize, "b c".to_string())];
//! let job = Job::new(JobConfig::default().with_name("word-count"));
//! let result = job.run(&Tokenize, &Sum, input);
//! let mut pairs = result.output;
//! pairs.sort();
//! assert_eq!(pairs, vec![
//!     ("a".to_string(), 2),
//!     ("b".to_string(), 2),
//!     ("c".to_string(), 1),
//! ]);
//! ```
//!
//! # Chaining jobs: the `flow` API
//!
//! Multi-job algorithms build *lazy chains* with [`flow::Dataset`] instead
//! of hand-wiring [`Job::run`] calls: combinators describe the plan, a
//! terminal executes it, records move between jobs without cloning, and
//! every job reports into one [`flow::FlowReport`].  Reusing the word-count
//! mapper/reducer from above:
//!
//! ```
//! # use smr_mapreduce::prelude::*;
//! # struct Tokenize;
//! # impl Mapper for Tokenize {
//! #     type InKey = usize;
//! #     type InValue = String;
//! #     type OutKey = String;
//! #     type OutValue = u64;
//! #     fn map(&self, _k: &usize, text: &String, out: &mut Emitter<String, u64>) {
//! #         for w in text.split_whitespace() {
//! #             out.emit(w.to_string(), 1);
//! #         }
//! #     }
//! # }
//! # struct Sum;
//! # impl Reducer for Sum {
//! #     type Key = String;
//! #     type InValue = u64;
//! #     type OutKey = String;
//! #     type OutValue = u64;
//! #     fn reduce(&self, k: &String, vs: &[u64], out: &mut Emitter<String, u64>) {
//! #         out.emit(k.clone(), vs.iter().sum());
//! #     }
//! # }
//! use smr_mapreduce::flow::FlowContext;
//!
//! let flow = FlowContext::named("word-count");
//! let input = vec![(0usize, "a b a".to_string()), (1usize, "b c".to_string())];
//! let counts = flow
//!     .dataset(input)            // lazy source
//!     .map_with(Tokenize)        // job 1 mapper...
//!     .reduce_with(Sum)          // ...and reducer: the next Dataset
//!     .collect();                // terminal: the chain runs here
//! assert_eq!(counts.len(), 3);
//! assert_eq!(flow.report().num_jobs(), 1);
//! assert!(flow.report().total_shuffled_records() > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod counters;
pub mod driver;
pub mod executor;
pub mod flow;
pub mod metrics;
pub mod partition;
pub mod process_shard;
mod sharded;
pub mod shuffle;
pub mod store;
pub mod task_queue;
pub mod types;

pub use config::JobConfig;
pub use counters::{Counter, Counters};
pub use driver::{IterativeDriver, IterativeJob, RoundOutcome, RunSummary};
pub use executor::{Job, JobResult};
pub use flow::{
    Dataset, FlowContext, FlowError, FlowReport, PersistedDataset, RoundState, RoundStateMode,
};
pub use metrics::{JobMetrics, PhaseTimings};
pub use partition::{CombiningPartitionBuffer, HashPartitioner, Partitioner};
pub use process_shard::{ProcessShardRuntime, ShardJob, ShardJobCheck, ShardRole};
pub use shuffle::merge_runs;
pub use store::{KvStore, RecordStore};
pub use task_queue::{Task, TaskQueue};
pub use types::{Codec, Combiner, Emitter, IdentityCombiner, Mapper, Reducer};

/// Convenience re-exports for users of the engine.
pub mod prelude {
    pub use crate::config::JobConfig;
    pub use crate::counters::Counters;
    pub use crate::driver::{IterativeDriver, IterativeJob, RoundOutcome, RunSummary};
    pub use crate::executor::{Job, JobResult};
    pub use crate::flow::{
        Dataset, FlowContext, FlowError, FlowReport, PersistedDataset, RoundState, RoundStateMode,
    };
    pub use crate::metrics::JobMetrics;
    pub use crate::partition::{HashPartitioner, Partitioner};
    pub use crate::store::{KvStore, RecordStore};
    pub use crate::types::{Codec, Combiner, Emitter, IdentityCombiner, Mapper, Reducer};
}
