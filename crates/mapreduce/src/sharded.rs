//! The sharded (multi-process) execution paths of a job.
//!
//! A job whose [`JobConfig::process_shards`][crate::JobConfig] is set and
//! that runs while a sharded session is active (see
//! [`crate::process_shard`]) executes here instead of the local path of
//! [`Job::run_full`].  Both sides of the protocol live in this module,
//! because both sides run *the same program*:
//!
//! * the **worker** path runs the ordinary streaming map phase restricted
//!   to the shard's contiguous slice of the global map-task space, exports
//!   every `(partition, task, seq)` run as a run file in its attempt
//!   directory, commits a checksummed [`ShardManifest`] naming them, then
//!   blocks until the coordinator publishes the job's reduced output and
//!   adopts it — keeping the worker's replay of the program in lockstep
//!   with the coordinator;
//! * the **coordinator** path collects one validated manifest per shard
//!   (the runtime supervises spawning, timeouts and retries), folds the
//!   workers' counter deltas into its own counter set, re-hydrates the
//!   manifests' runs as disk runs and pushes them through the *existing*
//!   merge and reduce phases — so the output is byte-identical to the
//!   in-process engine for any shard count — and finally publishes the
//!   output as a run file for the workers to adopt.
//!
//! The publish uses the run format's pending-count commit protocol: a
//! worker polling `output.run` sees `Truncated` until the coordinator's
//! `finish()` patches the record count, so a half-written output is never
//! adopted.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use smr_storage::{
    Codec, CompletedRun, ManifestRun, RunReader, RunWriter, ShardManifest, StorageError,
};

use crate::counters::Counters;
use crate::executor::{finish_metrics, Job, JobResult, RunSource, TaggedRun, TaggedRuns};
use crate::metrics::JobMetrics;
use crate::partition::Partitioner;
use crate::process_shard::{shard_task_range, ProcessShardRuntime, ShardJobCheck, ShardRole};
use crate::task_queue::TaskQueue;
use crate::types::{Combiner, Mapper, Reducer};

impl Job {
    /// Runs one job through the sharded multi-process runtime.  Called by
    /// [`Job::run_full`] after the common prologue (metrics init, input
    /// counter, identity-combiner filtering); `combiner` is already
    /// filtered.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_process_sharded<M, C, R, P>(
        &self,
        runtime: Arc<dyn ProcessShardRuntime>,
        mapper: &M,
        combiner: Option<&C>,
        reducer: &R,
        partitioner: &P,
        input: Vec<(M::InKey, M::InValue)>,
        counters: Counters,
        mut metrics: JobMetrics,
    ) -> JobResult<R::OutKey, R::OutValue>
    where
        M: Mapper,
        C: Combiner<Key = M::OutKey, Value = M::OutValue>,
        R: Reducer<Key = M::OutKey, InValue = M::OutValue>,
        P: Partitioner<M::OutKey>,
    {
        let config = self.config();
        let job = runtime.begin_job(config);
        let num_reduce_tasks = config.effective_reduce_tasks();
        // The *scheduled* task count (0 for an empty input), computed the
        // same way on every participant and cross-checked through the
        // manifest: it defines the task index space the shards partition.
        let num_map_tasks =
            TaskQueue::split(input.len(), config.effective_map_tasks(input.len())).num_tasks();
        let check = ShardJobCheck {
            job_name: config.name.clone(),
            input_records: input.len() as u64,
            num_map_tasks: num_map_tasks as u64,
        };

        match job.role {
            ShardRole::Coordinator => {
                let manifests = runtime.collect_manifests(&job, &check);

                // Fold the workers' map-side counter deltas (built-in and
                // user counters alike) into the coordinator's set: each
                // map task ran in exactly one worker, so the totals equal
                // the in-process run's.  The map wall clock is the slowest
                // worker's, as a cluster would report it.
                let mut map_micros = 0u64;
                for manifest in &manifests {
                    for (name, delta) in &manifest.counters {
                        counters.add(name, *delta);
                    }
                    map_micros = map_micros.max(manifest.map_micros);
                }
                metrics.map_tasks = num_map_tasks;
                metrics.timings.map = Duration::from_micros(map_micros);

                // Re-hydrate every manifest entry as a disk run.  The
                // `(task, seq)` tags survive the process boundary, so the
                // existing merge machinery orders them exactly as it
                // orders local runs — byte identity needs no new code.
                let runs: TaggedRuns<M::OutKey, M::OutValue> = (0..num_reduce_tasks)
                    .map(|_| Mutex::new(Vec::new()))
                    .collect();
                for manifest in &manifests {
                    let attempt_dir = job
                        .job_dir
                        .join(format!("shard-{}", manifest.shard))
                        .join(format!("attempt-{}", manifest.attempt));
                    for entry in &manifest.runs {
                        let partition = usize::try_from(entry.partition).expect("partition index");
                        assert!(
                            partition < num_reduce_tasks,
                            "shard {} manifest names partition {partition} of {num_reduce_tasks}",
                            manifest.shard
                        );
                        runs[partition].lock().push(TaggedRun {
                            task: entry.task as usize,
                            seq: if entry.seq == u64::MAX {
                                usize::MAX
                            } else {
                                entry.seq as usize
                            },
                            source: RunSource::Disk(CompletedRun {
                                path: attempt_dir.join(&entry.file),
                                records: entry.records,
                                bytes: entry.bytes,
                            }),
                        });
                    }
                }

                let partitions = self.merge_phase(runs, combiner, &counters, &mut metrics);
                let output = self.reduce_phase(&partitions, reducer, &counters, &mut metrics);

                publish_output(&job.output_path, &output);
                finish_metrics(&counters, &mut metrics);
                JobResult {
                    output,
                    metrics,
                    counters,
                }
            }
            ShardRole::Worker { shard, attempt } => {
                // A respawned worker replaying the session fast-forwards
                // through jobs whose output is already published: the
                // adopted output reconstructs the exact program state, no
                // map work needed.
                if let Some(output) = try_read_output::<R::OutKey, R::OutValue>(&job.output_path) {
                    finish_metrics(&counters, &mut metrics);
                    return JobResult {
                        output,
                        metrics,
                        counters,
                    };
                }

                // Map only this shard's slice of the global task space,
                // with the exact per-task budget and spill schedule of an
                // unsharded run.  The counter snapshot around the phase
                // isolates the deltas this shard contributed.
                let range = shard_task_range(shard, job.num_shards, num_map_tasks);
                let before = counters.snapshot();
                let (runs, spill) = self.map_phase(
                    mapper,
                    combiner,
                    partitioner,
                    &input,
                    &counters,
                    &mut metrics,
                    Some(range),
                );
                let after = counters.snapshot();
                // A zero delta still matters when the map phase *created*
                // the counter (`add(name, 0)` materialises the key):
                // recording it keeps the coordinator's counter key set
                // identical to an in-process run's.
                let deltas: Vec<(String, u64)> = after
                    .iter()
                    .filter_map(|(name, total)| {
                        let previous = before.get(name).copied();
                        let delta = total - previous.unwrap_or(0);
                        (delta > 0 || previous.is_none()).then(|| (name.clone(), delta))
                    })
                    .collect();

                let attempt_dir = job
                    .attempt_dir
                    .clone()
                    .expect("worker job has an attempt dir");
                std::fs::create_dir_all(&attempt_dir)
                    .unwrap_or_else(|e| panic!("cannot create shard dir {attempt_dir:?}: {e}"));
                let entries = export_runs(runs, &attempt_dir);
                // Every spilled run has been copied out: the spill temp
                // directory can go.
                drop(spill);

                let manifest = ShardManifest {
                    job_name: check.job_name.clone(),
                    job_seq: job.seq,
                    shard: shard as u64,
                    num_shards: job.num_shards as u64,
                    attempt,
                    input_records: check.input_records,
                    num_map_tasks: check.num_map_tasks,
                    runs: entries,
                    counters: deltas,
                    map_micros: u64::try_from(metrics.timings.map.as_micros()).unwrap_or(u64::MAX),
                };
                runtime.commit_manifest(&job, &manifest);

                // Lockstep: adopt the coordinator's reduced output as this
                // job's result, so everything downstream of the job (next
                // rounds, derived state) replays identically.
                let output = poll_output::<R::OutKey, R::OutValue>(
                    &job.output_path,
                    runtime.output_poll_interval(),
                    runtime.output_timeout(),
                );
                finish_metrics(&counters, &mut metrics);
                JobResult {
                    output,
                    metrics,
                    counters,
                }
            }
        }
    }
}

/// Writes every run to `attempt_dir` in the wire format and returns the
/// manifest entries naming them.  In-memory runs are encoded through a
/// [`RunWriter`]; spilled runs already *are* run files (the spill format
/// is the wire format) and ship as a straight file copy.
fn export_runs<K, V>(runs: TaggedRuns<K, V>, attempt_dir: &Path) -> Vec<ManifestRun>
where
    K: crate::types::Key,
    V: crate::types::Value,
{
    let mut entries = Vec::new();
    for (partition, bucket) in runs.into_iter().enumerate() {
        for run in bucket.into_inner() {
            let seq_name = if run.seq == usize::MAX {
                "final".to_string()
            } else {
                run.seq.to_string()
            };
            let file = format!("p{partition:05}-t{:06}-s{seq_name}.run", run.task);
            let path = attempt_dir.join(&file);
            let (records, bytes) = match run.source {
                RunSource::Memory(records) => {
                    let mut writer: RunWriter<(K, V)> = RunWriter::create(&path)
                        .unwrap_or_else(|e| panic!("cannot create shard run {path:?}: {e}"));
                    for record in &records {
                        writer
                            .push(record)
                            .unwrap_or_else(|e| panic!("cannot write shard run {path:?}: {e}"));
                    }
                    let done = writer
                        .finish()
                        .unwrap_or_else(|e| panic!("cannot finish shard run {path:?}: {e}"));
                    (done.records, done.bytes)
                }
                RunSource::Disk(completed) => {
                    std::fs::copy(&completed.path, &path)
                        .unwrap_or_else(|e| panic!("cannot ship spilled run to {path:?}: {e}"));
                    (completed.records, completed.bytes)
                }
            };
            entries.push(ManifestRun {
                partition: partition as u64,
                task: run.task as u64,
                seq: if run.seq == usize::MAX {
                    u64::MAX
                } else {
                    run.seq as u64
                },
                file,
                records,
                bytes,
            });
        }
    }
    entries
}

/// Publishes the job's reduced output at `path`.  The record count in the
/// run header stays at the pending sentinel until `finish()`, which is
/// the atomic commit point for pollers.
fn publish_output<K: Codec, V: Codec>(path: &Path, output: &[(K, V)]) {
    let mut writer: RunWriter<(K, V)> = RunWriter::create(path)
        .unwrap_or_else(|e| panic!("cannot create job output {path:?}: {e}"));
    for record in output {
        writer
            .push(record)
            .unwrap_or_else(|e| panic!("cannot write job output {path:?}: {e}"));
    }
    writer
        .finish()
        .unwrap_or_else(|e| panic!("cannot publish job output {path:?}: {e}"));
}

/// One non-blocking attempt to adopt a published output.  `None` means
/// "not published yet" (missing file, or header/body still pending);
/// anything else unreadable is a protocol violation and panics.
fn try_read_output<K: Codec, V: Codec>(path: &Path) -> Option<Vec<(K, V)>> {
    let reader = match RunReader::<(K, V)>::open(path) {
        Ok(reader) => reader,
        Err(StorageError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => return None,
        Err(StorageError::Truncated { .. }) => return None,
        Err(e) => panic!("sharded job output at {path:?} unreadable: {e}"),
    };
    reader
        .check_type()
        .unwrap_or_else(|e| panic!("sharded job output at {path:?}: {e}"));
    match reader.read_to_end() {
        Ok(records) => Some(records),
        // The count patch races the read: treat any truncation as "not
        // yet" and poll again.
        Err(StorageError::Truncated { .. }) => None,
        Err(e) => panic!("sharded job output at {path:?} unreadable: {e}"),
    }
}

/// Polls for the published output until `timeout`.  A worker that never
/// sees the output has lost its coordinator: it exits rather than linger
/// as an orphan (the exit code is only ever observed by a human).
fn poll_output<K: Codec, V: Codec>(
    path: &Path,
    interval: Duration,
    timeout: Duration,
) -> Vec<(K, V)> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(records) = try_read_output(path) {
            return records;
        }
        if Instant::now() > deadline {
            eprintln!(
                "smr_distrib worker: no published output at {path:?} after {timeout:?}; \
                 assuming the coordinator is gone"
            );
            std::process::exit(86);
        }
        std::thread::sleep(interval);
    }
}
