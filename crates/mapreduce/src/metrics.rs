//! Per-job and per-run metrics.

use std::collections::BTreeMap;
use std::time::Duration;

/// Wall-clock time spent in each phase of a job.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Time spent running map tasks (includes combining).
    pub map: Duration,
    /// Time spent partitioning, sorting and grouping intermediate pairs.
    pub shuffle: Duration,
    /// Time spent running reduce tasks.
    pub reduce: Duration,
}

impl PhaseTimings {
    /// Total wall-clock time of the job.
    pub fn total(&self) -> Duration {
        self.map + self.shuffle + self.reduce
    }
}

/// Everything the engine measured while running one job.
#[derive(Debug, Clone, Default)]
pub struct JobMetrics {
    /// The job name from [`crate::JobConfig`].
    pub job_name: String,
    /// Records read by map tasks.
    pub map_input_records: u64,
    /// Records emitted by map tasks before combining.
    pub map_output_records: u64,
    /// Records after map-side combining (equals `map_output_records` when
    /// no combiner is configured).  This is what crosses the shuffle and is
    /// the paper's per-round communication cost, O(|E|) for the matching
    /// jobs.
    pub shuffle_records: u64,
    /// Approximate shuffled payload in bytes: shuffled records times the
    /// in-memory size of one `(key, value)` record.  A lower bound for
    /// heap-carrying types (e.g. `String` keys), but measured identically
    /// in both shuffle modes so A/B comparisons are meaningful.
    pub shuffle_bytes: u64,
    /// Sorted runs the streaming shuffle merged across all reduce
    /// partitions (in-memory and on-disk runs alike).
    pub merge_runs: u64,
    /// Encoded bytes of sorted runs spilled to disk because a map task's
    /// buffer outgrew its share of the job's memory budget (zero without a
    /// budget).
    pub spill_bytes: u64,
    /// Sorted runs spilled to disk and streamed back through the external
    /// merge (zero without a memory budget).
    pub disk_runs: u64,
    /// Distinct key groups presented to reducers.
    pub reduce_input_groups: u64,
    /// Records emitted by reduce tasks.
    pub reduce_output_records: u64,
    /// Number of map tasks executed.
    pub map_tasks: usize,
    /// Number of reduce partitions executed.
    pub reduce_tasks: usize,
    /// Wall-clock timings.
    pub timings: PhaseTimings,
    /// Snapshot of all user counters at job completion.
    pub user_counters: BTreeMap<String, u64>,
}

impl JobMetrics {
    /// Combiner effectiveness: fraction of map output records eliminated
    /// before the shuffle (0.0 when no combiner ran or nothing was
    /// eliminated).
    pub fn combine_reduction(&self) -> f64 {
        if self.map_output_records == 0 {
            return 0.0;
        }
        1.0 - (self.shuffle_records as f64 / self.map_output_records as f64)
    }

    /// Adds the record counts of `other` into `self` (used to accumulate
    /// totals across the rounds of an iterative algorithm).
    pub fn accumulate(&mut self, other: &JobMetrics) {
        self.map_input_records += other.map_input_records;
        self.map_output_records += other.map_output_records;
        self.shuffle_records += other.shuffle_records;
        self.shuffle_bytes += other.shuffle_bytes;
        self.merge_runs += other.merge_runs;
        self.spill_bytes += other.spill_bytes;
        self.disk_runs += other.disk_runs;
        self.reduce_input_groups += other.reduce_input_groups;
        self.reduce_output_records += other.reduce_output_records;
        self.map_tasks += other.map_tasks;
        self.reduce_tasks += other.reduce_tasks;
        self.timings.map += other.timings.map;
        self.timings.shuffle += other.timings.shuffle;
        self.timings.reduce += other.timings.reduce;
        for (k, v) in &other.user_counters {
            *self.user_counters.entry(k.clone()).or_insert(0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_reduction_handles_empty_job() {
        let m = JobMetrics::default();
        assert_eq!(m.combine_reduction(), 0.0);
    }

    #[test]
    fn combine_reduction_measures_savings() {
        let m = JobMetrics {
            map_output_records: 100,
            shuffle_records: 25,
            ..JobMetrics::default()
        };
        assert!((m.combine_reduction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn accumulate_sums_counts_and_counters() {
        let mut a = JobMetrics {
            map_input_records: 1,
            shuffle_records: 2,
            shuffle_bytes: 100,
            merge_runs: 3,
            spill_bytes: 64,
            disk_runs: 1,
            ..JobMetrics::default()
        };
        a.user_counters.insert("edges".into(), 10);
        let mut b = JobMetrics {
            map_input_records: 3,
            shuffle_records: 4,
            shuffle_bytes: 50,
            merge_runs: 2,
            spill_bytes: 36,
            disk_runs: 2,
            ..JobMetrics::default()
        };
        b.user_counters.insert("edges".into(), 5);
        b.user_counters.insert("nodes".into(), 7);
        a.accumulate(&b);
        assert_eq!(a.map_input_records, 4);
        assert_eq!(a.shuffle_records, 6);
        assert_eq!(a.shuffle_bytes, 150);
        assert_eq!(a.merge_runs, 5);
        assert_eq!(a.spill_bytes, 100);
        assert_eq!(a.disk_runs, 3);
        assert_eq!(a.user_counters["edges"], 15);
        assert_eq!(a.user_counters["nodes"], 7);
    }

    #[test]
    fn phase_timings_total() {
        let t = PhaseTimings {
            map: Duration::from_millis(10),
            shuffle: Duration::from_millis(20),
            reduce: Duration::from_millis(30),
        };
        assert_eq!(t.total(), Duration::from_millis(60));
    }
}
