//! Work-stealing task queue for map and reduce workers.
//!
//! Instead of handing every worker a fixed set of pre-assigned splits, the
//! executor builds one [`TaskQueue`] per phase and lets the worker threads
//! *pull* tasks from it through an atomic index: a worker that finishes a
//! cheap task immediately claims the next one, so a single slow task never
//! leaves the other workers idle behind a static assignment.  Claiming is a
//! single `fetch_add`, which keeps the queue contention-free in practice.
//!
//! The queue also owns task *layout*: [`TaskQueue::split`] cuts an input of
//! `len` records into at most `num_tasks` contiguous, near-equal, **never
//! empty** ranges.  Requesting more tasks than records simply yields fewer
//! tasks (one per record), and an empty input yields an empty queue — no
//! empty map task is ever scheduled.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A claimed unit of work: the task's index in scheduling order plus the
/// input range it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Stable task index (`0..num_tasks`), used to keep downstream
    /// processing deterministic regardless of which worker ran the task.
    pub index: usize,
    /// The half-open input range this task processes.
    pub range: Range<usize>,
}

/// A fixed set of tasks claimed by worker threads through an atomic cursor.
#[derive(Debug, Default)]
pub struct TaskQueue {
    tasks: Vec<Range<usize>>,
    next: AtomicUsize,
}

impl TaskQueue {
    /// Builds a queue over `len` input records cut into at most `num_tasks`
    /// contiguous near-equal ranges, skipping would-be-empty tasks.
    pub fn split(len: usize, num_tasks: usize) -> Self {
        let num_tasks = num_tasks.max(1).min(len);
        let mut tasks = Vec::with_capacity(num_tasks);
        if len > 0 {
            let base = len / num_tasks;
            let remainder = len % num_tasks;
            let mut start = 0;
            for index in 0..num_tasks {
                let size = base + usize::from(index < remainder);
                tasks.push(start..start + size);
                start += size;
            }
            debug_assert_eq!(start, len);
        }
        TaskQueue {
            tasks,
            next: AtomicUsize::new(0),
        }
    }

    /// Builds a queue of `n` unit tasks (`i..i + 1`), one per reduce
    /// partition.
    pub fn unit(n: usize) -> Self {
        TaskQueue {
            tasks: (0..n).map(|i| i..i + 1).collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// Number of tasks in the queue (claimed or not).
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the queue holds no tasks at all.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Claims the next unclaimed task, or `None` when the queue is drained.
    ///
    /// Safe to call from any number of threads; every task is handed out
    /// exactly once.
    pub fn claim(&self) -> Option<Task> {
        let index = self.next.fetch_add(1, Ordering::Relaxed);
        self.tasks.get(index).map(|range| Task {
            index,
            range: range.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(queue: &TaskQueue) -> Vec<Task> {
        std::iter::from_fn(|| queue.claim()).collect()
    }

    #[test]
    fn no_empty_task_is_ever_scheduled() {
        // Sweep lengths and task counts, including every num_tasks >
        // input.len() shape that used to produce empty trailing tasks.
        for len in [0usize, 1, 2, 3, 7, 64, 103] {
            for num_tasks in [1usize, 2, 3, 7, 50, 64, 103, 200] {
                let queue = TaskQueue::split(len, num_tasks);
                let tasks = drain(&queue);
                assert_eq!(
                    tasks.len(),
                    num_tasks.min(len),
                    "len={len} tasks={num_tasks}"
                );
                for task in &tasks {
                    assert!(
                        !task.range.is_empty(),
                        "empty task scheduled for len={len} tasks={num_tasks}"
                    );
                }
            }
        }
    }

    #[test]
    fn split_covers_all_records_without_duplication() {
        for len in [1usize, 5, 103] {
            for num_tasks in [1usize, 2, 3, 7, 50, 103, 200] {
                let queue = TaskQueue::split(len, num_tasks);
                let tasks = drain(&queue);
                let covered: Vec<usize> = tasks.iter().flat_map(|t| t.range.clone()).collect();
                assert_eq!(
                    covered,
                    (0..len).collect::<Vec<_>>(),
                    "len={len} tasks={num_tasks}"
                );
                // Near-equal: sizes differ by at most one record.
                let sizes: Vec<usize> = tasks.iter().map(|t| t.range.len()).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "unbalanced split: {sizes:?}");
            }
        }
    }

    #[test]
    fn empty_input_yields_an_empty_queue() {
        let queue = TaskQueue::split(0, 8);
        assert!(queue.is_empty());
        assert_eq!(queue.num_tasks(), 0);
        assert_eq!(queue.claim(), None);
    }

    #[test]
    fn task_indices_are_sequential_and_unique() {
        let queue = TaskQueue::split(10, 4);
        let tasks = drain(&queue);
        let indices: Vec<usize> = tasks.iter().map(|t| t.index).collect();
        assert_eq!(indices, vec![0, 1, 2, 3]);
        assert_eq!(queue.claim(), None, "drained queue stays drained");
    }

    #[test]
    fn unit_queue_enumerates_partitions() {
        let queue = TaskQueue::unit(3);
        let tasks = drain(&queue);
        assert_eq!(tasks.len(), 3);
        for (i, task) in tasks.iter().enumerate() {
            assert_eq!(task.index, i);
            assert_eq!(task.range, i..i + 1);
        }
    }

    #[test]
    fn concurrent_claims_hand_out_every_task_once() {
        let queue = TaskQueue::split(1000, 1000);
        let claimed = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    while let Some(task) = queue.claim() {
                        local.push(task.index);
                    }
                    claimed.lock().unwrap().extend(local);
                });
            }
        });
        let mut all = claimed.into_inner().unwrap();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }
}
