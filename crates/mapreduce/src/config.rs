//! Job configuration.

/// Configuration of a single MapReduce job (and, via the driver, of every
/// round of an iterative algorithm).
///
/// The defaults give a job that uses every available core, one map task per
/// core and one reduce task per core, which is what the experiments use.
/// Tests frequently pin `num_threads` to 1 or 2 to get deterministic
/// scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobConfig {
    /// Human-readable job name, used in metrics and logs.
    pub name: String,
    /// Number of worker threads.  `0` means "use all available
    /// parallelism" (as reported by the OS).
    pub num_threads: usize,
    /// Number of map tasks the input is split into.  `0` means "one per
    /// worker thread".
    pub num_map_tasks: usize,
    /// Number of reduce partitions.  `0` means "one per worker thread".
    pub num_reduce_tasks: usize,
    /// Whether reduce partitions are sorted by key before reducing
    /// (Hadoop always sorts; disabling the sort is useful only for
    /// benchmarking the shuffle itself).
    pub sort_reduce_input: bool,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            name: "mapreduce-job".to_string(),
            num_threads: 0,
            num_map_tasks: 0,
            num_reduce_tasks: 0,
            sort_reduce_input: true,
        }
    }
}

impl JobConfig {
    /// Creates a configuration with the given name and all other fields at
    /// their defaults.
    pub fn named(name: impl Into<String>) -> Self {
        JobConfig::default().with_name(name)
    }

    /// Sets the job name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the number of worker threads (0 = all cores).
    pub fn with_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Sets the number of map tasks (0 = one per worker).
    pub fn with_map_tasks(mut self, n: usize) -> Self {
        self.num_map_tasks = n;
        self
    }

    /// Sets the number of reduce tasks (0 = one per worker).
    pub fn with_reduce_tasks(mut self, n: usize) -> Self {
        self.num_reduce_tasks = n;
        self
    }

    /// Enables or disables sorting of reduce-partition input by key.
    pub fn with_sorted_reduce_input(mut self, sort: bool) -> Self {
        self.sort_reduce_input = sort;
        self
    }

    /// Resolved number of worker threads.
    pub fn effective_threads(&self) -> usize {
        if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        }
    }

    /// Resolved number of map tasks for an input of `input_len` records.
    ///
    /// Never more tasks than records (a task with no input is pointless)
    /// and always at least one.
    pub fn effective_map_tasks(&self, input_len: usize) -> usize {
        let base = if self.num_map_tasks == 0 {
            self.effective_threads()
        } else {
            self.num_map_tasks
        };
        base.clamp(1, input_len.max(1))
    }

    /// Resolved number of reduce partitions.
    pub fn effective_reduce_tasks(&self) -> usize {
        if self.num_reduce_tasks == 0 {
            self.effective_threads()
        } else {
            self.num_reduce_tasks
        }
        .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_resolve_to_positive_values() {
        let c = JobConfig::default();
        assert!(c.effective_threads() >= 1);
        assert!(c.effective_map_tasks(100) >= 1);
        assert!(c.effective_reduce_tasks() >= 1);
        assert!(c.sort_reduce_input);
    }

    #[test]
    fn builder_setters_are_applied() {
        let c = JobConfig::named("x")
            .with_threads(3)
            .with_map_tasks(7)
            .with_reduce_tasks(5)
            .with_sorted_reduce_input(false);
        assert_eq!(c.name, "x");
        assert_eq!(c.effective_threads(), 3);
        assert_eq!(c.effective_map_tasks(100), 7);
        assert_eq!(c.effective_reduce_tasks(), 5);
        assert!(!c.sort_reduce_input);
    }

    #[test]
    fn map_tasks_never_exceed_input_length() {
        let c = JobConfig::default().with_map_tasks(64);
        assert_eq!(c.effective_map_tasks(3), 3);
        assert_eq!(c.effective_map_tasks(0), 1);
    }
}
