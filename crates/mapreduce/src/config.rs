//! Job configuration.

/// How the engine moves intermediate pairs from map tasks to reduce
/// partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShuffleMode {
    /// Streaming shuffle (the default): every map task emits one *sorted
    /// run* per reduce partition (combined while partitioning), and the
    /// shuffle performs a k-way merge of a partition's runs instead of
    /// concatenating and re-sorting the whole partition.
    #[default]
    Streaming,
    /// The original shuffle: concatenate every task's bucket for a
    /// partition and sort the whole partition at once.  Both paths produce
    /// byte-identical output.
    ///
    /// Deprecated: the A/B baseline against the streaming shuffle is
    /// captured in `EXPERIMENTS.md`, so this path is scheduled for removal
    /// in the next release (see `docs/engine.md`).
    #[deprecated(note = "the streaming shuffle is byte-identical and strictly faster; \
                the A/B baseline is recorded in EXPERIMENTS.md and LegacySort \
                will be removed in the next release")]
    LegacySort,
}

/// Default size (in records) of the per-task combining buffer used by the
/// streaming shuffle.
pub const DEFAULT_COMBINE_BUFFER_RECORDS: usize = 8 * 1024;

/// Configuration of a single MapReduce job (and, via the driver, of every
/// round of an iterative algorithm).
///
/// The defaults give a job that uses every available core, one map task per
/// core and one reduce task per core, which is what the experiments use.
/// Tests frequently pin `num_threads` to 1 or 2 to get deterministic
/// scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobConfig {
    /// Human-readable job name, used in metrics and logs.
    pub name: String,
    /// Number of worker threads.  `0` means "use all available
    /// parallelism" (as reported by the OS).
    pub num_threads: usize,
    /// Number of map tasks the input is split into.  `0` means "one per
    /// worker thread".
    pub num_map_tasks: usize,
    /// Number of reduce partitions.  `0` means "one per worker thread".
    pub num_reduce_tasks: usize,
    /// Whether reduce partitions are sorted by key before reducing
    /// (Hadoop always sorts; disabling the sort is useful only for
    /// benchmarking the legacy shuffle itself — the streaming shuffle
    /// produces sorted partitions by construction).
    pub sort_reduce_input: bool,
    /// Which shuffle implementation to use.
    pub shuffle: ShuffleMode,
    /// Streaming shuffle only: number of intermediate records a map task
    /// buffers before applying the combiner in place (bounding the task's
    /// memory in combined records rather than raw map output).  Ignored
    /// when the job has no combiner.
    pub combine_buffer_records: usize,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            name: "mapreduce-job".to_string(),
            num_threads: 0,
            num_map_tasks: 0,
            num_reduce_tasks: 0,
            sort_reduce_input: true,
            shuffle: ShuffleMode::default(),
            combine_buffer_records: DEFAULT_COMBINE_BUFFER_RECORDS,
        }
    }
}

impl JobConfig {
    /// Creates a configuration with the given name and all other fields at
    /// their defaults.
    pub fn named(name: impl Into<String>) -> Self {
        JobConfig::default().with_name(name)
    }

    /// Sets the job name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the number of worker threads (0 = all cores).
    pub fn with_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Sets the number of map tasks (0 = one per worker).
    pub fn with_map_tasks(mut self, n: usize) -> Self {
        self.num_map_tasks = n;
        self
    }

    /// Sets the number of reduce tasks (0 = one per worker).
    pub fn with_reduce_tasks(mut self, n: usize) -> Self {
        self.num_reduce_tasks = n;
        self
    }

    /// Enables or disables sorting of reduce-partition input by key.
    pub fn with_sorted_reduce_input(mut self, sort: bool) -> Self {
        self.sort_reduce_input = sort;
        self
    }

    /// Selects the shuffle implementation (streaming vs legacy sort).
    pub fn with_shuffle_mode(mut self, mode: ShuffleMode) -> Self {
        self.shuffle = mode;
        self
    }

    /// Sets the streaming-shuffle combining-buffer size in records.
    ///
    /// # Panics
    /// Panics if `records` is zero.
    pub fn with_combine_buffer_records(mut self, records: usize) -> Self {
        assert!(records > 0, "combine buffer must hold at least one record");
        self.combine_buffer_records = records;
        self
    }

    /// Resolved number of worker threads.
    pub fn effective_threads(&self) -> usize {
        if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        }
    }

    /// Resolved number of map tasks for an input of `input_len` records.
    ///
    /// Never more tasks than records (a task with no input is pointless)
    /// and always at least one.
    pub fn effective_map_tasks(&self, input_len: usize) -> usize {
        let base = if self.num_map_tasks == 0 {
            self.effective_threads()
        } else {
            self.num_map_tasks
        };
        base.clamp(1, input_len.max(1))
    }

    /// Resolved number of reduce partitions.
    pub fn effective_reduce_tasks(&self) -> usize {
        if self.num_reduce_tasks == 0 {
            self.effective_threads()
        } else {
            self.num_reduce_tasks
        }
        .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_resolve_to_positive_values() {
        let c = JobConfig::default();
        assert!(c.effective_threads() >= 1);
        assert!(c.effective_map_tasks(100) >= 1);
        assert!(c.effective_reduce_tasks() >= 1);
        assert!(c.sort_reduce_input);
        assert_eq!(c.shuffle, ShuffleMode::Streaming);
        assert!(c.combine_buffer_records > 0);
    }

    #[test]
    #[allow(deprecated)]
    fn shuffle_mode_and_buffer_are_configurable() {
        let c = JobConfig::named("s")
            .with_shuffle_mode(ShuffleMode::LegacySort)
            .with_combine_buffer_records(16);
        assert_eq!(c.shuffle, ShuffleMode::LegacySort);
        assert_eq!(c.combine_buffer_records, 16);
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn zero_combine_buffer_is_rejected() {
        let _ = JobConfig::default().with_combine_buffer_records(0);
    }

    #[test]
    fn builder_setters_are_applied() {
        let c = JobConfig::named("x")
            .with_threads(3)
            .with_map_tasks(7)
            .with_reduce_tasks(5)
            .with_sorted_reduce_input(false);
        assert_eq!(c.name, "x");
        assert_eq!(c.effective_threads(), 3);
        assert_eq!(c.effective_map_tasks(100), 7);
        assert_eq!(c.effective_reduce_tasks(), 5);
        assert!(!c.sort_reduce_input);
    }

    #[test]
    fn map_tasks_never_exceed_input_length() {
        let c = JobConfig::default().with_map_tasks(64);
        assert_eq!(c.effective_map_tasks(3), 3);
        assert_eq!(c.effective_map_tasks(0), 1);
    }
}
