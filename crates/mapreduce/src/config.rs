//! Job configuration.

use std::path::PathBuf;

/// Default size (in records) of the per-task combining buffer used by the
/// streaming shuffle.
pub const DEFAULT_COMBINE_BUFFER_RECORDS: usize = 8 * 1024;

/// Environment variable providing the default memory budget in bytes
/// (see [`JobConfig::memory_budget`]).  Unset, empty, unparsable or `0`
/// all mean "unlimited".
pub const MEMORY_BUDGET_ENV: &str = "SMR_MEMORY_BUDGET";

/// Environment variable providing the default spill directory
/// (see [`JobConfig::spill_dir`]).
pub const SPILL_DIR_ENV: &str = "SMR_SPILL_DIR";

fn env_memory_budget() -> Option<u64> {
    std::env::var(MEMORY_BUDGET_ENV)
        .ok()?
        .trim()
        .parse::<u64>()
        .ok()
        .filter(|budget| *budget > 0)
}

fn env_spill_dir() -> Option<PathBuf> {
    let dir = std::env::var(SPILL_DIR_ENV).ok()?;
    let dir = dir.trim();
    if dir.is_empty() {
        return None;
    }
    Some(PathBuf::from(dir))
}

/// Configuration of a single MapReduce job (and, via the driver, of every
/// round of an iterative algorithm).
///
/// The defaults give a job that uses every available core, one map task per
/// core and one reduce task per core, which is what the experiments use.
/// Tests frequently pin `num_threads` to 1 or 2 to get deterministic
/// scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobConfig {
    /// Human-readable job name, used in metrics and logs.
    pub name: String,
    /// Number of worker threads.  `0` means "use all available
    /// parallelism" (as reported by the OS).
    pub num_threads: usize,
    /// Number of map tasks the input is split into.  `0` means "one per
    /// worker thread".
    pub num_map_tasks: usize,
    /// Number of reduce partitions.  `0` means "one per worker thread".
    pub num_reduce_tasks: usize,
    /// Number of intermediate records a map task buffers before applying
    /// the combiner in place (bounding the task's memory in combined
    /// records rather than raw map output).  Ignored when the job has no
    /// combiner.
    pub combine_buffer_records: usize,
    /// Memory budget in bytes for the job's map-side buffers, divided
    /// evenly among the worker threads.  A task whose combining buffer
    /// outgrows its share — estimated as records ×
    /// `size_of::<(K, V)>()`, a lower bound for heap-carrying types —
    /// first combines in place (if a combiner is configured) and, when
    /// still over budget, **spills its sorted run to disk** instead of
    /// growing without bound; the shuffle then streams disk and in-memory
    /// runs through one external k-way merge.  `None` (the default unless
    /// the [`MEMORY_BUDGET_ENV`] environment variable is set) disables
    /// spilling.  The job's output is byte-identical for every budget.
    pub memory_budget: Option<u64>,
    /// Directory spilled runs are written under (a per-job subdirectory is
    /// created lazily and removed when the job finishes).  `None` (the
    /// default unless [`SPILL_DIR_ENV`] is set) uses the system temp
    /// directory.
    pub spill_dir: Option<PathBuf>,
    /// Opt the job into the sharded **multi-process** runtime: when set
    /// *and* a process-shard runtime is installed (the `smr_distrib` crate
    /// installs one inside its sharded sessions), the job's map phase is
    /// split across that many worker OS processes, each running the
    /// existing map + combine + spill path over a contiguous slice of the
    /// job's map tasks and shipping sorted runs back through run files;
    /// the coordinator merges and reduces.  Output is byte-identical to
    /// the in-process engine for any shard count.  Outside a sharded
    /// session the flag is inert and the job runs in process.  `None`
    /// (the default) never delegates.
    pub process_shards: Option<usize>,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            name: "mapreduce-job".to_string(),
            num_threads: 0,
            num_map_tasks: 0,
            num_reduce_tasks: 0,
            combine_buffer_records: DEFAULT_COMBINE_BUFFER_RECORDS,
            memory_budget: env_memory_budget(),
            spill_dir: env_spill_dir(),
            process_shards: None,
        }
    }
}

impl JobConfig {
    /// Creates a configuration with the given name and all other fields at
    /// their defaults.
    pub fn named(name: impl Into<String>) -> Self {
        JobConfig::default().with_name(name)
    }

    /// Sets the job name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the number of worker threads (0 = all cores).
    pub fn with_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Sets the number of map tasks (0 = one per worker).
    pub fn with_map_tasks(mut self, n: usize) -> Self {
        self.num_map_tasks = n;
        self
    }

    /// Sets the number of reduce tasks (0 = one per worker).
    pub fn with_reduce_tasks(mut self, n: usize) -> Self {
        self.num_reduce_tasks = n;
        self
    }

    /// Sets the streaming-shuffle combining-buffer size in records.
    ///
    /// # Panics
    /// Panics if `records` is zero.
    pub fn with_combine_buffer_records(mut self, records: usize) -> Self {
        assert!(records > 0, "combine buffer must hold at least one record");
        self.combine_buffer_records = records;
        self
    }

    /// Sets the map-side memory budget in bytes (`None` = unlimited,
    /// overriding any [`MEMORY_BUDGET_ENV`] default).  See
    /// [`JobConfig::memory_budget`].
    pub fn with_memory_budget(mut self, bytes: Option<u64>) -> Self {
        self.memory_budget = bytes.filter(|b| *b > 0);
        self
    }

    /// Sets the directory spilled runs are written under (`None` = system
    /// temp directory).  See [`JobConfig::spill_dir`].
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Opts the job into the sharded multi-process runtime with `n`
    /// worker processes (0 = stay in process).  See
    /// [`JobConfig::process_shards`]; the shard count actually used inside
    /// a sharded session is the session's, this flag is the opt-in.
    pub fn with_process_shards(mut self, n: usize) -> Self {
        self.process_shards = if n == 0 { None } else { Some(n) };
        self
    }

    /// Resolved number of worker threads.
    pub fn effective_threads(&self) -> usize {
        if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        }
    }

    /// Resolved number of map tasks for an input of `input_len` records.
    ///
    /// Never more tasks than records (a task with no input is pointless)
    /// and always at least one.
    pub fn effective_map_tasks(&self, input_len: usize) -> usize {
        let base = if self.num_map_tasks == 0 {
            self.effective_threads()
        } else {
            self.num_map_tasks
        };
        base.clamp(1, input_len.max(1))
    }

    /// Resolved number of reduce partitions.
    pub fn effective_reduce_tasks(&self) -> usize {
        if self.num_reduce_tasks == 0 {
            self.effective_threads()
        } else {
            self.num_reduce_tasks
        }
        .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_resolve_to_positive_values() {
        let c = JobConfig::default();
        assert!(c.effective_threads() >= 1);
        assert!(c.effective_map_tasks(100) >= 1);
        assert!(c.effective_reduce_tasks() >= 1);
        assert!(c.combine_buffer_records > 0);
    }

    #[test]
    fn memory_budget_and_spill_dir_are_configurable() {
        let c = JobConfig::named("s")
            .with_memory_budget(Some(4096))
            .with_spill_dir("/tmp/spills")
            .with_combine_buffer_records(16);
        assert_eq!(c.memory_budget, Some(4096));
        assert_eq!(c.spill_dir, Some(PathBuf::from("/tmp/spills")));
        assert_eq!(c.combine_buffer_records, 16);
        // Explicit None overrides whatever the environment provided.
        let unlimited = c.with_memory_budget(None);
        assert_eq!(unlimited.memory_budget, None);
    }

    #[test]
    fn zero_budget_means_unlimited() {
        assert_eq!(
            JobConfig::default()
                .with_memory_budget(Some(0))
                .memory_budget,
            None
        );
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn zero_combine_buffer_is_rejected() {
        let _ = JobConfig::default().with_combine_buffer_records(0);
    }

    #[test]
    fn builder_setters_are_applied() {
        let c = JobConfig::named("x")
            .with_threads(3)
            .with_map_tasks(7)
            .with_reduce_tasks(5);
        assert_eq!(c.name, "x");
        assert_eq!(c.effective_threads(), 3);
        assert_eq!(c.effective_map_tasks(100), 7);
        assert_eq!(c.effective_reduce_tasks(), 5);
    }

    #[test]
    fn map_tasks_never_exceed_input_length() {
        let c = JobConfig::default().with_map_tasks(64);
        assert_eq!(c.effective_map_tasks(3), 3);
        assert_eq!(c.effective_map_tasks(0), 1);
    }
}
