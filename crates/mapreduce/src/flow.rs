//! A lazy, typed dataflow layer over the job executor.
//!
//! The paper's algorithms are *chains* of MapReduce jobs — the two-job
//! similarity join of Section 4, the per-round jobs of GreedyMR and StackMR
//! in Sections 5–6 — but [`crate::Job`] runs a single job.  This module
//! adds the plan-builder API that callers chain jobs with:
//!
//! * [`FlowContext`] — shared execution state: the [`JobConfig`] every job
//!   of the chain runs under, the [`KvStore`] HDFS stand-in for persisted
//!   datasets, and the accumulated [`JobMetrics`] of every job the flow has
//!   executed ([`FlowContext::report`] snapshots them as a [`FlowReport`]).
//! * [`Dataset<K, V>`] — a *deferred* computation producing `(K, V)`
//!   records.  Nothing runs until a terminal ([`Dataset::collect`] or
//!   [`Dataset::persist`]) is invoked; combinators only extend the plan.
//! * [`JobStage`] — a job under construction: [`Dataset::map_with`] fixes
//!   the mapper, [`JobStage::combined_with`] / [`JobStage::partitioned_by`]
//!   optionally fix the combiner and partitioner, and
//!   [`JobStage::reduce_with`] completes the job, yielding the next
//!   `Dataset` in the chain.
//! * [`Dataset::then`] — the multi-job chain combinator for stages whose
//!   *construction* depends on the previous job's output (e.g. the
//!   similarity join builds an inverted index from job 1's output and ships
//!   it to job 2's mapper).
//!
//! Records move between stages by value: a completed job's output `Vec` is
//! handed to the next job as its input without cloning or re-sorting.
//!
//! # Example
//!
//! ```
//! use smr_mapreduce::flow::FlowContext;
//! use smr_mapreduce::prelude::*;
//!
//! struct Tokenize;
//! impl Mapper for Tokenize {
//!     type InKey = usize;
//!     type InValue = String;
//!     type OutKey = String;
//!     type OutValue = u64;
//!     fn map(&self, _k: &usize, text: &String, out: &mut Emitter<String, u64>) {
//!         for w in text.split_whitespace() {
//!             out.emit(w.to_string(), 1);
//!         }
//!     }
//! }
//!
//! struct Sum;
//! impl Reducer for Sum {
//!     type Key = String;
//!     type InValue = u64;
//!     type OutKey = String;
//!     type OutValue = u64;
//!     fn reduce(&self, k: &String, vs: &[u64], out: &mut Emitter<String, u64>) {
//!         out.emit(k.clone(), vs.iter().sum());
//!     }
//! }
//!
//! let flow = FlowContext::named("wc");
//! let mut counts = flow
//!     .dataset(vec![(0usize, "a b a".to_string()), (1, "b c".to_string())])
//!     .map_with(Tokenize)
//!     .reduce_with(Sum)
//!     .collect();
//! counts.sort();
//! assert_eq!(counts[0], ("a".to_string(), 2));
//! assert_eq!(flow.report().num_jobs(), 1);
//! ```

use std::any::Any;
use std::collections::HashSet;
use std::marker::PhantomData;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use smr_storage::{DatasetStore, RunReader, StorageError};

use crate::config::JobConfig;
use crate::counters::Counters;
use crate::executor::Job;
use crate::metrics::JobMetrics;
use crate::partition::{HashPartitioner, Partitioner};
use crate::store::KvStore;
use crate::types::{Combiner, IdentityCombiner, Key, Mapper, Reducer, Value};

/// The records a dataset materializes to.
pub type Records<K, V> = Vec<(K, V)>;

/// The deferred computation behind a [`Dataset`].
type SourceThunk<K, V> = Box<dyn FnOnce(&FlowContext) -> Records<K, V>>;

/// A type-erased persisted dataset inside the in-memory flow store,
/// alongside the `type_name` of its `Records<K, V>` (for typed mismatch
/// errors).
type StoredDataset = (Arc<dyn Any + Send + Sync>, &'static str);

/// A typed error raised by the flow's persistence layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// Nothing was persisted at the path.
    MissingDataset {
        /// The requested path.
        path: String,
    },
    /// The dataset at the path was persisted with a different record type.
    TypeMismatch {
        /// The requested path.
        path: String,
        /// Record type the dataset was persisted with.
        stored: String,
        /// Record type the caller requested.
        requested: String,
    },
    /// The storage backend failed (I/O error, corrupt file, …).
    Storage {
        /// The requested path.
        path: String,
        /// The backend's error message.
        message: String,
    },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::MissingDataset { path } => write!(f, "no dataset persisted at `{path}`"),
            FlowError::TypeMismatch {
                path,
                stored,
                requested,
            } => write!(
                f,
                "dataset at `{path}` holds `{stored}`, requested `{requested}`"
            ),
            FlowError::Storage { path, message } => {
                write!(f, "storage error at `{path}`: {message}")
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// Where a flow persists its datasets: the in-memory [`KvStore`] (the
/// default), or a file-backed [`DatasetStore`] so chained jobs stream
/// between stages without holding every persisted dataset in RAM.
#[derive(Debug)]
enum FlowStore {
    Memory(KvStore<StoredDataset>),
    Disk(DatasetStore),
}

/// Summary of every job a flow has executed so far, in execution order.
#[derive(Debug, Clone, Default)]
pub struct FlowReport {
    /// Metrics of every job, in execution order.
    pub jobs: Vec<JobMetrics>,
    /// Accumulated totals over all jobs.
    pub totals: JobMetrics,
    /// Persistence errors the flow swallowed to keep a pipeline running
    /// (e.g. [`FlowContext::load`] of a handle whose path has since been
    /// rewritten with a different record type, or a storage failure while
    /// reading a persisted dataset back).  A healthy run has none;
    /// anything here is a pipeline bug surfacing.
    pub errors: Vec<FlowError>,
    /// Job indices at which iterative rounds started (recorded by
    /// [`FlowContext::mark_round`]), in order.  Empty for non-iterative
    /// flows.
    pub round_starts: Vec<usize>,
}

impl FlowReport {
    fn new(jobs: Vec<JobMetrics>, errors: Vec<FlowError>, round_starts: Vec<usize>) -> Self {
        let mut totals = JobMetrics {
            job_name: "totals".to_string(),
            ..JobMetrics::default()
        };
        for job in &jobs {
            totals.accumulate(job);
        }
        FlowReport {
            jobs,
            totals,
            errors,
            round_starts,
        }
    }

    /// Number of MapReduce jobs the flow has executed.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Total records shuffled across all jobs — the paper's communication
    /// cost of the whole chain.
    pub fn total_shuffled_records(&self) -> u64 {
        self.totals.shuffle_records
    }

    /// Total bytes shuffled across all jobs — the record count's byte-level
    /// companion, so cost tables can compare chains whose records differ in
    /// size (e.g. candidate generators shuffling different value types).
    pub fn total_shuffled_bytes(&self) -> u64 {
        self.totals.shuffle_bytes
    }

    /// The job names in execution order.
    pub fn job_names(&self) -> Vec<&str> {
        self.jobs.iter().map(|m| m.job_name.as_str()).collect()
    }

    /// The metrics of every job executed at or after job index `start`
    /// (mirrors [`FlowContext::jobs_from`] on a snapshot).
    pub fn jobs_from(&self, start: usize) -> &[JobMetrics] {
        self.jobs.get(start..).unwrap_or_default()
    }

    /// Number of iterative rounds the flow recorded (see
    /// [`FlowContext::mark_round`]).
    pub fn num_rounds(&self) -> usize {
        self.round_starts.len()
    }

    /// The metrics of exactly the jobs of round `round` — a *round-local*
    /// view: jobs of other rounds (and pre-round jobs like a similarity
    /// join sharing the flow) never alias into it.  Empty when the round
    /// was never recorded.
    pub fn round_jobs(&self, round: usize) -> &[JobMetrics] {
        let Some(&start) = self.round_starts.get(round) else {
            return &[];
        };
        let end = self
            .round_starts
            .get(round + 1)
            .copied()
            .unwrap_or(self.jobs.len());
        self.jobs.get(start..end).unwrap_or_default()
    }

    /// The job names of round `round`, round-local like
    /// [`FlowReport::round_jobs`].
    pub fn round_job_names(&self, round: usize) -> Vec<&str> {
        self.round_jobs(round)
            .iter()
            .map(|m| m.job_name.as_str())
            .collect()
    }
}

struct FlowInner {
    config: JobConfig,
    jobs: Mutex<Vec<JobMetrics>>,
    store: FlowStore,
    errors: Mutex<Vec<FlowError>>,
    anonymous_jobs: AtomicUsize,
    /// Job indices at which iterative rounds started.
    round_starts: Mutex<Vec<usize>>,
    /// Lazily created side-data store (see [`FlowContext::side_store`]).
    side: Mutex<Option<DatasetStore>>,
}

impl Drop for FlowInner {
    fn drop(&mut self) {
        // Side data is transient by contract: whatever jobs parked there
        // (index partitions, vector chunks) dies with the flow.
        if let Some(store) = self.side.lock().take() {
            let _ = std::fs::remove_dir_all(store.root());
        }
    }
}

/// Shared state of a job chain: the [`JobConfig`] every job runs under,
/// the [`KvStore`] standing in for the distributed file system, and the
/// accumulated metrics of every executed job.
///
/// Cloning a `FlowContext` is cheap and every clone shares the same state,
/// so one context can be threaded through an entire pipeline (similarity
/// join, then every round of a matching algorithm) and report all jobs in
/// one [`FlowReport`].
#[derive(Clone)]
pub struct FlowContext {
    inner: Arc<FlowInner>,
}

impl std::fmt::Debug for FlowContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowContext")
            .field("config", &self.inner.config)
            .field("jobs", &self.inner.jobs.lock().len())
            .field("persisted", &self.persisted_paths())
            .finish()
    }
}

impl FlowContext {
    /// Creates a flow whose jobs all run under `config`, persisting
    /// datasets in memory.  The config's `name` prefixes every job name of
    /// the chain.
    pub fn new(config: JobConfig) -> Self {
        FlowContext::with_store(config, FlowStore::Memory(KvStore::new()))
    }

    /// Creates a flow whose persisted datasets live in a file-backed store
    /// rooted at `dir` (created if missing): `persist` writes encoded
    /// records to disk and `load` streams them back, so chained jobs
    /// (similarity join → matching rounds) keep only the stage in flight
    /// in RAM.  Datasets already present under `dir` (e.g. from an earlier
    /// run) are visible to `load`.
    pub fn with_disk_store(
        config: JobConfig,
        dir: impl Into<PathBuf>,
    ) -> Result<Self, StorageError> {
        Ok(FlowContext::with_store(
            config,
            FlowStore::Disk(DatasetStore::open(dir)?),
        ))
    }

    fn with_store(config: JobConfig, store: FlowStore) -> Self {
        FlowContext {
            inner: Arc::new(FlowInner {
                config,
                jobs: Mutex::new(Vec::new()),
                store,
                errors: Mutex::new(Vec::new()),
                anonymous_jobs: AtomicUsize::new(0),
                round_starts: Mutex::new(Vec::new()),
                side: Mutex::new(None),
            }),
        }
    }

    /// Creates a flow with a default config carrying the given name.
    pub fn named(name: impl Into<String>) -> Self {
        FlowContext::new(JobConfig::named(name))
    }

    /// The job configuration every job of this flow runs under.
    pub fn config(&self) -> &JobConfig {
        &self.inner.config
    }

    /// Number of jobs the flow has executed so far.  Combined with
    /// [`FlowContext::jobs_from`] this isolates the metrics of one
    /// sub-chain (e.g. one algorithm round) out of a longer flow.
    pub fn num_jobs(&self) -> usize {
        self.inner.jobs.lock().len()
    }

    /// The metrics of every job executed since `start` (a value previously
    /// returned by [`FlowContext::num_jobs`]), in execution order.
    pub fn jobs_from(&self, start: usize) -> Vec<JobMetrics> {
        let jobs = self.inner.jobs.lock();
        jobs.get(start..).unwrap_or_default().to_vec()
    }

    /// Marks the start of an iterative round: every job executed from now
    /// until the next mark belongs to this round.  The recorded boundaries
    /// make [`FlowReport::round_jobs`] / [`FlowReport::round_job_names`]
    /// round-local, so per-round metrics never alias across rounds (or
    /// into pre-round jobs of a shared flow).
    pub fn mark_round(&self) {
        let jobs = self.inner.jobs.lock().len();
        self.inner.round_starts.lock().push(jobs);
    }

    /// Snapshot of every executed job plus accumulated totals and any
    /// swallowed persistence errors.
    pub fn report(&self) -> FlowReport {
        FlowReport::new(
            self.inner.jobs.lock().clone(),
            self.inner.errors.lock().clone(),
            self.inner.round_starts.lock().clone(),
        )
    }

    /// Creates a dataset from already materialized records.  The records
    /// are moved into the plan and handed to the first job untouched.
    pub fn dataset<K: Key, V: Value>(&self, records: Records<K, V>) -> Dataset<K, V> {
        Dataset {
            ctx: self.clone(),
            thunk: Box::new(move |_| records),
        }
    }

    /// Creates a dataset that lazily reads the records behind a typed
    /// [`PersistedDataset`] handle (see [`Dataset::persist`]).  The handle
    /// carries the record type the dataset was persisted with, so a
    /// mistyped load is a compile error, not a runtime
    /// [`FlowError::TypeMismatch`] — that error remains reachable only
    /// when the path behind a handle is later rewritten at a different
    /// type, in which case the load materializes empty and the error is
    /// recorded in [`FlowReport::errors`].  A handle whose backing dataset
    /// has been removed from the store reads as empty, mirroring a missing
    /// path.
    pub fn load<K: Key, V: Value>(&self, persisted: &PersistedDataset<K, V>) -> Dataset<K, V> {
        let path = persisted.path().to_string();
        Dataset {
            ctx: self.clone(),
            thunk: Box::new(move |ctx| match ctx.read_persisted(&path) {
                Ok(records) => records,
                Err(FlowError::MissingDataset { .. }) => Vec::new(),
                Err(error) => {
                    eprintln!("flow `{}`: load failed: {error}", ctx.inner.config.name);
                    ctx.inner.errors.lock().push(error);
                    Vec::new()
                }
            }),
        }
    }

    /// Reads a persisted dataset back out of the flow's store, with typed
    /// errors for missing paths, record-type mismatches and storage
    /// failures.
    pub fn read_persisted<K: Key, V: Value>(&self, path: &str) -> Result<Records<K, V>, FlowError> {
        match &self.inner.store {
            FlowStore::Memory(store) => {
                let stored = store.read(path);
                let Some((any, stored_type)) = stored.first().cloned() else {
                    return Err(FlowError::MissingDataset {
                        path: path.to_string(),
                    });
                };
                match any.downcast::<Records<K, V>>() {
                    Ok(records) => Ok(records.as_ref().clone()),
                    Err(_) => Err(FlowError::TypeMismatch {
                        path: path.to_string(),
                        stored: stored_type.to_string(),
                        requested: std::any::type_name::<Records<K, V>>().to_string(),
                    }),
                }
            }
            FlowStore::Disk(store) => match store.read::<(K, V)>(path) {
                Ok(records) => Ok(records),
                Err(StorageError::Missing { name }) => {
                    Err(FlowError::MissingDataset { path: name })
                }
                Err(StorageError::TypeMismatch { stored, requested }) => {
                    Err(FlowError::TypeMismatch {
                        path: path.to_string(),
                        stored,
                        requested,
                    })
                }
                Err(other) => Err(FlowError::Storage {
                    path: path.to_string(),
                    message: other.to_string(),
                }),
            },
        }
    }

    /// The flow's *side-data* store: a disk-backed [`DatasetStore`] for
    /// data that jobs ship around outside the shuffle — the Hadoop
    /// distributed-cache role.  A job chain parks derived artifacts here
    /// (an inverted index in term-range partitions, a corpus in vector
    /// chunks) and later stages open them on demand instead of holding
    /// them in memory for the whole chain.
    ///
    /// The store is created lazily on first use — under the disk store's
    /// root for [`FlowContext::with_disk_store`] flows, under the system
    /// temp directory otherwise — is shared by every clone of the context,
    /// and is deleted when the flow drops: side data is transient, unlike
    /// [`Dataset::persist`] outputs.
    ///
    /// # Panics
    /// Panics when the store directory cannot be created (an environment
    /// failure, like a failed persist).
    pub fn side_store(&self) -> DatasetStore {
        static SIDE_SEQ: AtomicUsize = AtomicUsize::new(0);
        let mut guard = self.inner.side.lock();
        if let Some(store) = guard.as_ref() {
            return store.clone();
        }
        let dir = match &self.inner.store {
            FlowStore::Disk(store) => store.root().join("_side"),
            FlowStore::Memory(_) => std::env::temp_dir().join(format!(
                "smr-flow-side-{}-{}",
                std::process::id(),
                SIDE_SEQ.fetch_add(1, Ordering::Relaxed)
            )),
        };
        let store = DatasetStore::open(&dir)
            .unwrap_or_else(|e| panic!("failed to open flow side store at {dir:?}: {e}"));
        *guard = Some(store.clone());
        store
    }

    /// Creates a [`RoundState`] for an iterative computation driven
    /// through this flow: the record set that survives from one round to
    /// the next.  In [`RoundStateMode::DiskBacked`] mode (the default of
    /// the matching algorithms) the records live in the flow's
    /// [`FlowContext::side_store`] as run files between rounds, with
    /// retired records dropped by a tombstone-aware reader at load time;
    /// [`RoundStateMode::InMemory`] keeps the reference `Vec` semantics.
    /// Both modes yield byte-identical round inputs.
    pub fn round_state<K: Key, V: Value>(
        &self,
        name: impl Into<String>,
        mode: RoundStateMode,
    ) -> RoundState<K, V> {
        static ROUND_STATE_SEQ: AtomicUsize = AtomicUsize::new(0);
        let seq = ROUND_STATE_SEQ.fetch_add(1, Ordering::Relaxed);
        RoundState {
            ctx: self.clone(),
            name: format!("rs{seq}-{}", name.into()),
            round: 0,
            max_state_bytes: 0,
            slot: match mode {
                RoundStateMode::InMemory => RoundSlot::Memory(Vec::new()),
                RoundStateMode::DiskBacked => RoundSlot::Disk {
                    file: None,
                    live: 0,
                    tombstones: Arc::new(HashSet::new()),
                    handle: None,
                },
            },
        }
    }

    /// The paths of every persisted dataset, sorted.
    pub fn persisted_paths(&self) -> Vec<String> {
        match &self.inner.store {
            FlowStore::Memory(store) => store.paths(),
            FlowStore::Disk(store) => store.paths(),
        }
    }

    fn persist_records<K: Key, V: Value>(&self, path: &str, records: Records<K, V>) -> usize {
        let count = records.len();
        match &self.inner.store {
            FlowStore::Memory(store) => {
                let tagged: StoredDataset =
                    (Arc::new(records), std::any::type_name::<Records<K, V>>());
                store.write(path, vec![tagged]);
            }
            FlowStore::Disk(store) => {
                // A failed persist is an environment failure (disk full,
                // permissions), not a recoverable pipeline state.
                store
                    .write(path, &records)
                    .unwrap_or_else(|e| panic!("failed to persist `{path}`: {e}"));
            }
        }
        count
    }

    fn record_job(&self, metrics: JobMetrics) {
        self.inner.jobs.lock().push(metrics);
    }

    /// Resolves the name of the next job: `{config.name}-{stage}` for a
    /// named stage, `{config.name}-job-{n}` otherwise.
    fn job_name(&self, stage: Option<&str>) -> String {
        match stage {
            Some(stage) => format!("{}-{stage}", self.inner.config.name),
            None => {
                let n = self.inner.anonymous_jobs.fetch_add(1, Ordering::Relaxed);
                format!("{}-job-{n}", self.inner.config.name)
            }
        }
    }
}

/// A typed handle to a dataset persisted in a flow's store, returned by
/// [`Dataset::persist`] and accepted by [`FlowContext::load`].
///
/// The handle remembers the record type `(K, V)` the dataset was written
/// with, so loading it back cannot mismatch types — the runtime
/// type-mismatch error of the removed stringly-typed path accessors is
/// unrepresentable through this API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistedDataset<K, V> {
    path: String,
    records: usize,
    _marker: PhantomData<fn() -> (K, V)>,
}

impl<K: Key, V: Value> PersistedDataset<K, V> {
    /// The path the dataset is persisted under.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Number of records persisted.
    pub fn len(&self) -> usize {
        self.records
    }

    /// Whether the persisted dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }
}

/// Where the surviving records of an iterative computation live between
/// rounds (see [`FlowContext::round_state`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoundStateMode {
    /// Survivors stay in a `Vec` in RAM between rounds — the reference
    /// semantics the disk-backed mode is locked against.
    InMemory,
    /// Round outputs are written to run files in the flow's side store and
    /// streamed back as the next round's input; retired records are
    /// tombstoned and skipped at read time instead of being rewritten.
    /// No round's full record set is retained in RAM between rounds.
    #[default]
    DiskBacked,
}

/// The inter-round state of an iterative job chain: the `(K, V)` records
/// that survive from one round to the next.
///
/// The contract both storage modes satisfy identically:
///
/// * [`RoundState::seed`] installs the round-0 records;
/// * [`RoundState::dataset_with`] exposes the current live records — in
///   seeding order, minus retirees — as a lazy [`Dataset`] source;
/// * [`RoundState::absorb`] takes a round's output (whose keys must be
///   unique, as reducer outputs keyed by node are), calls `keep` on every
///   record *in output order*, and retires the records `keep` rejects.
///
/// In [`RoundStateMode::DiskBacked`] mode the absorbed output is written
/// to a run file in the flow's [`FlowContext::side_store`] exactly as the
/// round emitted it; retirement is applied by a tombstone-aware
/// [`smr_storage::RunReader`] while streaming the file back, so the
/// survivor list is never rewritten wholesale.  Round files are removed as
/// soon as they are superseded (and on drop).
pub struct RoundState<K: Key, V: Value> {
    ctx: FlowContext,
    name: String,
    round: usize,
    max_state_bytes: u64,
    slot: RoundSlot<K, V>,
}

enum RoundSlot<K, V> {
    Memory(Records<K, V>),
    Disk {
        /// Side-store dataset holding the latest absorbed round output
        /// (`None` before seeding).
        file: Option<String>,
        /// Records in the file minus tombstoned ones.
        live: usize,
        /// Keys retired from the current file.
        tombstones: Arc<HashSet<K>>,
        /// The round file's descriptor, kept open from the moment the file
        /// is installed: re-reads dup it (`try_clone`) instead of paying a
        /// path open per round.  `None` when the open failed (the reader
        /// falls back to opening by name) or before seeding.
        handle: Option<Arc<std::fs::File>>,
    },
}

impl<K: Key, V: Value> std::fmt::Debug for RoundState<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundState")
            .field("name", &self.name)
            .field("round", &self.round)
            .field("live", &self.len())
            .finish()
    }
}

impl<K: Key, V: Value> RoundState<K, V> {
    /// Installs the round-0 records, replacing any current state.
    pub fn seed(&mut self, records: Records<K, V>) {
        match &mut self.slot {
            RoundSlot::Memory(current) => *current = records,
            RoundSlot::Disk { .. } => {
                let file = self.file_name(self.round);
                let live = records.len();
                self.write_round_file(&file, &records);
                self.replace_disk_slot(Some(file), live, HashSet::new());
            }
        }
    }

    /// Number of live (non-retired) records.
    pub fn len(&self) -> usize {
        match &self.slot {
            RoundSlot::Memory(records) => records.len(),
            RoundSlot::Disk { live, .. } => *live,
        }
    }

    /// Whether no live records remain — the usual convergence signal.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rounds absorbed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Largest on-disk round file this state has held, in bytes — what the
    /// in-memory path would have kept resident between rounds.  Zero in
    /// [`RoundStateMode::InMemory`] mode.
    pub fn max_state_bytes(&self) -> u64 {
        self.max_state_bytes
    }

    /// The current live records as a lazy [`Dataset`] source, projected
    /// through `proj` record by record (e.g. unwrapping a round-output
    /// envelope into the next round's mapper input).  Live records arrive
    /// in their original output order; in disk-backed mode they are
    /// streamed from the round file with retirees skipped, never
    /// materializing the raw file contents as a whole.
    pub fn dataset_with<K2, V2, F>(&self, proj: F) -> Dataset<K2, V2>
    where
        K2: Key,
        V2: Value,
        F: Fn(K, V) -> (K2, V2) + 'static,
    {
        match &self.slot {
            RoundSlot::Memory(records) => {
                let records = records.clone();
                Dataset {
                    ctx: self.ctx.clone(),
                    thunk: Box::new(move |_| {
                        records.into_iter().map(|(k, v)| proj(k, v)).collect()
                    }),
                }
            }
            RoundSlot::Disk {
                file,
                live,
                tombstones,
                handle,
            } => {
                let file = file.clone();
                let expect = *live;
                let tombstones = Arc::clone(tombstones);
                let handle = handle.clone();
                let store = self.ctx.side_store();
                Dataset {
                    ctx: self.ctx.clone(),
                    thunk: Box::new(move |_| {
                        let Some(file) = file else {
                            return Vec::new();
                        };
                        // Re-reads go through the descriptor opened when the
                        // round file was installed: `try_clone` + rewind is
                        // cheaper than a path lookup + open per round.  The
                        // dup shares the file offset, so collects of one
                        // round must stay sequential (they do: the driver
                        // collects a round's dataset exactly once at a time).
                        let reader = match &handle {
                            Some(handle) => handle
                                .try_clone()
                                .map_err(StorageError::from)
                                .and_then(RunReader::<(K, V)>::from_file)
                                .and_then(|r| r.check_type().map(|()| r)),
                            None => store.open_reader::<(K, V)>(&file),
                        };
                        let mut reader = reader
                            .unwrap_or_else(|e| panic!("failed to open round state `{file}`: {e}"));
                        let mut records = Vec::with_capacity(expect);
                        if tombstones.is_empty() {
                            // Nothing is retired yet (every record of a fresh
                            // seed or a fully-kept round survives): stream the
                            // file without the per-record tombstone lookup.
                            while let Some((k, v)) = reader.next_record().unwrap_or_else(|e| {
                                panic!("failed to stream round state `{file}`: {e}")
                            }) {
                                records.push(proj(k, v));
                            }
                        } else {
                            let mut retained =
                                reader.retained(move |(k, _): &(K, V)| !tombstones.contains(k));
                            while let Some((k, v)) = retained.next_record().unwrap_or_else(|e| {
                                panic!("failed to stream round state `{file}`: {e}")
                            }) {
                                records.push(proj(k, v));
                            }
                        }
                        records
                    }),
                }
            }
        }
    }

    /// The current live records, unprojected.
    pub fn dataset(&self) -> Dataset<K, V> {
        self.dataset_with(|k, v| (k, v))
    }

    /// Absorbs a round's output as the next round's state.  `keep` is
    /// called once per output record, in output order (side effects like
    /// collecting matched edges are deterministic); records it rejects are
    /// retired.  Keys must be unique within `output` — true for reducer
    /// outputs keyed by node — since retirement is tracked per key.
    pub fn absorb<F>(&mut self, output: Records<K, V>, mut keep: F)
    where
        F: FnMut(&K, &V) -> bool,
    {
        self.round += 1;
        match &mut self.slot {
            RoundSlot::Memory(current) => {
                let mut survivors = Vec::with_capacity(output.len());
                for (k, v) in output {
                    if keep(&k, &v) {
                        survivors.push((k, v));
                    }
                }
                *current = survivors;
            }
            RoundSlot::Disk { .. } => {
                let mut tombstones = HashSet::new();
                for (k, v) in &output {
                    if !keep(k, v) {
                        tombstones.insert(k.clone());
                    }
                }
                let live = output.len() - tombstones.len();
                let file = self.file_name(self.round);
                self.write_round_file(&file, &output);
                self.replace_disk_slot(Some(file), live, tombstones);
            }
        }
    }

    /// Drops the state (and its disk file) explicitly.
    pub fn clear(&mut self) {
        match &mut self.slot {
            RoundSlot::Memory(records) => records.clear(),
            RoundSlot::Disk { .. } => self.replace_disk_slot(None, 0, HashSet::new()),
        }
    }

    fn file_name(&self, round: usize) -> String {
        format!("{}-r{round}", self.name)
    }

    fn write_round_file(&mut self, file: &str, records: &Records<K, V>) {
        let store = self.ctx.side_store();
        // A failed round-state write is an environment failure (disk
        // full, permissions), like a failed persist.
        store
            .write(file, records)
            .unwrap_or_else(|e| panic!("failed to write round state `{file}`: {e}"));
        self.max_state_bytes = self.max_state_bytes.max(store.file_size(file));
    }

    /// Installs a new disk slot, removing the superseded round file and
    /// keeping the new file's descriptor open for the round's re-reads.
    fn replace_disk_slot(&mut self, file: Option<String>, live: usize, tombstones: HashSet<K>) {
        let store = self.ctx.side_store();
        // A failed open only costs the keep-open optimization: readers
        // fall back to opening the file by name.
        let handle = file
            .as_deref()
            .and_then(|name| store.open_file(name).ok())
            .map(Arc::new);
        let RoundSlot::Disk {
            file: old_file,
            live: old_live,
            tombstones: old_tombstones,
            handle: old_handle,
        } = &mut self.slot
        else {
            unreachable!("replace_disk_slot on an in-memory slot");
        };
        if let Some(old) = old_file.take() {
            if file.as_deref() != Some(old.as_str()) {
                store.remove(&old);
            }
        }
        *old_file = file;
        *old_live = live;
        *old_tombstones = Arc::new(tombstones);
        *old_handle = handle;
    }
}

impl<K: Key, V: Value> Drop for RoundState<K, V> {
    fn drop(&mut self) {
        if let RoundSlot::Disk {
            file: Some(file), ..
        } = &self.slot
        {
            self.ctx.side_store().remove(file);
        }
    }
}

/// A deferred chain of MapReduce jobs producing `(K, V)` records.
///
/// Nothing executes until a terminal — [`Dataset::collect`] or
/// [`Dataset::persist`] — runs the plan.  Each completed job hands its
/// output records to the next job *by move*; no stage clones or re-sorts
/// between jobs.
pub struct Dataset<K: Key, V: Value> {
    ctx: FlowContext,
    thunk: SourceThunk<K, V>,
}

impl<K: Key, V: Value> std::fmt::Debug for Dataset<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dataset").field("ctx", &self.ctx).finish()
    }
}

impl<K: Key, V: Value> Dataset<K, V> {
    /// The flow this dataset belongs to.
    pub fn context(&self) -> &FlowContext {
        &self.ctx
    }

    /// Starts the next job of the chain by fixing its mapper.  The
    /// combiner and partitioner default to none / hash partitioning;
    /// [`JobStage::reduce_with`] completes the job.
    pub fn map_with<M>(self, mapper: M) -> DefaultJobStage<M>
    where
        M: Mapper<InKey = K, InValue = V> + 'static,
    {
        JobStage {
            ctx: self.ctx,
            input: self.thunk,
            mapper,
            combiner: None,
            partitioner: HashPartitioner::new(),
            stage_name: None,
            counters: None,
        }
    }

    /// Chains a continuation whose *plan* depends on this dataset's
    /// output: `build` receives the materialized records (moved) and the
    /// flow, and returns the dataset to execute next.  This is the general
    /// multi-job combinator for chains where a later job is constructed
    /// from an earlier job's output (side data, derived inputs); the
    /// continuation runs lazily, when the final terminal executes.
    ///
    /// The returned dataset runs under *its own* flow: a continuation
    /// built on a different [`FlowContext`] executes under that context's
    /// config and reports into that context, not this one's.
    pub fn then<K2, V2, F>(self, build: F) -> Dataset<K2, V2>
    where
        K2: Key,
        V2: Value,
        F: FnOnce(Records<K, V>, &FlowContext) -> Dataset<K2, V2> + 'static,
    {
        let Dataset { ctx, thunk } = self;
        Dataset {
            ctx,
            thunk: Box::new(move |ctx| {
                let records = thunk(ctx);
                // Honour the continuation's own context: a dataset built
                // on another flow must run (and report) there, not here.
                let Dataset {
                    ctx: next_ctx,
                    thunk: next_thunk,
                } = build(records, ctx);
                next_thunk(&next_ctx)
            }),
        }
    }

    /// Terminal: executes every job of the chain and returns the final
    /// records.  Metrics of every executed job land in the flow's
    /// [`FlowReport`].
    pub fn collect(self) -> Records<K, V> {
        let Dataset { ctx, thunk } = self;
        thunk(&ctx)
    }

    /// Terminal: executes the chain and persists the final records in the
    /// flow's store under `path`.  Returns a typed [`PersistedDataset`]
    /// handle that [`FlowContext::load`] reads back without any chance of
    /// a record-type mismatch.
    pub fn persist(self, path: &str) -> PersistedDataset<K, V> {
        let Dataset { ctx, thunk } = self;
        let records = thunk(&ctx);
        let count = ctx.persist_records(path, records);
        PersistedDataset {
            path: path.to_string(),
            records: count,
            _marker: PhantomData,
        }
    }
}

/// The [`JobStage`] produced by [`Dataset::map_with`]: no combiner yet,
/// hash partitioning.
pub type DefaultJobStage<M> = JobStage<
    M,
    IdentityCombiner<<M as Mapper>::OutKey, <M as Mapper>::OutValue>,
    HashPartitioner<<M as Mapper>::OutKey>,
>;

/// One MapReduce job under construction inside a [`Dataset`] chain: the
/// mapper is fixed, the combiner and partitioner are optional, and
/// [`JobStage::reduce_with`] seals the job.
pub struct JobStage<M: Mapper, C, P> {
    ctx: FlowContext,
    input: SourceThunk<M::InKey, M::InValue>,
    mapper: M,
    combiner: Option<C>,
    partitioner: P,
    stage_name: Option<String>,
    counters: Option<Counters>,
}

impl<M: Mapper, C, P> std::fmt::Debug for JobStage<M, C, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobStage")
            .field("stage_name", &self.stage_name)
            .finish()
    }
}

impl<M, C, P> JobStage<M, C, P>
where
    M: Mapper + 'static,
    C: Combiner<Key = M::OutKey, Value = M::OutValue> + 'static,
    P: Partitioner<M::OutKey> + 'static,
{
    /// Names this job: the executed job is called `{flow name}-{name}` and
    /// shows up under that name in the [`FlowReport`].
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.stage_name = Some(name.into());
        self
    }

    /// Adds a map-side combiner (applied while partitioning and again
    /// across sorted runs during the merge, exactly as
    /// [`Job::run_with_combiner`] would).
    pub fn combined_with<C2>(self, combiner: C2) -> JobStage<M, C2, P>
    where
        C2: Combiner<Key = M::OutKey, Value = M::OutValue> + 'static,
    {
        JobStage {
            ctx: self.ctx,
            input: self.input,
            mapper: self.mapper,
            combiner: Some(combiner),
            partitioner: self.partitioner,
            stage_name: self.stage_name,
            counters: self.counters,
        }
    }

    /// Replaces the default hash partitioner.
    pub fn partitioned_by<P2>(self, partitioner: P2) -> JobStage<M, C, P2>
    where
        P2: Partitioner<M::OutKey> + 'static,
    {
        JobStage {
            ctx: self.ctx,
            input: self.input,
            mapper: self.mapper,
            combiner: self.combiner,
            partitioner,
            stage_name: self.stage_name,
            counters: self.counters,
        }
    }

    /// Runs the job with an externally supplied [`Counters`] set instead
    /// of a fresh one.  User counters bumped from map/reduce code holding
    /// a clone of the same set (e.g. domain counters like pruned
    /// candidates) are snapshotted into the job's
    /// [`JobMetrics::user_counters`] when the job completes, alongside the
    /// built-in counters.
    pub fn with_counters(mut self, counters: Counters) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Seals the job with its reducer, yielding the next dataset of the
    /// chain.  The job itself runs only when a terminal executes the
    /// chain; its metrics are recorded in the flow.
    pub fn reduce_with<R>(self, reducer: R) -> Dataset<R::OutKey, R::OutValue>
    where
        R: Reducer<Key = M::OutKey, InValue = M::OutValue> + 'static,
    {
        let JobStage {
            ctx,
            input,
            mapper,
            combiner,
            partitioner,
            stage_name,
            counters,
        } = self;
        Dataset {
            ctx,
            thunk: Box::new(move |ctx| {
                let records = input(ctx);
                let name = ctx.job_name(stage_name.as_deref());
                let job = Job::new(ctx.config().clone().with_name(name));
                let result = job.run_full(
                    &mapper,
                    combiner.as_ref(),
                    &reducer,
                    &partitioner,
                    records,
                    counters.unwrap_or_default(),
                );
                ctx.record_job(result.metrics);
                result.output
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Job;
    use crate::types::Emitter;

    struct SplitWords;
    impl Mapper for SplitWords {
        type InKey = usize;
        type InValue = String;
        type OutKey = String;
        type OutValue = u64;
        fn map(&self, _k: &usize, text: &String, out: &mut Emitter<String, u64>) {
            for w in text.split_whitespace() {
                out.emit(w.to_string(), 1);
            }
        }
    }

    struct SumCounts;
    impl Reducer for SumCounts {
        type Key = String;
        type InValue = u64;
        type OutKey = String;
        type OutValue = u64;
        fn reduce(&self, k: &String, vs: &[u64], out: &mut Emitter<String, u64>) {
            out.emit(k.clone(), vs.iter().sum());
        }
    }

    struct SumCombiner;
    impl Combiner for SumCombiner {
        type Key = String;
        type Value = u64;
        fn combine(&self, _k: &String, vs: &[u64]) -> Vec<u64> {
            vec![vs.iter().sum()]
        }
    }

    /// Keeps only words above a count threshold, re-keyed by count.
    struct ThresholdMapper(u64);
    impl Mapper for ThresholdMapper {
        type InKey = String;
        type InValue = u64;
        type OutKey = u64;
        type OutValue = String;
        fn map(&self, word: &String, count: &u64, out: &mut Emitter<u64, String>) {
            if *count >= self.0 {
                out.emit(*count, word.clone());
            }
        }
    }

    struct JoinWords;
    impl Reducer for JoinWords {
        type Key = u64;
        type InValue = String;
        type OutKey = u64;
        type OutValue = String;
        fn reduce(&self, count: &u64, words: &[String], out: &mut Emitter<u64, String>) {
            let mut words = words.to_vec();
            words.sort();
            out.emit(*count, words.join(" "));
        }
    }

    fn input() -> Vec<(usize, String)> {
        vec![
            (0, "the quick brown fox".to_string()),
            (1, "the lazy dog".to_string()),
            (2, "the quick dog".to_string()),
        ]
    }

    fn config() -> JobConfig {
        JobConfig::named("flow-test").with_threads(2)
    }

    #[test]
    fn single_job_chain_matches_direct_job_execution() {
        let direct =
            Job::new(config().with_name("flow-test-wc")).run(&SplitWords, &SumCounts, input());

        let flow = FlowContext::new(config());
        let chained = flow
            .dataset(input())
            .map_with(SplitWords)
            .named("wc")
            .reduce_with(SumCounts)
            .collect();

        assert_eq!(chained, direct.output, "flow output must be byte-identical");
        let report = flow.report();
        assert_eq!(report.num_jobs(), 1);
        assert_eq!(report.jobs[0].job_name, "flow-test-wc");
        assert_eq!(
            report.jobs[0].shuffle_records,
            direct.metrics.shuffle_records
        );
        assert_eq!(
            report.total_shuffled_records(),
            direct.metrics.shuffle_records
        );
    }

    #[test]
    fn nothing_runs_until_a_terminal_executes() {
        let flow = FlowContext::new(config());
        let pending = flow
            .dataset(input())
            .map_with(SplitWords)
            .reduce_with(SumCounts);
        assert_eq!(flow.num_jobs(), 0, "plan building must not execute jobs");
        let _ = pending.collect();
        assert_eq!(flow.num_jobs(), 1);
    }

    #[test]
    fn two_job_chain_moves_records_between_jobs() {
        let flow = FlowContext::new(config());
        let output = flow
            .dataset(input())
            .map_with(SplitWords)
            .named("count")
            .combined_with(SumCombiner)
            .reduce_with(SumCounts)
            .map_with(ThresholdMapper(2))
            .named("frequent")
            .reduce_with(JoinWords)
            .collect();

        let mut output = output;
        output.sort();
        assert_eq!(
            output,
            vec![(2, "dog quick".to_string()), (3, "the".to_string())]
        );
        let report = flow.report();
        assert_eq!(report.num_jobs(), 2);
        assert_eq!(
            report.job_names(),
            vec!["flow-test-count", "flow-test-frequent"]
        );
        // Job 2's input is job 1's output, moved: its map input count must
        // equal job 1's reduce output count.
        assert_eq!(
            report.jobs[1].map_input_records,
            report.jobs[0].reduce_output_records
        );
    }

    #[test]
    fn then_builds_the_next_job_from_the_previous_output() {
        let flow = FlowContext::new(config());
        let output = flow
            .dataset(input())
            .map_with(SplitWords)
            .reduce_with(SumCounts)
            .then(|counts, flow| {
                // Side data derived from job 1's output, shipped into job
                // 2's mapper — the similarity-join pattern.
                let max = counts.iter().map(|(_, c)| *c).max().unwrap_or(0);
                flow.dataset(counts)
                    .map_with(ThresholdMapper(max))
                    .reduce_with(JoinWords)
            })
            .collect();
        assert_eq!(output, vec![(3, "the".to_string())]);
        assert_eq!(flow.report().num_jobs(), 2);
    }

    #[test]
    fn then_continuation_on_another_flow_reports_there() {
        let outer = FlowContext::new(config());
        let inner = FlowContext::new(config().with_name("inner-flow"));
        let inner_clone = inner.clone();
        let _ = outer
            .dataset(input())
            .map_with(SplitWords)
            .reduce_with(SumCounts)
            .then(move |counts, _| {
                inner_clone
                    .dataset(counts)
                    .map_with(ThresholdMapper(1))
                    .named("inner")
                    .reduce_with(JoinWords)
            })
            .collect();
        // Job 1 ran under the outer flow, the continuation under its own.
        assert_eq!(outer.num_jobs(), 1);
        assert_eq!(inner.num_jobs(), 1);
        assert_eq!(inner.report().job_names(), vec!["inner-flow-inner"]);
    }

    /// The persist/load contract is identical for both store backends.
    fn check_persist_and_load(flow: FlowContext) {
        let counts = flow
            .dataset(input())
            .map_with(SplitWords)
            .reduce_with(SumCounts)
            .persist("iteration-0/counts");
        assert!(!counts.is_empty());
        assert_eq!(counts.path(), "iteration-0/counts");
        assert_eq!(
            flow.persisted_paths(),
            vec!["iteration-0/counts".to_string()]
        );

        // The typed handle reads back without any type re-assertion.
        let reloaded = flow.load(&counts).collect();
        assert_eq!(reloaded.len(), counts.len());
        let the = reloaded.iter().find(|(w, _)| w == "the").expect("the");
        assert_eq!(the.1, 3);

        // A handle whose backing dataset is gone reads as empty (like an
        // empty part-file directory) and is NOT recorded as an error…
        let gone: PersistedDataset<String, u64> = PersistedDataset {
            path: "nope".to_string(),
            records: 0,
            _marker: PhantomData,
        };
        let missing: Vec<(String, u64)> = flow.load(&gone).collect();
        assert!(missing.is_empty());
        assert!(flow.report().errors.is_empty());
        assert!(matches!(
            flow.read_persisted::<String, u64>("nope"),
            Err(FlowError::MissingDataset { .. })
        ));

        // …but a handle whose path has since been rewritten at a
        // different record type is a surfaced pipeline bug: the load
        // materializes empty and the typed error lands in the report.
        assert!(matches!(
            flow.read_persisted::<u64, u64>("iteration-0/counts"),
            Err(FlowError::TypeMismatch { .. })
        ));
        let _ = flow
            .dataset(vec![(1u64, 2u64)])
            .persist("iteration-0/counts");
        let stale: Vec<(String, u64)> = flow.load(&counts).collect();
        assert!(stale.is_empty());
        let errors = flow.report().errors;
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(matches!(&errors[0], FlowError::TypeMismatch { path, .. }
            if path == "iteration-0/counts"));
    }

    #[test]
    fn persist_and_load_round_trip_through_the_memory_store() {
        check_persist_and_load(FlowContext::new(config()));
    }

    #[test]
    fn persist_and_load_round_trip_through_the_disk_store() {
        let dir = std::env::temp_dir().join(format!("smr-flow-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        check_persist_and_load(FlowContext::with_disk_store(config(), &dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_persisted_datasets_survive_the_flow_that_wrote_them() {
        let dir = std::env::temp_dir().join(format!("smr-flow-surv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let flow = FlowContext::with_disk_store(config(), &dir).unwrap();
            let _ = flow
                .dataset(input())
                .map_with(SplitWords)
                .reduce_with(SumCounts)
                .persist("stage-1/counts");
        }
        // A fresh flow over the same directory sees the dataset.
        let flow = FlowContext::with_disk_store(config(), &dir).unwrap();
        let counts = flow
            .read_persisted::<String, u64>("stage-1/counts")
            .unwrap();
        assert!(counts.iter().any(|(w, c)| w == "the" && *c == 3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn external_counters_land_in_the_job_metrics() {
        struct CountingMapper(Counters);
        impl Mapper for CountingMapper {
            type InKey = usize;
            type InValue = String;
            type OutKey = String;
            type OutValue = u64;
            fn map(&self, _k: &usize, text: &String, out: &mut Emitter<String, u64>) {
                for w in text.split_whitespace() {
                    self.0.add("words_seen", 1);
                    out.emit(w.to_string(), 1);
                }
            }
        }
        let flow = FlowContext::new(config());
        let counters = Counters::new();
        counters.add("partitions_prepared", 3);
        let _ = flow
            .dataset(input())
            .map_with(CountingMapper(counters.clone()))
            .named("counted")
            .with_counters(counters.clone())
            .reduce_with(SumCounts)
            .collect();
        let job = &flow.report().jobs[0];
        assert_eq!(job.user_counters["words_seen"], 10);
        assert_eq!(job.user_counters["partitions_prepared"], 3);
        assert_eq!(counters.get("words_seen"), 10);
    }

    #[test]
    fn side_store_is_shared_lazy_and_removed_with_the_flow() {
        let side_root;
        {
            let flow = FlowContext::new(config());
            let store = flow.side_store();
            side_root = store.root().to_path_buf();
            store.write("chunk-0", &[1u64, 2]).unwrap();
            // Clones see the same store (and the same datasets).
            assert_eq!(
                flow.clone().side_store().read::<u64>("chunk-0").unwrap(),
                [1, 2]
            );
            // Side data never shows up among persisted datasets.
            assert!(flow.persisted_paths().is_empty());
        }
        assert!(
            !side_root.exists(),
            "side data must not survive the flow that wrote it"
        );
    }

    #[test]
    fn disk_flow_side_store_lives_under_the_store_root_and_is_transient() {
        let dir = std::env::temp_dir().join(format!("smr-flow-sidedisk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let flow = FlowContext::with_disk_store(config(), &dir).unwrap();
            let side = flow.side_store();
            assert!(side.root().starts_with(&dir));
            side.write("x", &[7u8]).unwrap();
            let _ = flow
                .dataset(input())
                .map_with(SplitWords)
                .reduce_with(SumCounts)
                .persist("kept");
            // Side data stays invisible to the persisted namespace.
            assert_eq!(flow.persisted_paths(), vec!["kept".to_string()]);
        }
        // The persisted dataset survives; the side data does not.
        let reopened = FlowContext::with_disk_store(config(), &dir).unwrap();
        assert_eq!(reopened.persisted_paths(), vec!["kept".to_string()]);
        assert!(!dir.join("_side").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clones_share_jobs_and_store() {
        let flow = FlowContext::new(config());
        let clone = flow.clone();
        let _ = clone
            .dataset(input())
            .map_with(SplitWords)
            .reduce_with(SumCounts)
            .persist("shared");
        assert_eq!(flow.num_jobs(), 1);
        assert!(flow.read_persisted::<String, u64>("shared").is_ok());
    }

    #[test]
    fn jobs_from_isolates_a_sub_chain() {
        let flow = FlowContext::new(config());
        let _ = flow
            .dataset(input())
            .map_with(SplitWords)
            .reduce_with(SumCounts)
            .collect();
        let start = flow.num_jobs();
        let _ = flow
            .dataset(input())
            .map_with(SplitWords)
            .named("second")
            .reduce_with(SumCounts)
            .collect();
        let since = flow.jobs_from(start);
        assert_eq!(since.len(), 1);
        assert_eq!(since[0].job_name, "flow-test-second");
        assert!(flow.jobs_from(99).is_empty());
    }

    #[test]
    fn anonymous_jobs_get_sequential_names() {
        let flow = FlowContext::named("anon");
        for _ in 0..2 {
            let _ = flow
                .dataset(input())
                .map_with(SplitWords)
                .reduce_with(SumCounts)
                .collect();
        }
        assert_eq!(flow.report().job_names(), vec!["anon-job-0", "anon-job-1"]);
    }

    #[test]
    fn persist_reports_the_record_count() {
        let flow = FlowContext::new(config());
        let written = flow
            .dataset(input())
            .map_with(SplitWords)
            .reduce_with(SumCounts)
            .persist("counts");
        assert_eq!(written.len(), 6, "six distinct words");
    }

    #[test]
    fn mark_round_gives_round_local_job_views() {
        let flow = FlowContext::new(config());
        // A pre-round job, like a similarity join sharing the flow.
        let _ = flow
            .dataset(input())
            .map_with(SplitWords)
            .named("pre")
            .reduce_with(SumCounts)
            .collect();
        for round in 0..2 {
            flow.mark_round();
            let _ = flow
                .dataset(input())
                .map_with(SplitWords)
                .named(format!("round-{round}"))
                .reduce_with(SumCounts)
                .collect();
        }
        let report = flow.report();
        assert_eq!(report.num_rounds(), 2);
        assert_eq!(report.round_starts, vec![1, 2]);
        // Round-local: neither the pre-round job nor the other round's job
        // aliases into a round's view.
        assert_eq!(report.round_job_names(0), vec!["flow-test-round-0"]);
        assert_eq!(report.round_job_names(1), vec!["flow-test-round-1"]);
        assert!(report.round_jobs(2).is_empty());
        // The job-index slice mirrors FlowContext::jobs_from.
        assert_eq!(report.jobs_from(1).len(), 2);
        assert_eq!(report.jobs_from(99).len(), 0);
    }

    /// Runs the same two-round retire-and-continue workload through both
    /// round-state modes and returns what each round's job consumed.
    fn drive_round_state(mode: RoundStateMode) -> (Vec<Records<String, u64>>, usize, u64) {
        let flow = FlowContext::new(config());
        let mut state: RoundState<String, u64> = flow.round_state("words", mode);
        let seed: Records<String, u64> = flow
            .dataset(input())
            .map_with(SplitWords)
            .reduce_with(SumCounts)
            .collect();
        state.seed(seed);

        let mut inputs = Vec::new();
        while !state.is_empty() {
            // The "round job": decrement each count, doubling the key
            // through the projection to prove it is applied.
            let round_input: Records<String, u64> =
                state.dataset_with(|w, c| (format!("{w}!"), c)).collect();
            inputs.push(round_input.clone());
            let output: Records<String, u64> = round_input
                .into_iter()
                .map(|(w, c)| (w.trim_end_matches('!').to_string(), c - 1))
                .collect();
            // Retire words whose count reached zero — the tombstone path.
            state.absorb(output, |_, c| *c > 0);
        }
        (inputs, state.round(), state.max_state_bytes())
    }

    #[test]
    fn disk_backed_round_state_is_byte_identical_to_in_memory() {
        let (memory_inputs, memory_rounds, memory_bytes) =
            drive_round_state(RoundStateMode::InMemory);
        let (disk_inputs, disk_rounds, disk_bytes) = drive_round_state(RoundStateMode::DiskBacked);
        assert_eq!(memory_inputs, disk_inputs, "round inputs must not differ");
        assert_eq!(memory_rounds, disk_rounds);
        assert!(memory_inputs.len() >= 2, "the workload must iterate");
        assert_eq!(memory_bytes, 0, "in-memory mode holds no disk state");
        assert!(disk_bytes > 0, "disk mode must report its round files");
    }

    #[test]
    fn disk_round_state_keeps_one_file_and_cleans_up() {
        let flow = FlowContext::new(config());
        let side = flow.side_store();
        let mut state: RoundState<u32, u64> = flow.round_state("s", RoundStateMode::DiskBacked);
        state.seed(vec![(1, 10), (2, 20), (3, 30)]);
        assert_eq!(side.paths().len(), 1, "seed writes one round file");
        state.absorb(vec![(1, 11), (2, 21), (3, 31)], |k, _| *k != 2);
        assert_eq!(
            side.paths().len(),
            1,
            "the superseded round file is removed"
        );
        assert_eq!(state.len(), 2, "one record was tombstoned");
        // The tombstoned record is dropped at read time, order preserved.
        assert_eq!(state.dataset().collect(), vec![(1, 11), (3, 31)]);
        let file = side.paths()[0].clone();
        assert_eq!(
            side.record_count(&file),
            3,
            "the file keeps every output record; retirement is read-side"
        );
        drop(state);
        assert!(side.paths().is_empty(), "drop removes the round file");
    }

    #[test]
    fn custom_partitioner_is_honoured() {
        #[derive(Clone, Copy)]
        struct FirstByte;
        impl Partitioner<String> for FirstByte {
            fn partition(&self, key: &String, num_partitions: usize) -> usize {
                key.as_bytes().first().map(|b| *b as usize).unwrap_or(0) % num_partitions
            }
        }
        let flow = FlowContext::new(config().with_reduce_tasks(2));
        let mut via_flow = flow
            .dataset(input())
            .map_with(SplitWords)
            .partitioned_by(FirstByte)
            .reduce_with(SumCounts)
            .collect();
        via_flow.sort();
        let direct = Job::new(config().with_reduce_tasks(2)).run_full(
            &SplitWords,
            None::<&IdentityCombiner<String, u64>>,
            &SumCounts,
            &FirstByte,
            input(),
            Counters::new(),
        );
        let mut direct_out = direct.output;
        direct_out.sort();
        assert_eq!(via_flow, direct_out);
    }
}
